#!/usr/bin/env python3
"""CI smoke: the CLI and the job API are the same computation.

Drives one matrix slice twice — once through ``repro.experiments.cli.main``
(the rendering shell) and once through ``ExecutionSession.submit`` (the job
API underneath it) — and asserts:

* the raw run-record JSON and the summary-baseline JSON written by the two
  paths are byte-identical;
* a warm second ``submit`` of the same job spec against the same store
  executes zero runs (100% cache hits, nothing newly stored).

Exits non-zero with a diagnostic on any divergence.

Run with:  python tools/jobs_api_smoke.py
"""

import pathlib
import sys
import tempfile

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.experiments.aggregate import results_to_json, write_baseline
from repro.experiments.cli import main as cli_main
from repro.jobs import ExecutionSession, SweepJob, select_scenarios, specs_to_payloads

PROTOCOLS = ["binary", "quad"]
SEEDS = (2023, 2024)


def fail(message: str) -> int:
    print(f"jobs-api smoke: FAIL: {message}", file=sys.stderr)
    return 1


def smoke() -> int:
    with tempfile.TemporaryDirectory() as tmp:
        work = pathlib.Path(tmp)
        cli_records = work / "cli_records.json"
        cli_baseline = work / "cli_baseline.json"
        code = cli_main(
            [
                "run",
                "--protocol", *PROTOCOLS,
                "--seeds", ",".join(str(seed) for seed in SEEDS),
                "--quiet",
                "--store", str(work / "cli.db"),
                "--output", str(cli_records),
                "--write-baseline", str(cli_baseline),
            ]
        )
        if code != 0:
            return fail(f"CLI sweep exited {code}")

        job = SweepJob(
            specs_to_payloads(select_scenarios(protocols=PROTOCOLS)),
            seeds=SEEDS,
            collect_records=True,
        )
        with ExecutionSession(store_path=work / "api.db") as session:
            cold = session.submit(job)
            warm = session.submit(job)

        if cli_records.read_text() != results_to_json(cold.records) + "\n":
            return fail("run-record JSON differs between the CLI and the job API")
        api_baseline = work / "api_baseline.json"
        write_baseline(api_baseline, cold.summaries)
        if cli_baseline.read_bytes() != api_baseline.read_bytes():
            return fail("summary-baseline JSON differs between the CLI and the job API")

        if not cold.run_count:
            return fail("smoke slice selected no runs")
        executed = warm.run_count - warm.store_stats["hits"]
        if executed or warm.store_stats["stored"]:
            return fail(
                f"warm submit executed {executed} run(s) and stored "
                f"{warm.store_stats['stored']} — expected a 100% cached replay"
            )

        print(
            f"jobs-api smoke: OK — {cold.run_count} runs byte-identical across the CLI "
            "and the job API; warm submit executed 0 runs"
        )
    return 0


if __name__ == "__main__":
    sys.exit(smoke())
