#!/usr/bin/env python3
"""CI smoke: injected faults must not change what a sweep computes.

Three gates, all end-to-end through the CLI (subprocesses, so the
``REPRO_FAULT_PLAN`` environment wiring is what is actually exercised):

1. **Chaos byte-equality** — a fixed-seed full-matrix sweep under a fault
   plan that kills two pool workers mid-sweep and fails the first store
   flush must leave a store byte-identical to a fault-free sweep's
   (record-level ``canonical_json`` comparison plus the existing
   ``compare`` path at tolerance 0).
2. **kill -9 resume** — a sweep process killed with SIGKILL mid-flight
   leaves a store with only the records it had flushed; re-running the
   same sweep serves exactly those from cache and executes only the
   missing runs, ending byte-identical to the fault-free store.
3. Both stores carry zero quarantined (poison) tasks — transient worker
   deaths are retried, not misattributed to innocent tasks.

Exits non-zero with a diagnostic on any divergence.

Run with:  python tools/chaos_smoke.py
"""

import json
import os
import pathlib
import re
import signal
import subprocess
import sys
import tempfile
import time

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.store import RunStore  # noqa: E402  (path bootstrap above)

SWEEP = ["run", "--seeds", "2", "--parallel", "4", "--timeout", "120", "--quiet"]
FAULT_PLAN = {"seed": 2023, "worker_crash": [7, 60], "flush_errors": [1]}


def fail(message: str) -> int:
    print(f"chaos smoke: FAIL: {message}", file=sys.stderr)
    return 1


def cli_env(fault_plan=None) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src")
    env.pop("REPRO_FAULT_PLAN", None)
    if fault_plan is not None:
        env["REPRO_FAULT_PLAN"] = json.dumps(fault_plan)
    return env


def cli(*args, fault_plan=None) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "repro.experiments", *args],
        env=cli_env(fault_plan),
        cwd=ROOT,
        capture_output=True,
        text=True,
    )


def _committed_rows(path: pathlib.Path) -> int:
    """Rows another process has committed, 0 while the table is unreadable."""
    import sqlite3

    if not path.exists():
        return 0
    try:
        with sqlite3.connect(f"file:{path}?mode=ro", uri=True, timeout=0.1) as conn:
            return conn.execute("SELECT COUNT(*) FROM runs").fetchone()[0]
    except sqlite3.Error:
        return 0


def store_records(path: pathlib.Path):
    """Sorted canonical record JSON (opening runs any pending recovery)."""
    with RunStore(path) as store:
        poison = sum(1 for _ in store.iter_poison())
        return sorted(r.canonical_json() for r in store.iter_records()), poison


def smoke() -> int:
    with tempfile.TemporaryDirectory() as tmp:
        work = pathlib.Path(tmp)
        clean_db, chaos_db, resume_db = work / "clean.db", work / "chaos.db", work / "resume.db"

        print("chaos smoke: fault-free full-matrix sweep")
        proc = cli(*SWEEP, "--store", str(clean_db))
        if proc.returncode != 0:
            return fail(f"fault-free sweep exited {proc.returncode}:\n{proc.stderr}")
        clean, clean_poison = store_records(clean_db)
        if not clean:
            return fail("fault-free sweep stored no records")

        print(f"chaos smoke: chaotic sweep under {json.dumps(FAULT_PLAN)}")
        proc = cli(*SWEEP, "--store", str(chaos_db), fault_plan=FAULT_PLAN)
        if proc.returncode != 0:
            return fail(f"chaotic sweep exited {proc.returncode}:\n{proc.stderr}")
        chaos, chaos_poison = store_records(chaos_db)
        if chaos != clean:
            return fail(
                f"chaotic store diverged: {len(chaos)} records vs {len(clean)} fault-free"
            )
        if clean_poison or chaos_poison:
            return fail(f"unexpected quarantined tasks: {clean_poison} clean, {chaos_poison} chaos")
        proc = cli("compare", "--store", str(chaos_db), "--against", str(clean_db), "--tolerance", "0")
        if proc.returncode != 0:
            return fail(f"compare vs fault-free store exited {proc.returncode}:\n{proc.stderr}")
        print(f"chaos smoke: {len(clean)} records byte-identical under injected faults")

        print("chaos smoke: kill -9 a sweep mid-flight")
        victim = subprocess.Popen(
            [sys.executable, "-m", "repro.experiments", *SWEEP, "--store", str(resume_db)],
            env=cli_env(),
            cwd=ROOT,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        deadline = time.time() + 120
        while time.time() < deadline and victim.poll() is None:
            if _committed_rows(resume_db) > 0:
                break
            time.sleep(0.02)
        if victim.poll() is None:
            victim.send_signal(signal.SIGKILL)
            victim.wait()
            print("chaos smoke: sweep killed after its first committed batch")
        else:
            print("chaos smoke: sweep finished before the kill (fast host); resume is all-cached")

        survived, _ = store_records(resume_db)
        proc = cli(*SWEEP, "--store", str(resume_db))
        if proc.returncode != 0:
            return fail(f"resume sweep exited {proc.returncode}:\n{proc.stderr}")
        match = re.search(r"(\d+) cached, (\d+) executed", proc.stdout)
        if match is None:
            return fail(f"resume sweep printed no cache split:\n{proc.stdout}")
        cached, executed = int(match.group(1)), int(match.group(2))
        if cached != len(survived) or executed != len(clean) - len(survived):
            return fail(
                f"resume executed the wrong slice: {cached} cached / {executed} executed, "
                f"but {len(survived)} of {len(clean)} records survived the kill"
            )
        resumed, _ = store_records(resume_db)
        if resumed != clean:
            return fail("resumed store is not byte-identical to the fault-free store")
        print(
            f"chaos smoke: resume served {cached} survivors from cache and "
            f"re-executed only the {executed} missing runs"
        )
    print("chaos smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(smoke())
