#!/usr/bin/env python3
"""Link and anchor checker for the repository's markdown documentation.

Usage::

    python tools/check_docs_links.py README.md docs/ARCHITECTURE.md

For every ``[text](target)`` link in the given files:

* ``http(s)``/``mailto`` targets are skipped (no network in CI);
* relative file targets must exist on disk (resolved against the linking
  file's directory);
* ``#anchor`` fragments — on the same file or a linked markdown file —
  must match a heading in that file, using GitHub's slugification rules
  (lowercase, punctuation stripped, spaces to hyphens, duplicate slugs
  numbered).

Inline code spans and fenced code blocks are ignored, so CLI examples
containing ``[...]`` never register as links.  Exits non-zero listing
every broken link; prints a per-file summary otherwise.
"""

from __future__ import annotations

import pathlib
import re
import sys
from typing import Dict, List, Set

LINK_PATTERN = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING_PATTERN = re.compile(r"^(#{1,6})\s+(.*?)\s*$")
FENCE_PATTERN = re.compile(r"^(```|~~~)")


def strip_code(text: str) -> str:
    """Remove fenced code blocks and inline code spans."""
    lines: List[str] = []
    in_fence = False
    for line in text.splitlines():
        if FENCE_PATTERN.match(line.strip()):
            in_fence = not in_fence
            continue
        if not in_fence:
            lines.append(re.sub(r"`[^`]*`", "", line))
    return "\n".join(lines)


def github_slug(heading: str) -> str:
    """GitHub's heading-to-anchor slug: lowercase, punctuation out, spaces to hyphens."""
    slug = heading.strip().lower()
    slug = re.sub(r"`", "", slug)
    slug = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", slug)  # linked headings keep their text
    slug = re.sub(r"[^\w\sÀ-￿-]", "", slug)
    slug = re.sub(r"\s", "-", slug)
    return slug


def anchors_of(path: pathlib.Path, cache: Dict[pathlib.Path, Set[str]]) -> Set[str]:
    if path not in cache:
        slugs: Set[str] = set()
        counts: Dict[str, int] = {}
        in_fence = False
        for line in path.read_text(encoding="utf-8").splitlines():
            if FENCE_PATTERN.match(line.strip()):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            match = HEADING_PATTERN.match(line)
            if not match:
                continue
            base = github_slug(match.group(2))
            seen = counts.get(base, 0)
            counts[base] = seen + 1
            slugs.add(base if seen == 0 else f"{base}-{seen}")
        cache[path] = slugs
    return cache[path]


def check_file(path: pathlib.Path, cache: Dict[pathlib.Path, Set[str]]) -> List[str]:
    problems: List[str] = []
    text = strip_code(path.read_text(encoding="utf-8"))
    checked = 0
    for target in LINK_PATTERN.findall(text):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        checked += 1
        file_part, _, anchor = target.partition("#")
        destination = path if not file_part else (path.parent / file_part).resolve()
        if not destination.exists():
            problems.append(f"{path}: broken link target {target!r} (no such file)")
            continue
        if anchor:
            if destination.suffix.lower() not in (".md", ".markdown"):
                problems.append(
                    f"{path}: anchor link {target!r} points at a non-markdown file"
                )
                continue
            if anchor not in anchors_of(destination, cache):
                problems.append(
                    f"{path}: anchor {target!r} does not match any heading in {destination.name}"
                )
    print(f"{path}: {checked} internal links checked")
    return problems


def main(argv: List[str]) -> int:
    if not argv:
        print("usage: check_docs_links.py FILE.md [FILE.md ...]", file=sys.stderr)
        return 2
    cache: Dict[pathlib.Path, Set[str]] = {}
    problems: List[str] = []
    for name in argv:
        path = pathlib.Path(name)
        if not path.exists():
            problems.append(f"{path}: file does not exist")
            continue
        problems.extend(check_file(path, cache))
    for problem in problems:
        print(f"BROKEN {problem}", file=sys.stderr)
    if problems:
        print(f"{len(problems)} broken links/anchors", file=sys.stderr)
        return 1
    print("all links and anchors resolve")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
