"""Adversarial-region sweep — equivocation and partition/jitter overheads.

The paper's claims are quantified over *all* executions of the partially
synchronous model, including Byzantine equivocation and partitioned networks.
This benchmark sweeps Universal (Algorithm 1 backend) across the benign and
adversarial corners of the scenario matrix and records the latency and
message overhead each adversarial dimension costs, checking the qualitative
shape: a partition that heals at GST delays decisions past the release time,
and equivocation never breaks a run (every record stays ``ok``).
"""

from conftest import bench_seeds, run_once

from repro.experiments import Runner, aggregate, make_scenario

ADVERSARIES = ("none", "silent", "equivocation")
DELAYS = ("synchronous", "partition", "jittered")
SEEDS = bench_seeds(5)
RELEASE_TIME = 5.0


def test_adversarial_region_overheads(benchmark):
    scenarios = [
        make_scenario(
            "universal-authenticated",
            adversary=adversary,
            delay=delay,
            name=f"adv:{adversary}:{delay}",
        )
        for adversary in ADVERSARIES
        for delay in DELAYS
    ]

    def measure():
        results = Runner(parallel=4).run(scenarios, seeds=SEEDS)
        assert all(result.ok for result in results), [
            (result.scenario, result.error, result.violations) for result in results if not result.ok
        ]
        summaries = aggregate(results)
        return {
            name.split(":", 1)[1]: (summary.latency.mean, summary.messages.mean)
            for name, summary in summaries.items()
        }

    rows = run_once(benchmark, measure)
    benchmark.extra_info["latency_and_messages"] = {
        key: [round(latency, 2), round(messages, 1)] for key, (latency, messages) in sorted(rows.items())
    }
    for adversary in ADVERSARIES:
        # A partition healing at GST forces decisions after the release time,
        # strictly later than the synchronous execution of the same adversary.
        assert rows[f"{adversary}:partition"][0] > RELEASE_TIME
        assert rows[f"{adversary}:partition"][0] > rows[f"{adversary}:synchronous"][0]
