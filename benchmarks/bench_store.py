"""Run-store throughput harness: cold sweep vs warm (cache-served) sweep.

PR 3 made individual runs ~4x faster; the run store's multiplier is never
recomputing a run at all.  This harness quantifies that: it sweeps the full
scenario matrix twice against one :class:`repro.store.RunStore` —

1. **cold** — empty store, every run executed and persisted;
2. **warm** — identical sweep, every run must be served from the store
   (the harness *asserts* zero executions and byte-identical summaries,
   so the measured speedup is also a correctness check);

and reports wall-clock, runs/sec and the warm-vs-cold speedup, plus the
store file size per run.  A third phase measures a **delta sweep** (half
the matrix already stored), the nightly-CI shape the store exists for.

Usage::

    PYTHONPATH=src python benchmarks/bench_store.py                # print JSON
    PYTHONPATH=src python benchmarks/bench_store.py --quick        # matrix slice
    PYTHONPATH=src python benchmarks/bench_store.py --output BENCH_store.json
    PYTHONPATH=src python benchmarks/bench_store.py --check BENCH_store.json \
        --min-speedup 10                                           # CI gate

The committed ``BENCH_store.json`` records the full-matrix numbers;
``--check`` fails when the warm speedup drops below ``--min-speedup``.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import tempfile
import time

_SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.experiments import (  # noqa: E402
    Runner,
    StreamingAggregator,
    default_matrix,
    summaries_to_json,
    sweep_seeds,
)
from repro.store import RunStore  # noqa: E402

_QUICK_SLICE = 16  # scenarios from the matrix head when --quick


def _sweep(runner: Runner, scenarios, seeds, store) -> tuple:
    aggregator = StreamingAggregator()
    count = 0
    started = time.perf_counter()
    for result in runner.iter_runs(scenarios, seeds, store=store):
        aggregator.add(result)
        count += 1
    elapsed = time.perf_counter() - started
    return elapsed, count, summaries_to_json(aggregator.summaries())


def measure(quick: bool, seeds_per_scenario: int, parallel: int) -> dict:
    scenarios = default_matrix()
    if quick:
        scenarios = scenarios[:_QUICK_SLICE]
    seeds = sweep_seeds(seeds_per_scenario)
    with tempfile.TemporaryDirectory(prefix="bench_store_") as tmp:
        db = pathlib.Path(tmp) / "runs.db"
        with Runner(parallel=parallel, timeout=300.0) as runner:
            with RunStore(db) as store:
                cold_seconds, cold_runs, cold_summaries = _sweep(runner, scenarios, seeds, store)
                assert store.stats.hits == 0, "cold sweep must miss everything"
            cold_bytes = db.stat().st_size

            with RunStore(db) as store:
                warm_seconds, warm_runs, warm_summaries = _sweep(runner, scenarios, seeds, store)
                assert store.stats.misses == 0, "warm sweep must execute nothing"
                assert store.stats.hits == warm_runs
            assert warm_summaries == cold_summaries, "warm summaries must be byte-identical"

            # Delta shape: half the matrix pre-stored under a fresh store,
            # then the full sweep — what a nightly incremental sweep pays.
            delta_db = pathlib.Path(tmp) / "delta.db"
            with RunStore(delta_db) as store:
                half = scenarios[: len(scenarios) // 2]
                runner.run(half, seeds, store=store)
            with RunStore(delta_db) as store:
                delta_seconds, delta_runs, delta_summaries = _sweep(runner, scenarios, seeds, store)
                assert delta_summaries == cold_summaries
                delta_hits = store.stats.hits
    return {
        "quick": quick,
        "scenarios": len(scenarios),
        "seeds": len(seeds),
        "parallel": parallel,
        "cold": {
            "runs": cold_runs,
            "seconds": round(cold_seconds, 3),
            "runs_per_sec": round(cold_runs / cold_seconds, 3),
        },
        "warm": {
            "runs": warm_runs,
            "seconds": round(warm_seconds, 3),
            "runs_per_sec": round(warm_runs / warm_seconds, 3),
            "cache_hits": warm_runs,
        },
        "delta_half_cached": {
            "runs": delta_runs,
            "cache_hits": delta_hits,
            "seconds": round(delta_seconds, 3),
        },
        "store": {
            "bytes": cold_bytes,
            "bytes_per_run": round(cold_bytes / cold_runs, 1),
        },
        "speedup": {
            "warm_vs_cold": round(cold_seconds / warm_seconds, 2),
            "delta_vs_cold": round(cold_seconds / delta_seconds, 2),
        },
        "byte_identical_summaries": True,
    }


def check_against(measured: dict, committed_path: pathlib.Path, min_speedup: float) -> int:
    committed = json.loads(committed_path.read_text())
    stored = committed.get("speedup", {}).get("warm_vs_cold", 0.0)
    measured_speedup = measured["speedup"]["warm_vs_cold"]
    print(
        f"warm-vs-cold speedup: measured {measured_speedup:.1f}x, committed {stored:.1f}x, "
        f"floor {min_speedup:.1f}x"
    )
    if measured_speedup < min_speedup:
        print("FAIL: warm sweeps no longer amortize the store")
        return 1
    print("ok: run store keeps its warm-sweep speedup")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description="run-store cold/warm throughput benchmark")
    parser.add_argument("--quick", action="store_true", help=f"first {_QUICK_SLICE} scenarios only (CI smoke)")
    parser.add_argument("--seeds", type=int, default=1, help="seeds per scenario (default 1)")
    parser.add_argument("--parallel", type=int, default=4, help="worker processes for the cold sweep")
    parser.add_argument("--output", type=pathlib.Path, default=None, help="write the measurement JSON")
    parser.add_argument("--check", type=pathlib.Path, default=None, help="compare against a committed BENCH_store.json")
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=10.0,
        help="required warm-vs-cold speedup when --check is given (default 10x)",
    )
    args = parser.parse_args(argv)

    measured = measure(quick=args.quick, seeds_per_scenario=args.seeds, parallel=args.parallel)
    print(json.dumps(measured, indent=2, sort_keys=True))
    if args.output is not None:
        args.output.write_text(json.dumps(measured, indent=2, sort_keys=True) + "\n")
        print(f"wrote {args.output}")
    if args.check is not None:
        return check_against(measured, args.check, args.min_speedup)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
