"""E2 — Theorem 1: with ``n <= 3t`` non-trivial consensus is impossible.

Paper claim: for ``n <= 3t`` every solvable validity property is trivial; the
proof's split-brain construction (Lemma 2) breaks Agreement for any algorithm
attempting a non-trivial property.  The benchmark runs that adversary against
the library's Universal at ``n = 3t`` (attack succeeds) and at ``n = 3t + 1``
(attack fails).
"""

from conftest import run_once

from repro.analysis import run_partitioning_attack
from repro.core import SystemConfig


def test_thm1_split_brain_succeeds_at_n_equal_3t(benchmark):
    report = run_once(benchmark, run_partitioning_attack, 2)
    benchmark.extra_info["summary"] = report.summary()
    assert report.system.n == 3 * report.system.t
    assert report.all_correct_decided
    assert report.agreement_violated
    assert set(report.decisions_a.values()) == {0}
    assert set(report.decisions_c.values()) == {1}


def test_thm1_split_brain_fails_when_n_gt_3t(benchmark):
    report = run_once(benchmark, run_partitioning_attack, 2, "strong", 0, 1, 400.0, 1, SystemConfig(7, 2))
    benchmark.extra_info["summary"] = report.summary()
    assert not report.agreement_violated
    assert report.all_correct_decided
