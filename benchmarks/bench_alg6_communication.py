"""E7 — Algorithms 4-6: vector consensus with sub-cubic communication.

Paper claim: Algorithm 1 has ``O(n^3)`` communication (it ships linear-size
vectors and proofs inside Quad), while Algorithm 6 — slow broadcast + vector
dissemination + Quad over hashes + ADD — achieves ``O(n^2 log n)`` words, a
near-linear improvement, at the price of (much) higher latency.  The
benchmark sweeps both Universal scenarios through the experiment runner
across system sizes (with ``t`` silent Byzantine processes, the worst case
for paper-style counting) and checks that the compact variant's words grow no
faster while its *per-message* payload stays bounded.
"""

from conftest import BENCH_SEED, run_once

from repro.experiments import Runner, growth_exponent, make_scenario

SIZES = (4, 7, 10)
BACKENDS = ("authenticated", "compact")


def _scenario(backend, n):
    return make_scenario(
        f"universal-{backend}",
        adversary="silent",
        delay="synchronous",
        n=n,
        t=(n - 1) // 3,
        name=f"alg6:n={n}:{backend}",
    )


def test_alg6_words_vs_algorithm1(benchmark):
    scenarios = [_scenario(backend, n) for backend in BACKENDS for n in SIZES]

    def measure():
        results = Runner(parallel=4).run(scenarios, seeds=(BENCH_SEED,))
        assert all(result.ok for result in results)
        by_backend = {backend: [] for backend in BACKENDS}
        for result in results:
            _, _, backend = result.scenario.split(":")
            by_backend[backend].append(result)
        return by_backend

    by_backend = run_once(benchmark, measure)
    auth, compact = by_backend["authenticated"], by_backend["compact"]
    benchmark.extra_info["rows"] = {
        backend: [
            {"n": size, "messages": run.message_complexity, "words": run.communication_complexity,
             "latency": round(run.decision_latency, 2)}
            for size, run in zip(SIZES, runs)
        ]
        for backend, runs in by_backend.items()
    }

    # Communication growth: the compact backend grows no faster than the
    # authenticated one (the asymptotic gap is n vs n log n / n^... in words).
    auth_exponent = growth_exponent(SIZES, [run.communication_complexity for run in auth])
    compact_exponent = growth_exponent(SIZES, [run.communication_complexity for run in compact])
    benchmark.extra_info["word_growth_exponents"] = {
        "authenticated": round(auth_exponent, 3),
        "compact": round(compact_exponent, 3),
    }
    assert compact_exponent <= auth_exponent + 0.3

    # Payload shape: words per message stay bounded for the compact variant,
    # but grow with n for the authenticated one (it carries full vectors).
    auth_payload = [run.communication_complexity / max(1, run.message_complexity) for run in auth]
    compact_payload = [run.communication_complexity / max(1, run.message_complexity) for run in compact]
    benchmark.extra_info["words_per_message"] = {
        "authenticated": [round(x, 2) for x in auth_payload],
        "compact": [round(x, 2) for x in compact_payload],
    }
    assert auth_payload[-1] > auth_payload[0]

    # The price of the compact variant: latency (slow broadcast).
    benchmark.extra_info["latency"] = {
        backend: [round(run.decision_latency, 2) for run in runs] for backend, runs in by_backend.items()
    }
