"""E7 — Algorithms 4-6: vector consensus with sub-cubic communication.

Paper claim: Algorithm 1 has ``O(n^3)`` communication (it ships linear-size
vectors and proofs inside Quad), while Algorithm 6 — slow broadcast + vector
dissemination + Quad over hashes + ADD — achieves ``O(n^2 log n)`` words, a
near-linear improvement, at the price of (much) higher latency.  The
benchmark measures words-on-the-wire and latency for both backends and checks
that the compact variant's *per-message* payload stays bounded while the
authenticated variant's grows linearly with ``n``.
"""

from conftest import run_once

from repro.analysis import compare_backends

SIZES = (4, 7, 10)


def test_alg6_words_vs_algorithm1(benchmark):
    results = run_once(benchmark, compare_backends, SIZES, ("authenticated", "compact"), "strong", 3)
    auth, compact = results["authenticated"], results["compact"]
    benchmark.extra_info["authenticated"] = auth.table()
    benchmark.extra_info["compact"] = compact.table()
    for sweep in results.values():
        assert all(report.agreement and report.all_decided and report.validity_satisfied for report in sweep.rows)

    # Communication growth: the compact backend grows no faster than the
    # authenticated one (the asymptotic gap is n vs n log n / n^... in words).
    auth_exponent = auth.word_growth_exponent()
    compact_exponent = compact.word_growth_exponent()
    benchmark.extra_info["word_growth_exponents"] = {
        "authenticated": round(auth_exponent, 3),
        "compact": round(compact_exponent, 3),
    }
    assert compact_exponent <= auth_exponent + 0.3

    # Payload shape: words per message stay bounded for the compact variant,
    # but grow with n for the authenticated one (it carries full vectors).
    auth_payload = [words / max(1, msgs) for words, msgs in zip(auth.words(), auth.messages())]
    compact_payload = [words / max(1, msgs) for words, msgs in zip(compact.words(), compact.messages())]
    benchmark.extra_info["words_per_message"] = {
        "authenticated": [round(x, 2) for x in auth_payload],
        "compact": [round(x, 2) for x in compact_payload],
    }
    assert auth_payload[-1] > auth_payload[0]

    # The price of the compact variant: latency (slow broadcast).
    benchmark.extra_info["latency"] = {
        "authenticated": auth.latencies(),
        "compact": compact.latencies(),
    }
