"""E9 — Appendix C: External Validity on a committee blockchain.

Paper claim (qualitative): the extended formalism with discovery functions and
adversary pools captures blockchain-style External Validity; decisions are
batches of client-signed transactions satisfying an external predicate, and
in canonical executions only transactions observed by correct servers can be
ordered.  The benchmark runs the committee-blockchain consensus and checks
the predicate, the discovery assumptions, and agreement.
"""

from conftest import run_once

from repro.consensus import universal_process_factory
from repro.core import InputConfiguration, SystemConfig, UniversalSpec, ValidityProperty
from repro.core.extended import (
    ClientWallet,
    ExtendedInputConfiguration,
    TransactionVerifier,
    batch_decision_rule,
    external_validity_property,
)
from repro.sim import Simulation, SynchronousDelayModel, silent_factory


def _run_blockchain_round():
    system = SystemConfig(4, 1)
    verifier = TransactionVerifier()
    wallets = {name: ClientWallet(name) for name in ("alice", "bob", "carol")}
    hidden = wallets["carol"].issue(9, "known only to the Byzantine server")
    proposals = {
        0: (wallets["alice"].issue(1, "pay bob"), wallets["bob"].issue(1, "pay carol")),
        1: (wallets["alice"].issue(1, "pay bob"),),
        2: (wallets["carol"].issue(1, "pay alice"), wallets["bob"].issue(1, "pay carol")),
        3: (hidden,),
    }

    class BatchValidity(ValidityProperty):
        name = "external-validity-projection"

        def is_admissible(self, config, value):
            return verifier.batch_is_valid(value)

    spec = UniversalSpec(system=system, validity=BatchValidity(), decision_rule=batch_decision_rule(verifier))
    simulation = Simulation(system, delay_model=SynchronousDelayModel(seed=13))
    simulation.populate(
        universal_process_factory(spec, proposals), faulty=[3], faulty_factory=silent_factory
    )
    simulation.run_until_all_correct_decide(until=5_000)
    batch = next(iter(simulation.decisions().values()))
    extended = ExtendedInputConfiguration.build(
        InputConfiguration.from_mapping({pid: proposals[pid] for pid in simulation.correct_processes}),
        adversary_pool=[hidden],
    )
    return {
        "simulation": simulation,
        "verifier": verifier,
        "property": external_validity_property(verifier),
        "batch": batch,
        "extended": extended,
        "hidden": hidden,
    }


def test_external_validity_blockchain_round(benchmark):
    outcome = run_once(benchmark, _run_blockchain_round)
    simulation = outcome["simulation"]
    batch = outcome["batch"]
    benchmark.extra_info["batch_size"] = len(batch)
    benchmark.extra_info["messages"] = simulation.metrics.message_complexity
    assert simulation.agreement_holds() and simulation.all_correct_decided()
    assert outcome["verifier"].batch_is_valid(batch)
    prop = outcome["property"]
    assert prop.is_admissible(outcome["extended"], batch)
    # Canonical execution (silent faulty server): the hidden transaction cannot be ordered.
    assert prop.execution_respects_assumptions(outcome["extended"], batch, canonical=True)
    assert outcome["hidden"] not in batch
