"""E3 — Theorem 3: the similarity condition is necessary for solvability.

Paper claim: every solvable validity property satisfies ``C_S``.  As a
corollary of the characterization, Correct-Proposal Validity ("strong
consensus") loses ``C_S`` exactly when ``n <= (|V| + 1) t`` — the classical
Fitzi–Garay threshold, which the decision procedure re-derives here.
"""

from conftest import run_once

from repro.core import (
    ConvexHullValidity,
    CorrectProposalValidity,
    StrongValidity,
    SystemConfig,
    WeakValidity,
    check_similarity_condition,
    classify,
)


def test_thm3_solvable_named_properties_satisfy_cs(benchmark):
    def evaluate():
        system = SystemConfig(4, 1)
        domain = [0, 1]
        rows = {}
        for name, prop in {
            "strong": StrongValidity(domain),
            "weak": WeakValidity(system, domain),
            "convex-hull": ConvexHullValidity(domain),
            "correct-proposal": CorrectProposalValidity(domain),
        }.items():
            verdict = classify(prop, system, domain)
            rows[name] = (verdict.solvable, verdict.satisfies_similarity_condition)
        return rows

    rows = run_once(benchmark, evaluate)
    benchmark.extra_info["rows"] = {k: list(v) for k, v in rows.items()}
    for name, (solvable, satisfies_cs) in rows.items():
        if solvable:
            assert satisfies_cs, name


def test_thm3_fitzi_garay_threshold(benchmark):
    def sweep():
        results = {}
        for n in (4, 5):
            for domain_size in (2, 3):
                domain = list(range(domain_size))
                system = SystemConfig(n, 1)
                holds = check_similarity_condition(CorrectProposalValidity(domain), system, domain).holds
                results[(n, domain_size)] = holds
        return results

    results = run_once(benchmark, sweep)
    benchmark.extra_info["cs_holds"] = {f"n={n},|V|={v}": holds for (n, v), holds in results.items()}
    for (n, domain_size), holds in results.items():
        assert holds == (n > (domain_size + 1) * 1), (n, domain_size)
