"""Benchmark harness configuration.

Each benchmark regenerates one of the paper's figures/claims (see DESIGN.md's
per-experiment index and EXPERIMENTS.md for paper-vs-measured).  The heavy
simulations are run once per benchmark (``rounds=1``) — the quantity of
interest is the measured complexity shape stored in ``extra_info``, not the
wall-clock timing statistics.

Seeding: every benchmark draws its seeds from the experiment runner's single
seeding path (:data:`repro.experiments.DEFAULT_SEED` / ``sweep_seeds``), so
the numbers stored in BENCH_*.json are bit-reproducible run-to-run and match
what ``python -m repro.experiments run`` measures for the same scenarios.
Override with ``REPRO_BENCH_SEED=<int>`` to sweep a different seed.
"""

import os
import pathlib
import sys

_SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.experiments import DEFAULT_SEED, sweep_seeds  # noqa: E402  (path bootstrap above)

BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", DEFAULT_SEED))
"""The one seed shared by every benchmark and the experiment runner."""


def bench_seeds(count: int):
    """The canonical seed sequence for multi-run benchmark sweeps."""
    return sweep_seeds(count, base=BENCH_SEED)


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under the benchmark timer and return its result."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1, warmup_rounds=0)
