"""Benchmark harness configuration.

Each benchmark regenerates one of the paper's figures/claims (see DESIGN.md's
per-experiment index and EXPERIMENTS.md for paper-vs-measured).  The heavy
simulations are run once per benchmark (``rounds=1``) — the quantity of
interest is the measured complexity shape stored in ``extra_info``, not the
wall-clock timing statistics.
"""

import pathlib
import sys

_SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under the benchmark timer and return its result."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1, warmup_rounds=0)
