"""E4 — Theorem 4: non-trivial consensus requires Omega(t^2) messages.

Paper claim: any algorithm solving a non-trivial (solvable) validity property
has executions exchanging more than ``(t/2)^2`` messages; protocols below the
bound can be attacked into disagreement.  The benchmark runs the
Dolev-Reischuk-style isolation adversary against a cheap O(n) strawman (it
disagrees) and against Universal (it does not, and its message count exceeds
the threshold at every size).
"""

from conftest import run_once

from repro.analysis import run_lower_bound_experiment


def test_thm4_cheap_protocol_is_broken_universal_is_not(benchmark):
    report = run_once(benchmark, run_lower_bound_experiment, 10)
    benchmark.extra_info["summary"] = report.summary()
    assert report.cheap_agreement_violated
    assert not report.universal_agreement_violated
    assert report.universal_exceeds_threshold
    assert report.cheap_messages < report.threshold * 4


def test_thm4_threshold_vs_universal_across_sizes(benchmark):
    def sweep():
        return {n: run_lower_bound_experiment(n=n).summary() for n in (7, 10, 13)}

    rows = run_once(benchmark, sweep)
    benchmark.extra_info["rows"] = rows
    for n, summary in rows.items():
        assert summary["universal_messages"] > summary["threshold_(t/2)^2"]
        assert not summary["universal_disagrees"]
        assert summary["cheap_protocol_disagrees"]
