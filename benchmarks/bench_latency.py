"""E10 — Latency of the vector-consensus backends (Section 5.2, footnote 5 and Appendix B.3).

Paper claim: the authenticated (Algorithm 1) and non-authenticated
(Algorithm 3) vector-consensus implementations have linear latency, so
Universal on top of them is fast; the ``O(n^2 log n)``-communication variant
(Algorithm 6) is "highly impractical" latency-wise because of slow broadcast.
The benchmark measures decision latency (in simulated time, with delta = 1)
for all three backends and checks the ordering and the blow-up of the compact
variant as ``n`` grows.
"""

from conftest import run_once

from repro.analysis import run_universal_execution
from repro.core import SystemConfig


def test_latency_ordering_of_backends(benchmark):
    def measure():
        rows = {}
        for n in (4, 7):
            system = SystemConfig.with_optimal_resilience(n)
            for backend in ("authenticated", "non-authenticated", "compact"):
                report = run_universal_execution(system, backend=backend, seed=5)
                rows[(n, backend)] = report.decision_latency
        return rows

    rows = run_once(benchmark, measure)
    benchmark.extra_info["latency"] = {f"n={n},{backend}": round(value, 2) for (n, backend), value in rows.items()}
    for n in (4, 7):
        # Slow broadcast makes the compact variant the slowest at every size.
        assert rows[(n, "compact")] > rows[(n, "authenticated")]
    # And its latency grows much faster with n than the authenticated backend's.
    compact_growth = rows[(7, "compact")] / rows[(4, "compact")]
    auth_growth = rows[(7, "authenticated")] / max(1e-9, rows[(4, "authenticated")])
    assert compact_growth > auth_growth
