"""E10 — Latency of the vector-consensus backends (Section 5.2, footnote 5 and Appendix B.3).

Paper claim: the authenticated (Algorithm 1) and non-authenticated
(Algorithm 3) vector-consensus implementations have linear latency, so
Universal on top of them is fast; the ``O(n^2 log n)``-communication variant
(Algorithm 6) pays for its word savings with slow broadcast, making it the
latency-worst backend.  The benchmark sweeps the three Universal scenarios
through the experiment runner over a seed sweep (one run per seed, mean
decision latency in simulated time with delta = 1) and checks that the
compact variant is the slowest at every system size.
"""

from conftest import bench_seeds, run_once

from repro.experiments import Runner, aggregate, make_scenario

BACKENDS = ("authenticated", "non-authenticated", "compact")
SIZES = (4, 7)
SEEDS = bench_seeds(5)


def test_latency_ordering_of_backends(benchmark):
    scenarios = [
        make_scenario(
            f"universal-{backend}",
            adversary="none",
            delay="synchronous",
            n=n,
            t=(n - 1) // 3,
            name=f"latency:n={n}:{backend}",
        )
        for n in SIZES
        for backend in BACKENDS
    ]

    def measure():
        results = Runner(parallel=4).run(scenarios, seeds=SEEDS)
        assert all(result.ok for result in results)
        summaries = aggregate(results)
        rows = {}
        for name, summary in summaries.items():
            _, n_part, backend = name.split(":")
            rows[(int(n_part.split("=")[1]), backend)] = summary.latency.mean
        return rows

    rows = run_once(benchmark, measure)
    benchmark.extra_info["mean_latency"] = {
        f"n={n},{backend}": round(value, 2) for (n, backend), value in sorted(rows.items())
    }
    for n in SIZES:
        # Slow broadcast makes the compact variant the slowest at every size;
        # the two "fast" backends stay well below it on average.
        assert rows[(n, "compact")] > rows[(n, "authenticated")]
        assert rows[(n, "compact")] > rows[(n, "non-authenticated")]
