"""Hot-path performance harness: event core, RS coding, matrix wall-clock.

Unlike the ``bench_*.py`` pytest benchmarks (which pin the *complexity
shapes* of the paper's claims), this is a standalone wall-clock harness for
the three hot layers the sweeps spend their cycles in:

1. **Event core** — a timer+broadcast flood over a small system, driven
   through ``run_until_all_correct_decide`` exactly like the experiment
   runner drives real protocols.  Reports dispatched events per second.
2. **Reed-Solomon coding** — encode/decode MB/s of the optimized codec and
   of the retained reference implementation (``repro.coding.reference``),
   on clean fragments and with Byzantine corruption.
3. **Scenario matrix** — wall-clock seconds for a fixed representative
   slice of the scenario matrix through the parallel runner.

Usage::

    PYTHONPATH=src python benchmarks/bench_hotpath.py                 # print JSON
    PYTHONPATH=src python benchmarks/bench_hotpath.py --quick         # reduced sizes (CI smoke)
    PYTHONPATH=src python benchmarks/bench_hotpath.py --output out.json
    PYTHONPATH=src python benchmarks/bench_hotpath.py --check BENCH_hotpath.json \
        --max-regression 0.30                                         # CI regression gate

The committed ``BENCH_hotpath.json`` stores a ``before`` section (measured
at the pre-optimization commit) and an ``after`` section (this harness on
the optimized code), giving future PRs a perf trajectory.  ``--check``
compares a fresh measurement against the committed ``after`` numbers and
exits non-zero when events/sec regressed by more than ``--max-regression``.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

_SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.coding import ReedSolomonCode, Fragment, np_backend  # noqa: E402
from repro.core import SystemConfig  # noqa: E402
from repro.experiments import DEFAULT_SEED, Runner, make_scenario, sweep_seeds  # noqa: E402
from repro.sim import Process, ProtocolModule, Simulation, SynchronousDelayModel  # noqa: E402

try:  # the reference codec exists only after the hot-path PR
    from repro.coding import reference as rs_reference
except ImportError:  # pragma: no cover - pre-optimization tree
    rs_reference = None


# ----------------------------------------------------------------------
# 1. Event-core microbench
# ----------------------------------------------------------------------
class _FloodModule(ProtocolModule):
    """Broadcasts a small payload on every tick until a decision horizon."""

    def __init__(self, process, horizon, tick):
        super().__init__(process, "flood")
        self.horizon = horizon
        self.tick = tick

    def start(self):
        self.set_timer(self.tick, "tick")

    def on_message(self, sender, payload):
        self.process.count_dispatch()

    def on_timer(self, tag):
        self.process.count_dispatch()
        # A mix of payload shapes: flat tuples (the common case) and a nested
        # tuple now and then, so word_size sees both its fast and slow paths.
        if int(self.now) % 5 == 0:
            payload = ("ping", self.pid, ("nested", self.now))
        else:
            payload = ("ping", self.pid, int(self.now))
        self.broadcast(payload)
        if self.now >= self.horizon:
            self.process.decide("done")
        else:
            self.set_timer(self.tick, "tick")


class _FloodProcess(Process):
    dispatches = 0

    def on_start(self):
        _FloodProcess.dispatches += 1
        self.flood = _FloodModule(self, self._horizon, self._tick)
        self.flood.start()

    def count_dispatch(self):
        _FloodProcess.dispatches += 1


def bench_event_core(quick: bool) -> dict:
    n, t = 10, 3
    horizon = 60.0 if quick else 240.0
    tick = 0.5

    def factory(pid, sim):
        process = _FloodProcess(pid, sim)
        process._horizon = horizon
        process._tick = tick
        return process

    _FloodProcess.dispatches = 0
    system = SystemConfig(n, t)
    simulation = Simulation(system, delay_model=SynchronousDelayModel(seed=DEFAULT_SEED))
    simulation.populate(factory)
    started = time.perf_counter()
    simulation.run_until_all_correct_decide(max_events=50_000_000)
    elapsed = time.perf_counter() - started
    events = _FloodProcess.dispatches
    return {
        "n": n,
        "events": events,
        "seconds": round(elapsed, 4),
        "events_per_sec": round(events / elapsed, 1),
        "total_messages": simulation.metrics.total_messages,
    }


# ----------------------------------------------------------------------
# 2. Reed-Solomon throughput
# ----------------------------------------------------------------------
def _corrupt(fragments, count):
    corrupted = list(fragments)
    for index in range(count):
        fragment = corrupted[index]
        corrupted[index] = Fragment(
            index=fragment.index,
            symbols=tuple((symbol + 101) % 256 for symbol in fragment.symbols),
            blob_length=fragment.blob_length,
        )
    return corrupted


def _time_call(func, *args, repeat=3):
    best = float("inf")
    result = None
    for _ in range(repeat):
        started = time.perf_counter()
        result = func(*args)
        best = min(best, time.perf_counter() - started)
    return best, result


def bench_reed_solomon(quick: bool) -> dict:
    import random

    n, k = 24, 8
    # The large blob is the same size in quick mode: the optimized codec
    # decodes it in tens of milliseconds either way, and the --check gate
    # then always compares same-size corrupted-decode measurements.  Only
    # the reference codec's blob shrinks (it runs at ~0.002 MB/s).
    large_size = 65_536
    small_size = 512 if quick else 2_048
    rng = random.Random(DEFAULT_SEED)
    codec = ReedSolomonCode(total_symbols=n, data_symbols=k)
    reference_codec = (
        rs_reference.ReferenceReedSolomonCode(total_symbols=n, data_symbols=k)
        if rs_reference is not None
        else ReedSolomonCode(total_symbols=n, data_symbols=k)
    )

    def measure(code, blob, corruptions, repeat):
        encode_time, fragments = _time_call(code.encode, blob, repeat=repeat)
        received = _corrupt(fragments, corruptions)
        decode_time, decoded = _time_call(code.decode, received, repeat=repeat)
        assert decoded == blob
        mb = len(blob) / 1e6
        return {
            "blob_bytes": len(blob),
            "corrupted_fragments": corruptions,
            "encode_mb_s": round(mb / encode_time, 3),
            "decode_mb_s": round(mb / decode_time, 3),
        }

    large_blob = bytes(rng.randrange(256) for _ in range(large_size))
    small_blob = bytes(rng.randrange(256) for _ in range(small_size))
    report = {
        "n": n,
        "k": k,
        # Which kernels actually ran: regression gates only compare numbers
        # measured under the same backend as the committed baseline.
        "coding_backend": {
            "resolved": codec.backend,
            "numpy_available": np_backend.numpy_available(),
        },
        # Clean and corrupted decode are measured on the SAME blob sizes —
        # a corrupted number taken on a blob 32x smaller than the clean one
        # would hide the per-byte cost of error correction.
        "optimized_clean": measure(codec, large_blob, 0, repeat=3),
        "optimized_corrupted": measure(codec, large_blob, 3, repeat=2),
        # The small-blob entries exist so speedup ratios divide measurements
        # of the *same* workload (the reference codec cannot afford the big
        # blobs; fixed per-call overhead would bias a cross-size ratio).
        "optimized_small_clean": measure(codec, small_blob, 0, repeat=3),
        "optimized_small_corrupted": measure(codec, small_blob, 3, repeat=2),
        "reference_clean": measure(reference_codec, small_blob, 0, repeat=2),
        "reference_corrupted": measure(reference_codec, small_blob, 3, repeat=1),
    }
    reference_is_live = rs_reference is not None
    report["reference_is_distinct"] = reference_is_live
    if reference_is_live:
        report["encode_speedup_vs_reference"] = round(
            report["optimized_small_clean"]["encode_mb_s"]
            / report["reference_clean"]["encode_mb_s"],
            2,
        )
        report["decode_speedup_vs_reference"] = round(
            report["optimized_small_clean"]["decode_mb_s"]
            / report["reference_clean"]["decode_mb_s"],
            2,
        )
        report["corrupted_decode_speedup_vs_reference"] = round(
            report["optimized_small_corrupted"]["decode_mb_s"]
            / report["reference_corrupted"]["decode_mb_s"],
            2,
        )
    return report


# ----------------------------------------------------------------------
# 3. Scenario-matrix wall clock
# ----------------------------------------------------------------------
_MATRIX_SLICE = (
    ("binary", "crash", "eventual"),
    ("binary", "equivocation", "synchronous"),
    ("quad", "silent", "eventual"),
    ("universal-authenticated", "silent", "synchronous"),
    ("universal-authenticated", "equivocation", "jittered"),
    ("universal-compact", "none", "synchronous"),
    ("universal-compact", "silent", "eventual"),
    ("universal-non-authenticated", "silent", "synchronous"),
)


def bench_matrix(quick: bool) -> dict:
    scenarios = [make_scenario(p, a, d) for p, a, d in _MATRIX_SLICE]
    seeds = sweep_seeds(1 if quick else 3)

    def timed_sweep(batch_size):
        # Steady-state throughput: one untimed sweep warms the persistent
        # worker pool, then best-of-3 timed sweeps (the same best-of
        # convention as _time_call) measure the dispatch hot path without
        # conflating it with one-time pool boot cost.
        with Runner(parallel=4, timeout=300.0, batch_size=batch_size) as runner:
            runner.run(scenarios, seeds)
            best = float("inf")
            for _ in range(3):
                started = time.perf_counter()
                results = runner.run(scenarios, seeds)
                best = min(best, time.perf_counter() - started)
        failures = [result.scenario for result in results if not result.ok]
        return {
            "batch_size": "auto" if batch_size is None else batch_size,
            "runs": len(results),
            "failures": failures,
            "seconds": round(best, 3),
            "runs_per_sec": round(len(results) / best, 3),
        }

    unbatched = timed_sweep(1)
    batched = timed_sweep(None)  # the default: auto-sized microbatches
    return {
        "scenarios": len(scenarios),
        "seeds": len(seeds),
        "runs": batched["runs"],
        "failures": unbatched["failures"] + batched["failures"],
        # Headline numbers are the default configuration (auto batching).
        "seconds": batched["seconds"],
        "runs_per_sec": batched["runs_per_sec"],
        "batched": batched,
        "unbatched": unbatched,
        "batching_speedup": round(batched["runs_per_sec"] / unbatched["runs_per_sec"], 3),
    }


# ----------------------------------------------------------------------
# 4. Telemetry overhead (on vs off)
# ----------------------------------------------------------------------
def bench_telemetry(quick: bool) -> dict:
    """Telemetry-on vs telemetry-off deltas for the instrumented hot paths.

    Telemetry must stay descriptive *and* cheap: the sweep comparison runs
    the same serial matrix slice with the metrics registry disabled and
    enabled (instrumentation sites are parent-side, so serial execution is
    the worst case per run), and the micro sections measure the raw cost of
    a counter increment and a trace-sink event write.
    """
    import os

    from repro.obs import METRICS, TraceSink, set_enabled

    scenarios = [make_scenario(p, a, d) for p, a, d in _MATRIX_SLICE[:4]]
    seeds = sweep_seeds(1)

    def sweep_runs_per_sec() -> float:
        with Runner(timeout=300.0) as runner:
            started = time.perf_counter()
            results = runner.run(scenarios, seeds)
            elapsed = time.perf_counter() - started
        assert all(result.ok for result in results)
        return len(results) / elapsed

    try:
        set_enabled(False)
        sweep_off = sweep_runs_per_sec()
        set_enabled(True)
        sweep_on = sweep_runs_per_sec()

        increments = 200_000 if quick else 1_000_000
        counter = METRICS.counter("bench.telemetry.increments")

        def incs_per_sec() -> float:
            started = time.perf_counter()
            for _ in range(increments):
                counter.inc()
            return increments / (time.perf_counter() - started)

        counter_on = incs_per_sec()
        set_enabled(False)
        counter_off = incs_per_sec()
        set_enabled(True)

        trace_events = 20_000 if quick else 100_000
        with open(os.devnull, "w", encoding="utf-8") as handle:
            sink = TraceSink(handle)
            started = time.perf_counter()
            for index in range(trace_events):
                sink.event("bench.tick", index=index)
            trace_eps = trace_events / (time.perf_counter() - started)
            sink.close()
    finally:
        set_enabled(True)
        METRICS.reset()

    return {
        "sweep_runs_per_sec_off": round(sweep_off, 3),
        "sweep_runs_per_sec_on": round(sweep_on, 3),
        "sweep_overhead_fraction": round(max(0.0, 1.0 - sweep_on / sweep_off), 4),
        "counter_inc_per_sec_on": round(counter_on, 1),
        "counter_inc_per_sec_off": round(counter_off, 1),
        "trace_events_per_sec": round(trace_eps, 1),
    }


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------
def measure(quick: bool) -> dict:
    return {
        "quick": quick,
        "event_core": bench_event_core(quick),
        "reed_solomon": bench_reed_solomon(quick),
        "matrix": bench_matrix(quick),
        "telemetry": bench_telemetry(quick),
    }


def check_against(measured: dict, committed_path: pathlib.Path, max_regression: float) -> int:
    committed = json.loads(committed_path.read_text())
    stored = committed.get("after", committed)
    stored_eps = stored["event_core"]["events_per_sec"]
    measured_eps = measured["event_core"]["events_per_sec"]
    floor = stored_eps * (1.0 - max_regression)
    print(
        f"events/sec: measured {measured_eps:.0f}, committed {stored_eps:.0f}, "
        f"floor {floor:.0f} ({max_regression:.0%} regression budget)"
    )
    failed = False
    if measured["matrix"]["failures"]:
        print(f"FAIL: matrix slice runs failed: {measured['matrix']['failures']}")
        failed = True
    if measured_eps < floor:
        print("FAIL: event-core throughput regressed beyond the budget")
        failed = True
    # The corrupted-decode path regressed silently once (measured on a blob
    # 32x smaller than the clean path); gate it explicitly — but only when
    # this environment resolved the same coding backend the committed
    # numbers were measured under (a no-numpy runner is slower by design).
    stored_rs = stored.get("reed_solomon", {})
    measured_rs = measured["reed_solomon"]
    stored_backend = stored_rs.get("coding_backend")
    if stored_backend is not None and stored_backend == measured_rs.get("coding_backend"):
        stored_dirty = stored_rs["optimized_corrupted"]["decode_mb_s"]
        measured_dirty = measured_rs["optimized_corrupted"]["decode_mb_s"]
        dirty_floor = stored_dirty * (1.0 - max_regression)
        print(
            f"corrupted decode MB/s: measured {measured_dirty:.3f}, committed "
            f"{stored_dirty:.3f}, floor {dirty_floor:.3f}"
        )
        if measured_dirty < dirty_floor:
            print("FAIL: corrupted-decode throughput regressed beyond the budget")
            failed = True
    elif stored_backend is not None:
        print(
            "skip: corrupted-decode gate (coding backend differs from the committed baseline: "
            f"{measured_rs.get('coding_backend')} vs {stored_backend})"
        )
    if failed:
        return 1
    print("ok: no hot-path regression")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description="hot-path wall-clock benchmarks")
    parser.add_argument("--quick", action="store_true", help="reduced sizes for CI smoke runs")
    parser.add_argument("--output", type=pathlib.Path, default=None, help="write the measurement JSON")
    parser.add_argument(
        "--check", type=pathlib.Path, default=None, help="compare against a committed BENCH_hotpath.json"
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.30,
        help="allowed fractional events/sec drop vs the committed baseline (default 0.30)",
    )
    args = parser.parse_args(argv)

    measured = measure(quick=args.quick)
    print(json.dumps(measured, indent=2, sort_keys=True))
    if args.output is not None:
        args.output.write_text(json.dumps(measured, indent=2, sort_keys=True) + "\n")
        print(f"wrote {args.output}")
    if args.check is not None:
        return check_against(measured, args.check, args.max_regression)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
