"""E1 — Figure 1: the landscape of validity properties.

Paper claim: validity properties split into trivial ⊂ solvable ⊂ all; for
``n > 3t`` solvable = satisfies ``C_S``; for ``n <= 3t`` solvable = trivial.
The benchmark classifies the named properties and a uniform sample of the
whole property space and checks those containments.
"""

from conftest import run_once

from repro.analysis import figure1_report
from repro.core import SystemConfig


def test_fig1_named_and_sampled_properties_high_resilience(benchmark):
    report = run_once(benchmark, figure1_report, SystemConfig(4, 1), (0, 1), 40, 1)
    rows = {row["property"]: row for row in report.named_rows()}
    benchmark.extra_info["named"] = report.named_rows()
    benchmark.extra_info["sampled"] = report.sampled.as_dict()
    # Figure 1 containments hold on the sampled population.
    assert report.sampled.consistent_with_figure_1(SystemConfig(4, 1))
    # Named properties land where the literature says they do.
    assert rows["strong"]["solvable"] and not rows["strong"]["trivial"]
    assert rows["weak"]["solvable"]
    assert rows["free"]["trivial"] and rows["free"]["solvable"]
    assert rows["constant"]["trivial"]


def test_fig1_low_resilience_collapses_to_trivial(benchmark):
    report = run_once(benchmark, figure1_report, SystemConfig(3, 1), (0, 1), 40, 2)
    benchmark.extra_info["named"] = report.named_rows()
    benchmark.extra_info["sampled"] = report.sampled.as_dict()
    assert report.sampled.consistent_with_figure_1(SystemConfig(3, 1))
    # With n <= 3t the solvable-non-trivial region of Figure 1 is empty.
    assert report.sampled.solvable_non_trivial == 0
    for row in report.named_rows():
        if row["solvable"]:
            assert row["trivial"], row
