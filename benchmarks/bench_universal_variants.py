"""E8 — Section 5.2: every solvable consensus variant from vector consensus.

Paper claim: the design of Universal shows that any solvable, non-trivial
consensus variant can be solved via vector consensus at no extra cost — only
the final ``Lambda`` application differs.  The benchmark runs one workload per
named validity property and checks that every decision is admissible and that
the message cost is essentially identical across variants (same backend, same
workload).
"""

from conftest import run_once

from repro.analysis import run_universal_execution
from repro.core import SystemConfig

PROPERTIES = ("strong", "weak", "correct-proposal", "median", "convex-hull", "interval")


def test_universal_solves_every_standard_variant(benchmark):
    def run_all():
        system = SystemConfig(7, 2)
        proposals = {0: 3, 1: 3, 2: 3, 3: 5, 4: 1, 5: 3, 6: 9}
        return {
            key: run_universal_execution(
                system,
                property_key=key,
                backend="authenticated",
                proposals=proposals,
                faulty=(5, 6),
                seed=11,
            )
            for key in PROPERTIES
        }

    reports = run_once(benchmark, run_all)
    benchmark.extra_info["rows"] = {key: report.summary_row() for key, report in reports.items()}
    for key, report in reports.items():
        assert report.agreement and report.all_decided, key
        assert report.validity_satisfied, key
    message_counts = [report.message_complexity for report in reports.values()]
    # Same backend, same workload: the variant only changes Lambda, not the cost.
    assert max(message_counts) - min(message_counts) <= 0.2 * max(message_counts)
