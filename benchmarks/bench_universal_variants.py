"""E8 — Section 5.2: every solvable consensus variant from vector consensus.

Paper claim: the design of Universal shows that any solvable, non-trivial
consensus variant can be solved via vector consensus at no extra cost — only
the final ``Lambda`` application differs.  The benchmark runs one scenario
per named validity property through the experiment runner (same workload,
same backend, same seed) and checks that every decision is admissible and
that the message cost is essentially identical across variants.
"""

from conftest import BENCH_SEED, run_once

from repro.experiments import Runner, make_scenario

PROPERTIES = ("strong", "weak", "correct-proposal", "median", "convex-hull", "interval")
PROPOSALS = ((0, 3), (1, 3), (2, 3), (3, 5), (4, 1), (5, 3), (6, 9))


def test_universal_solves_every_standard_variant(benchmark):
    scenarios = [
        make_scenario(
            "universal-authenticated",
            adversary="silent",
            delay="synchronous",
            n=7,
            t=2,
            property_key=key,
            name=f"variant:{key}",
            params={"proposals": PROPOSALS},
        )
        for key in PROPERTIES
    ]

    def run_all():
        results = Runner().run(scenarios, seeds=(BENCH_SEED,))
        return {result.scenario.split(":", 1)[1]: result for result in results}

    reports = run_once(benchmark, run_all)
    benchmark.extra_info["rows"] = {
        key: {
            "messages": report.message_complexity,
            "words": report.communication_complexity,
            "latency": round(report.decision_latency, 2),
            "decisions": list(report.decisions),
        }
        for key, report in reports.items()
    }
    for key, report in reports.items():
        assert report.ok, (key, report.error, report.violations)
        assert report.agreement and report.completed, key
        assert report.validity_ok, key
    message_counts = [report.message_complexity for report in reports.values()]
    # Same backend, same workload: the variant only changes Lambda, not the cost.
    assert max(message_counts) - min(message_counts) <= 0.2 * max(message_counts)
