"""E6 — Algorithm 3: the non-authenticated variant is polynomially more expensive.

Paper claim: the signature-free vector consensus (Bracha broadcast + binary
consensus per process) gives a non-authenticated Universal with ``O(n^4)``
message complexity, versus ``O(n^2)`` for the authenticated Algorithm 1.  The
benchmark measures both backends on the same workloads and checks the
ordering and the growing gap.
"""

from conftest import run_once

from repro.analysis import compare_backends

SIZES = (4, 7)


def test_alg3_gap_to_authenticated_backend(benchmark):
    results = run_once(benchmark, compare_backends, SIZES, ("authenticated", "non-authenticated"), "strong", 1)
    auth, non_auth = results["authenticated"], results["non-authenticated"]
    benchmark.extra_info["authenticated"] = auth.table()
    benchmark.extra_info["non_authenticated"] = non_auth.table()
    for sweep in results.values():
        assert all(report.agreement and report.all_decided and report.validity_satisfied for report in sweep.rows)
    ratios = [na / max(1, a) for a, na in zip(auth.messages(), non_auth.messages())]
    benchmark.extra_info["message_ratio_non_auth_over_auth"] = [round(r, 2) for r in ratios]
    # The non-authenticated variant is strictly more expensive, and the gap widens with n.
    assert all(ratio > 2 for ratio in ratios)
    assert ratios[-1] > ratios[0]
    # Its growth is also steeper than the authenticated one's.
    assert non_auth.message_growth_exponent() > auth.message_growth_exponent()
