"""E5 — Theorem 5 / Algorithms 1-2: Universal costs O(n^2) messages.

Paper claim: with a PKI, Universal (on authenticated vector consensus) solves
any solvable non-trivial consensus variant with ``O(n^2)`` messages, matching
the Theorem 4 lower bound up to constants when ``t`` is proportional to ``n``.
The benchmark sweeps the system size with ``t`` silent Byzantine processes,
fits the growth exponent of the post-GST message count, and checks it stays
quadratic-ish (well below cubic), with every execution correct and admissible.
"""

from conftest import run_once

from repro.analysis import sweep_universal_complexity

SIZES = (4, 7, 10, 13)


def test_thm5_authenticated_universal_message_growth(benchmark):
    sweep = run_once(benchmark, sweep_universal_complexity, SIZES, "authenticated", "strong", True, 1)
    exponent = sweep.message_growth_exponent()
    benchmark.extra_info["rows"] = sweep.table()
    benchmark.extra_info["message_growth_exponent"] = round(exponent, 3)
    assert all(report.agreement and report.all_decided and report.validity_satisfied for report in sweep.rows)
    # Quadratic shape: the fitted exponent stays clearly below cubic and above linear.
    assert 1.2 < exponent < 2.8
    # Monotone in n.
    messages = sweep.messages()
    assert all(earlier < later for earlier, later in zip(messages, messages[1:]))


def test_thm5_other_validity_properties_same_cost_shape(benchmark):
    def sweep_two_properties():
        return {
            key: sweep_universal_complexity((4, 7, 10), backend="authenticated", property_key=key, seed=2)
            for key in ("weak", "convex-hull")
        }

    sweeps = run_once(benchmark, sweep_two_properties)
    benchmark.extra_info["exponents"] = {
        key: round(sweep.message_growth_exponent(), 3) for key, sweep in sweeps.items()
    }
    for key, sweep in sweeps.items():
        assert all(report.agreement and report.validity_satisfied for report in sweep.rows), key
        assert sweep.message_growth_exponent() < 2.8, key
