"""E5 — Theorem 5 / Algorithms 1-2: Universal costs O(n^2) messages.

Paper claim: with a PKI, Universal (on authenticated vector consensus) solves
any solvable non-trivial consensus variant with ``O(n^2)`` messages, matching
the Theorem 4 lower bound up to constants when ``t`` is proportional to ``n``.
The benchmark sweeps the system size through the experiment runner with ``t``
silent Byzantine processes, fits the growth exponent of the post-GST message
count, and checks it stays quadratic-ish (well below cubic), with every
execution correct and admissible.
"""

from conftest import BENCH_SEED, run_once

from repro.experiments import Runner, growth_exponent, make_scenario

SIZES = (4, 7, 10, 13)


def _sweep(property_key, sizes, seed):
    scenarios = [
        make_scenario(
            "universal-authenticated",
            adversary="silent",
            delay="synchronous",
            n=n,
            t=(n - 1) // 3,
            property_key=property_key,
            name=f"thm5:{property_key}:n={n}",
        )
        for n in sizes
    ]
    results = Runner(parallel=4).run(scenarios, seeds=(seed,))
    assert all(result.ok for result in results), [result.error or result.violations for result in results]
    return results


def test_thm5_authenticated_universal_message_growth(benchmark):
    results = run_once(benchmark, _sweep, "strong", SIZES, BENCH_SEED)
    messages = [result.message_complexity for result in results]
    exponent = growth_exponent(SIZES, messages)
    benchmark.extra_info["rows"] = [
        {"n": size, "messages": result.message_complexity, "words": result.communication_complexity}
        for size, result in zip(SIZES, results)
    ]
    benchmark.extra_info["message_growth_exponent"] = round(exponent, 3)
    # Quadratic shape: the fitted exponent stays clearly below cubic and above linear.
    assert 1.2 < exponent < 2.8
    # Monotone in n.
    assert all(earlier < later for earlier, later in zip(messages, messages[1:]))


def test_thm5_other_validity_properties_same_cost_shape(benchmark):
    def sweep_two_properties():
        return {key: _sweep(key, SIZES[:3], BENCH_SEED) for key in ("weak", "convex-hull")}

    sweeps = run_once(benchmark, sweep_two_properties)
    exponents = {
        key: growth_exponent(SIZES[:3], [result.message_complexity for result in results])
        for key, results in sweeps.items()
    }
    benchmark.extra_info["exponents"] = {key: round(value, 3) for key, value in exponents.items()}
    for key, value in exponents.items():
        assert value < 2.8, key
