"""Setuptools shim for legacy editable installs (``pip install -e . --no-use-pep517``).

The canonical build configuration lives in ``pyproject.toml``; this file only
exists so that environments with an older setuptools/pip (without the
``wheel`` package) can still perform an editable install offline.
"""

from setuptools import setup

setup()
