#!/usr/bin/env python3
"""External Validity on a committee blockchain (the Appendix C extended formalism).

Clients sign transactions; servers run Universal to agree on the next batch.
The extended formalism tracks what the servers can *discover* (they cannot
forge client signatures) and what the Byzantine servers additionally know
(the adversary pool).  The example shows:

* the decided batch always satisfies the external predicate (valid signatures,
  no double spend);
* the decision respects Assumption 2: in a canonical execution (silent
  faulty servers) only transactions observed by correct servers are ordered;
* a transaction known only to the adversary can be admissible in general, but
  is never decided when the faulty servers stay silent.

Run with:  python examples/blockchain_external_validity.py
"""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.consensus import universal_process_factory
from repro.core import InputConfiguration, SystemConfig, UniversalSpec, ValidityProperty
from repro.core.extended import (
    ClientWallet,
    ExtendedInputConfiguration,
    TransactionVerifier,
    batch_decision_rule,
    external_validity_property,
)
from repro.sim import Simulation, SynchronousDelayModel, silent_factory


def main() -> None:
    system = SystemConfig(n=4, t=1)
    verifier = TransactionVerifier()
    alice, bob, carol = ClientWallet("alice"), ClientWallet("bob"), ClientWallet("carol")

    tx_pay_bob = alice.issue(1, "alice pays bob 5")
    tx_pay_carol = bob.issue(1, "bob pays carol 2")
    tx_refund = carol.issue(1, "carol pays alice 1")
    tx_hidden = carol.issue(2, "carol pays mallory 99")  # known only to the Byzantine server

    proposals = {
        0: (tx_pay_bob, tx_pay_carol),
        1: (tx_pay_bob,),
        2: (tx_pay_carol, tx_refund),
        3: (tx_hidden,),
    }
    faulty = [3]

    class BatchValidity(ValidityProperty):
        name = "external-validity-projection"

        def is_admissible(self, config, value):
            return verifier.batch_is_valid(value)

    spec = UniversalSpec(
        system=system, validity=BatchValidity(), decision_rule=batch_decision_rule(verifier)
    )
    simulation = Simulation(system, delay_model=SynchronousDelayModel(seed=9))
    simulation.populate(
        universal_process_factory(spec, proposals), faulty=faulty, faulty_factory=silent_factory
    )
    simulation.run_until_all_correct_decide(until=5_000)

    decided_batch = next(iter(simulation.decisions().values()))
    print("=== Committee blockchain with External Validity ===")
    print(f"servers: {system.n} (silent Byzantine: {faulty})")
    print("decided batch:")
    for transaction in decided_batch:
        print(f"    {transaction.client}#{transaction.sequence_number}: {transaction.payload}")
    print(f"agreement: {simulation.agreement_holds()}")
    print(f"external predicate satisfied: {verifier.batch_is_valid(decided_batch)}")

    prop = external_validity_property(verifier)
    extended = ExtendedInputConfiguration.build(
        InputConfiguration.from_mapping({pid: proposals[pid] for pid in simulation.correct_processes}),
        adversary_pool=[tx_hidden],
    )
    print(f"admissible under the extended formalism: {prop.is_admissible(extended, decided_batch)}")
    print(f"respects Assumption 2 (canonical execution): "
          f"{prop.execution_respects_assumptions(extended, decided_batch, canonical=True)}")
    print(f"hidden adversary transaction ordered: {tx_hidden in decided_batch}")


if __name__ == "__main__":
    main()
