#!/usr/bin/env python3
"""One vector-consensus run, every consensus variant: the point of Universal.

Section 5.2 observes that Vector Validity is a "strongest" validity property:
once correct processes agree on a vector of n - t proposals, *any* solvable
consensus variant is obtained for free by applying that variant's Lambda
function to the vector.  This example drives the experiment runner
(:mod:`repro.experiments`) over one scenario per named validity property and
one per vector-consensus backend — the same workload throughout — and shows
that every decision is admissible, and what each backend costs.

Both sweeps share one :class:`~repro.jobs.session.ExecutionSession`, so the
second reuses the first's warm worker pool instead of spawning its own.

Run with:  python examples/consensus_variants.py
"""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.experiments import DEFAULT_SEED, make_scenario
from repro.jobs import ExecutionSession

PROPERTIES = ["strong", "weak", "correct-proposal", "median", "convex-hull", "interval"]
BACKENDS = ["authenticated", "non-authenticated", "compact"]
PROPOSALS = ((0, 3), (1, 3), (2, 3), (3, 5), (4, 1), (5, 3), (6, 9))


def main() -> None:
    proposals = dict(PROPOSALS)
    print(f"system: n=7, t=2; proposals={proposals}; adversary: 2 silent Byzantine (pids 5, 6)")
    print()

    print("=== Every consensus variant from one algorithmic design (authenticated backend) ===")
    variant_scenarios = [
        make_scenario(
            "universal-authenticated",
            adversary="silent",
            delay="synchronous",
            n=7,
            t=2,
            property_key=key,
            name=key,
            params={"proposals": PROPOSALS},
        )
        for key in PROPERTIES
    ]
    with ExecutionSession(parallel=3) as session:
        for report in session.runner.run(variant_scenarios, seeds=(DEFAULT_SEED,)):
            decision = report.decisions[0][1] if report.decisions else "<none>"
            print(f"{report.scenario:18s} decided {decision:6}  admissible={report.validity_ok}  "
                  f"agreement={report.agreement}  messages={report.message_complexity}")
        print()

        print("=== The three vector-consensus backends (Strong Validity) ===")
        print(f"{'backend':20s} {'messages':>9s} {'words':>9s} {'latency':>9s}")
        backend_scenarios = [
            make_scenario(
                f"universal-{backend}",
                adversary="silent",
                delay="synchronous",
                n=7,
                t=2,
                name=backend,
                params={"proposals": PROPOSALS},
            )
            for backend in BACKENDS
        ]
        for report in session.runner.run(backend_scenarios, seeds=(DEFAULT_SEED,)):
            print(f"{report.scenario:20s} {report.message_complexity:9d} {report.communication_complexity:9d} "
                  f"{report.decision_latency:9.1f}")
    print()
    print("Algorithm 1 (authenticated) minimises messages; Algorithm 3 (non-authenticated)")
    print("avoids signatures at a polynomial message cost; Algorithm 6 (compact) trades")
    print("latency for fewer words on the wire.")
    print()
    print("Sweep the full protocol x adversary x delay matrix with:")
    print("  python -m repro.experiments run --seeds 3 --parallel 4")


if __name__ == "__main__":
    main()
