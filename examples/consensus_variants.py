#!/usr/bin/env python3
"""One vector-consensus run, every consensus variant: the point of Universal.

Section 5.2 observes that Vector Validity is a "strongest" validity property:
once correct processes agree on a vector of n - t proposals, *any* solvable
consensus variant is obtained for free by applying that variant's Lambda
function to the vector.  This example runs Universal once per named validity
property (over the three vector-consensus backends) on the same proposal
assignment and shows that every decision is admissible, and what each backend
costs.

Run with:  python examples/consensus_variants.py
"""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.analysis import run_universal_execution
from repro.core import SystemConfig

PROPERTIES = ["strong", "weak", "correct-proposal", "median", "convex-hull", "interval"]
BACKENDS = ["authenticated", "non-authenticated", "compact"]


def main() -> None:
    system = SystemConfig(n=7, t=2)
    proposals = {0: 3, 1: 3, 2: 3, 3: 5, 4: 1, 5: 3, 6: 9}
    faulty = (5, 6)

    print(f"system: n={system.n}, t={system.t}; proposals={proposals}; silent Byzantine: {list(faulty)}")
    print()
    print("=== Every consensus variant from one algorithmic design (authenticated backend) ===")
    for key in PROPERTIES:
        report = run_universal_execution(
            system, property_key=key, backend="authenticated", proposals=proposals, faulty=faulty, seed=11
        )
        decision = next(iter(report.decisions.values()))
        print(f"{key:18s} decided {decision!r:6}  admissible={report.validity_satisfied}  "
              f"agreement={report.agreement}  messages={report.message_complexity}")
    print()

    print("=== The three vector-consensus backends (Strong Validity) ===")
    print(f"{'backend':20s} {'messages':>9s} {'words':>9s} {'latency':>9s}")
    for backend in BACKENDS:
        report = run_universal_execution(
            system, property_key="strong", backend=backend, proposals=proposals, faulty=faulty, seed=11
        )
        print(f"{backend:20s} {report.message_complexity:9d} {report.communication_complexity:9d} "
              f"{report.decision_latency:9.1f}")
    print()
    print("Algorithm 1 (authenticated) minimises messages; Algorithm 3 (non-authenticated)")
    print("avoids signatures at a polynomial message cost; Algorithm 6 (compact) trades")
    print("latency for fewer words on the wire.")


if __name__ == "__main__":
    main()
