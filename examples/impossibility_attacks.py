#!/usr/bin/env python3
"""The paper's two impossibility arguments, run as concrete attacks.

* Theorem 1 (triviality when n <= 3t): the split-brain adversary of Lemma 2 —
  a group of double-dealing Byzantine processes plus a partitioned network —
  makes the library's own Universal algorithm disagree when it is run outside
  its resilience envelope (n = 3t), and fails to do so once n > 3t.

* Theorem 4 (Omega(t^2) messages): the Dolev-Reischuk-style isolation
  adversary breaks a deliberately cheap O(n)-message protocol, while Universal
  under the same scheduling stays safe and simply pays the quadratic message
  bill the theorem says is unavoidable.

Run with:  python examples/impossibility_attacks.py
"""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.analysis import run_lower_bound_experiment, run_partitioning_attack
from repro.core import SystemConfig


def main() -> None:
    print("=== Theorem 1: split-brain attack (Lemma 2) ===")
    for label, kwargs in [
        ("n = 3t  (n=6, t=2)  -> attack must succeed", dict(t=2)),
        ("n = 3t  (n=3, t=1)  -> attack must succeed", dict(t=1)),
        ("n > 3t  (n=7, t=2)  -> attack must fail", dict(t=2, system=SystemConfig(7, 2))),
    ]:
        report = run_partitioning_attack(**kwargs)
        summary = report.summary()
        print(f"{label}")
        print(f"    group A decided {summary['group_a_decisions']}, "
              f"group C decided {summary['group_c_decisions']}, "
              f"agreement violated: {summary['agreement_violated']}")
    print()

    print("=== Theorem 4: Dolev-Reischuk-style isolation attack ===")
    for n in (7, 10, 13):
        report = run_lower_bound_experiment(n=n)
        summary = report.summary()
        print(f"n={summary['n']}, t={summary['t']}: threshold (t/2)^2 = {summary['threshold_(t/2)^2']}")
        print(f"    cheap O(n) protocol:  {summary['cheap_protocol_messages']:5d} messages, "
              f"disagreement: {summary['cheap_protocol_disagrees']}")
        print(f"    Universal:            {summary['universal_messages']:5d} messages, "
              f"disagreement: {summary['universal_disagrees']} "
              f"(above threshold: {summary['universal_above_threshold']})")


if __name__ == "__main__":
    main()
