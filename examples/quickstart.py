#!/usr/bin/env python3
"""Quickstart: classify a validity property and solve it with Universal.

This example walks through the library's two halves:

1. the *formalism*: define a validity property, check triviality and the
   similarity condition, and ask the classifier whether it is solvable;
2. the *protocol*: run the Universal algorithm (Algorithm 2, on top of the
   authenticated vector consensus of Algorithm 1) in the partially
   synchronous simulator and confirm that the decision is admissible.

Run with:  python examples/quickstart.py
"""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.core import (
    InputConfiguration,
    StrongValidity,
    SystemConfig,
    UniversalSpec,
    check_similarity_condition,
    check_triviality,
    classify,
)
from repro.consensus import universal_process_factory
from repro.sim import Simulation, SynchronousDelayModel, silent_factory


def main() -> None:
    # ------------------------------------------------------------------
    # 1. The formalism: is Strong Validity solvable for n = 7, t = 2?
    # ------------------------------------------------------------------
    system = SystemConfig(n=7, t=2)
    domain = [0, 1]
    prop = StrongValidity(output_domain=domain)

    triviality = check_triviality(prop, system, domain)
    similarity = check_similarity_condition(prop, system, domain)
    verdict = classify(prop, system, domain)

    print("=== Formalism ===")
    print(f"system: n={system.n}, t={system.t} (n > 3t: {system.tolerates_byzantine_faults()})")
    print(f"property: {prop.name}")
    print(f"trivial: {triviality.trivial}")
    print(f"satisfies similarity condition C_S: {similarity.holds}")
    print(f"solvable: {verdict.solvable}")
    print(f"reason: {verdict.reason}")
    print()

    # The same property is unsolvable once n <= 3t (Theorem 1).
    weak_system = SystemConfig(n=6, t=2)
    print(f"with n=6, t=2 (n <= 3t): solvable = {classify(prop, weak_system, domain).solvable}")
    print()

    # ------------------------------------------------------------------
    # 2. The protocol: run Universal with two silent Byzantine processes.
    # ------------------------------------------------------------------
    spec = UniversalSpec.for_standard_property(system, "strong")
    proposals = {0: 1, 1: 1, 2: 1, 3: 1, 4: 0, 5: 0, 6: 0}
    faulty = [5, 6]

    simulation = Simulation(system, delay_model=SynchronousDelayModel(seed=42))
    simulation.populate(
        universal_process_factory(spec, proposals, backend="authenticated"),
        faulty=faulty,
        faulty_factory=silent_factory,
    )
    simulation.run_until_all_correct_decide(until=10_000)

    execution_config = InputConfiguration.from_mapping(
        {pid: proposals[pid] for pid in simulation.correct_processes}
    )
    decisions = simulation.decisions()

    print("=== Protocol (Universal over authenticated vector consensus) ===")
    print(f"proposals: {proposals}  (faulty & silent: {faulty})")
    print(f"decisions: {decisions}")
    print(f"agreement: {simulation.agreement_holds()}")
    print(f"all decisions admissible: "
          f"{all(spec.validity.is_admissible(execution_config, v) for v in decisions.values())}")
    print(f"message complexity (paper metric): {simulation.metrics.message_complexity}")
    print(f"communication complexity (words):  {simulation.metrics.communication_complexity}")
    print(f"decision latency (simulated time): {simulation.metrics.decision_latency():.1f}")
    print()

    # ------------------------------------------------------------------
    # 3. The experiment runner + run store: sweep scenarios instead of
    #    hand-wiring runs, and never compute the same run twice.
    # ------------------------------------------------------------------
    import tempfile
    import time

    from repro.experiments import DEFAULT_SEED, make_scenario, sweep_seeds
    from repro.jobs import ExecutionSession, SweepJob, specs_to_payloads

    scenarios = [
        make_scenario("universal-authenticated", adversary=adversary, delay=delay)
        for adversary in ("silent", "crash", "equivocation")
        for delay in ("synchronous", "eventual", "partition", "jittered")
    ]
    seeds = sweep_seeds(3, base=DEFAULT_SEED)
    job = SweepJob(specs_to_payloads(scenarios), seeds=tuple(seeds), collect_records=True)

    # Every run is a pure function of (scenario, seed, code), so results are
    # content-addressed: the first sweep executes and persists, an identical
    # second sweep is served entirely from the store — 0 runs executed.  The
    # session owns the worker pool and the store connection; the job is pure
    # data, so submitting the same spec twice is exactly a warm re-sweep.
    with tempfile.TemporaryDirectory() as tmp:
        store_path = pathlib.Path(tmp) / "runs.db"
        with ExecutionSession(parallel=2, store_path=store_path) as session:
            started = time.perf_counter()
            cold = session.submit(job)
            cold_seconds = time.perf_counter() - started
        with ExecutionSession(parallel=2, store_path=store_path) as session:  # a later process
            started = time.perf_counter()
            warm = session.submit(job)
            warm_seconds = time.perf_counter() - started

    print("=== Experiments (parallel sweep, deterministic per (scenario, seed)) ===")
    for name, summary in sorted(cold.summaries.items()):
        print(f"{name:45s} runs={summary.runs} ok={summary.ok} "
              f"msgs mean={summary.messages.mean:.1f} latency mean={summary.latency.mean:.1f}")
    identical = [a.canonical_json() for a in cold.records] == [b.canonical_json() for b in warm.records]
    print(f"cold sweep: {cold.run_count - cold.store_stats['hits']} runs executed in {cold_seconds:.2f}s "
          f"(hits={cold.store_stats['hits']}, stored={cold.store_stats['stored']})")
    print(f"warm sweep: {warm.store_stats['hits']} cache hits, "
          f"{warm.run_count - warm.store_stats['hits']} executed, {warm_seconds:.3f}s "
          f"({cold_seconds / max(warm_seconds, 1e-9):.0f}x) — byte-identical: {identical}")
    print("full matrix: python -m repro.experiments --list "
          "(persist sweeps with: python -m repro.experiments run --store runs.db)")
    print("theory side: python -m repro.experiments analyze "
          "(classify validity properties, cross-check them against the matrix)")


if __name__ == "__main__":
    main()
