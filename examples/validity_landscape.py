#!/usr/bin/env python3
"""The Figure 1 landscape: which validity properties are solvable, and why.

Classifies the named validity properties from the literature in two
resilience regimes (n > 3t and n = 3t), samples the space of *all* validity
properties over a tiny system, and re-derives the Fitzi-Garay threshold for
Correct-Proposal Validity ("strong consensus") as a function of |V|.

Run with:  python examples/validity_landscape.py
"""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.analysis import cross_check_tasks, figure1_report, run_analysis, sample_validity_property_space
from repro.core import CorrectProposalValidity, SystemConfig, classify


def print_table(rows, columns):
    widths = {col: max(len(col), *(len(str(row[col])) for row in rows)) for col in columns}
    header = "  ".join(col.ljust(widths[col]) for col in columns)
    print(header)
    print("-" * len(header))
    for row in rows:
        print("  ".join(str(row[col]).ljust(widths[col]) for col in columns))
    print()


def main() -> None:
    print("=== Named validity properties, n=4, t=1 (n > 3t) ===")
    report = figure1_report(SystemConfig(4, 1), domain=(0, 1))
    print_table(report.named_rows(), ["property", "trivial", "satisfies_C_S", "solvable"])

    print("=== Named validity properties, n=3, t=1 (n <= 3t: only trivial ones survive) ===")
    report_low = figure1_report(SystemConfig(3, 1), domain=(0, 1))
    print_table(report_low.named_rows(), ["property", "trivial", "satisfies_C_S", "solvable"])

    print("=== Sampling the space of ALL validity properties (n=3, t=1, |V|=2) ===")
    counts = sample_validity_property_space(SystemConfig(3, 1), [0, 1], [0, 1], samples=60, seed=7)
    print(counts.as_dict())
    print(f"consistent with Figure 1: {counts.consistent_with_figure_1(SystemConfig(3, 1))}")
    print()

    print("=== Correct-Proposal Validity: the n > (|V|+1)t threshold, re-derived ===")
    rows = []
    for n in (4, 5):
        for domain_size in (2, 3):
            domain = list(range(domain_size))
            verdict = classify(CorrectProposalValidity(domain), SystemConfig(n, 1), domain)
            rows.append(
                {
                    "n": n,
                    "t": 1,
                    "|V|": domain_size,
                    "classifier says solvable": verdict.solvable,
                    "n > (|V|+1)t": n > (domain_size + 1) * 1,
                }
            )
    print_table(rows, ["n", "t", "|V|", "classifier says solvable", "n > (|V|+1)t"])

    print("=== The analyze pipeline: verdicts for every property the sweep matrix targets ===")
    analysis = run_analysis(cross_check_tasks())
    for verdict in analysis.verdicts:
        print(f"  {verdict.label}: solvable={verdict.solvable} via {verdict.method} — {verdict.message_bound}")
    print()
    print("batch-classify whole families (and cross-check them against the recorded matrix) with:")
    print("  python -m repro.experiments analyze --parallel 4 --store runs.db")


if __name__ == "__main__":
    main()
