"""Simulated public-key infrastructure (PKI) signatures.

The paper assumes that every process can sign messages and that faulty
processes cannot forge the signatures of correct processes.  In the
simulator this is modelled with keyed HMACs derived from a master seed held
by a :class:`KeyAuthority`: a signature carries an authentication tag that
only the authority can produce, and the honest protocol code only ever asks
the authority to sign on behalf of the process that owns the key.  Byzantine
behaviours implemented in :mod:`repro.sim.adversary` deliberately never call
``sign`` for a process they do not control, which preserves the
unforgeability abstraction while keeping everything deterministic and
dependency-free.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass
from typing import Any

from .hashing import stable_encode


@dataclass(frozen=True)
class Signature:
    """A digital signature by one process over one message.

    Attributes:
        signer: Index of the signing process.
        tag: Hex authentication tag binding the signer to the message.
    """

    signer: int
    tag: str

    def stable_fields(self) -> tuple:
        return (self.signer, self.tag)

    @property
    def words(self) -> int:
        """Size in words (a signature counts as one word, as in the paper)."""
        return 1


class KeyAuthority:
    """Issues and verifies signatures for all processes of a system.

    One authority instance is shared by a simulation.  It is equivalent to a
    PKI in which every process knows every public key: anyone can *verify*
    any signature, while producing a valid tag for process ``i`` requires
    process ``i``'s secret key.
    """

    def __init__(self, n: int, seed: int = 0):
        if n < 1:
            raise ValueError("a key authority needs at least one process")
        self._n = n
        self._secrets = [
            hashlib.sha256(f"repro-secret-{seed}-{pid}".encode()).digest() for pid in range(n)
        ]

    @property
    def n(self) -> int:
        return self._n

    def sign(self, signer: int, message: Any) -> Signature:
        """Sign ``message`` with ``signer``'s key."""
        if not 0 <= signer < self._n:
            raise ValueError(f"unknown signer {signer}")
        tag = hmac.new(self._secrets[signer], stable_encode(message), hashlib.sha256).hexdigest()
        return Signature(signer=signer, tag=tag)

    def verify(self, signature: Signature, message: Any, expected_signer: int | None = None) -> bool:
        """Check that ``signature`` is a valid signature of ``message``.

        Args:
            signature: The signature to verify.
            message: The signed message.
            expected_signer: When given, additionally require the signature
                to come from this process.
        """
        if not isinstance(signature, Signature):
            return False
        if not 0 <= signature.signer < self._n:
            return False
        if expected_signer is not None and signature.signer != expected_signer:
            return False
        expected = hmac.new(
            self._secrets[signature.signer], stable_encode(message), hashlib.sha256
        ).hexdigest()
        return hmac.compare_digest(expected, signature.tag)

    def forge(self, claimed_signer: int, message: Any) -> Signature:
        """Produce an *invalid* signature claiming to come from ``claimed_signer``.

        Used by Byzantine behaviours and by tests to confirm that forged
        signatures are rejected: the tag is derived from a key the adversary
        does not hold, so verification fails.
        """
        fake_secret = hashlib.sha256(f"forged-{claimed_signer}".encode()).digest()
        tag = hmac.new(fake_secret, stable_encode(message), hashlib.sha256).hexdigest()
        return Signature(signer=claimed_signer, tag=tag)
