"""Collision-resistant hashing of protocol values.

The paper's Appendix B.3 uses a collision-resistant hash function ``hash(.)``
over disseminated vectors.  This module provides a deterministic, canonical
serialisation of the Python values used by the protocols (so that equal
values always hash identically, across processes and across runs) and a
SHA-256 digest on top of it.
"""

from __future__ import annotations

import hashlib
from typing import Any


def stable_encode(value: Any) -> bytes:
    """Serialise a protocol value into a canonical byte string.

    Supports the primitives and containers that protocol messages are built
    from.  Dictionaries and sets are serialised in sorted-key order so that
    logically equal values encode identically.  Objects exposing a
    ``stable_fields()`` method (used by the library's message and
    configuration classes) are encoded from those fields.
    """
    if value is None:
        return b"N"
    if isinstance(value, bool):
        return b"B1" if value else b"B0"
    if isinstance(value, int):
        return b"I" + str(value).encode()
    if isinstance(value, float):
        return b"F" + repr(value).encode()
    if isinstance(value, str):
        encoded = value.encode()
        return b"S" + str(len(encoded)).encode() + b":" + encoded
    if isinstance(value, bytes):
        return b"Y" + str(len(value)).encode() + b":" + value
    if isinstance(value, (list, tuple)):
        inner = b"".join(stable_encode(item) for item in value)
        return b"L" + str(len(value)).encode() + b":" + inner
    if isinstance(value, (set, frozenset)):
        encoded_items = sorted(stable_encode(item) for item in value)
        return b"E" + str(len(encoded_items)).encode() + b":" + b"".join(encoded_items)
    if isinstance(value, dict):
        encoded_items = sorted(
            stable_encode(key) + b"=" + stable_encode(item) for key, item in value.items()
        )
        return b"D" + str(len(encoded_items)).encode() + b":" + b"".join(encoded_items)
    stable_fields = getattr(value, "stable_fields", None)
    if callable(stable_fields):
        return b"O" + type(value).__name__.encode() + b":" + stable_encode(stable_fields())
    pairs = getattr(value, "pairs", None)
    if pairs is not None:
        # InputConfiguration and similar pair-carrying containers.
        return b"C" + stable_encode([(pair.process, pair.proposal) for pair in pairs])
    return b"R" + repr(value).encode()


def digest(value: Any) -> str:
    """Return a hex SHA-256 digest of a protocol value."""
    return hashlib.sha256(stable_encode(value)).hexdigest()


def short_digest(value: Any, length: int = 16) -> str:
    """A truncated digest, convenient for logs and test assertions."""
    return digest(value)[:length]
