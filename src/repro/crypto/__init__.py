"""Simulated cryptography: hashing, PKI signatures and threshold signatures."""

from .hashing import digest, short_digest, stable_encode
from .signatures import KeyAuthority, Signature
from .threshold import PartialSignature, ThresholdScheme, ThresholdSignature

__all__ = [
    "digest",
    "short_digest",
    "stable_encode",
    "KeyAuthority",
    "Signature",
    "PartialSignature",
    "ThresholdScheme",
    "ThresholdSignature",
]
