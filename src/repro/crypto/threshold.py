"""Simulated ``(k, n)``-threshold signature scheme.

Appendix B.3 of the paper assumes an ``(n - t, n)``-threshold signature
scheme: each process can produce a *partial* signature of a message, and any
``k`` distinct valid partial signatures can be combined into a single
constant-size threshold signature proving that ``k`` processes signed.

The simulation models partial signatures as ordinary
:class:`~repro.crypto.signatures.Signature` objects and a threshold
signature as a constant-size object recording the message digest and the set
of signers — its :attr:`ThresholdSignature.words` size is 1, matching the
paper's accounting where a threshold signature fits in one word.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, FrozenSet, Iterable

from .hashing import digest
from .signatures import KeyAuthority, Signature


@dataclass(frozen=True)
class PartialSignature:
    """A partial (share) signature of one process over a message."""

    signer: int
    signature: Signature

    def stable_fields(self) -> tuple:
        return (self.signer, self.signature.stable_fields())

    @property
    def words(self) -> int:
        return 1


@dataclass(frozen=True)
class ThresholdSignature:
    """A combined threshold signature: constant-size proof that ``k`` processes signed."""

    message_digest: str
    signers: FrozenSet[int]
    threshold: int

    def stable_fields(self) -> tuple:
        return (self.message_digest, tuple(sorted(self.signers)), self.threshold)

    @property
    def words(self) -> int:
        return 1


class ThresholdScheme:
    """A ``(threshold, n)``-threshold signature scheme backed by a :class:`KeyAuthority`."""

    def __init__(self, authority: KeyAuthority, threshold: int):
        if not 1 <= threshold <= authority.n:
            raise ValueError(
                f"threshold must be between 1 and n={authority.n}, got {threshold}"
            )
        self._authority = authority
        self.threshold = threshold

    @property
    def n(self) -> int:
        return self._authority.n

    def partial_sign(self, signer: int, message: Any) -> PartialSignature:
        """Produce ``signer``'s share for ``message``."""
        return PartialSignature(signer=signer, signature=self._authority.sign(signer, ("tsig", message)))

    def verify_partial(self, partial: PartialSignature, message: Any) -> bool:
        """Check one share."""
        if not isinstance(partial, PartialSignature):
            return False
        return self._authority.verify(partial.signature, ("tsig", message), expected_signer=partial.signer)

    def combine(self, partials: Iterable[PartialSignature], message: Any) -> ThresholdSignature:
        """Combine at least ``threshold`` valid shares into a threshold signature.

        Raises:
            ValueError: if fewer than ``threshold`` distinct valid shares are provided.
        """
        valid_signers = {
            partial.signer for partial in partials if self.verify_partial(partial, message)
        }
        if len(valid_signers) < self.threshold:
            raise ValueError(
                f"need {self.threshold} valid partial signatures, got {len(valid_signers)}"
            )
        return ThresholdSignature(
            message_digest=digest(("tsig", message)),
            signers=frozenset(valid_signers),
            threshold=self.threshold,
        )

    def verify(self, signature: ThresholdSignature, message: Any) -> bool:
        """Verify a combined threshold signature against a message."""
        if not isinstance(signature, ThresholdSignature):
            return False
        if signature.threshold != self.threshold or len(signature.signers) < self.threshold:
            return False
        if any(not 0 <= signer < self.n for signer in signature.signers):
            return False
        return signature.message_digest == digest(("tsig", message))
