"""Structured trace sink: span-like JSONL records for a whole execution.

A :class:`TraceSink` appends one JSON object per line to a file (or any
text handle).  Records come in three kinds:

``span-start`` / ``span-end``
    Bracket a named unit of work (a job, a phase inside a job).  The end
    record carries the wall-clock ``duration`` in seconds.  Spans nest:
    each record names its ``parent`` span, so a reader can rebuild the
    job → phase → task hierarchy without timestamps.

``event``
    A point-in-time fact (a task finishing, a job status transition),
    attributed to the innermost open span.

Every record carries a ``sequence`` number that is strictly monotonic for
the sink's lifetime, a monotonic ``t`` offset in seconds since the sink
was opened, and whatever keyword fields the caller attached.  Like the
metrics registry, the sink is descriptive and never load-bearing: a write
failure disables the sink rather than surfacing into the execution, and
nothing downstream reads trace files to make decisions.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, IO, Iterator, List, Optional, Union

TRACE_FORMAT_VERSION = 1

RECORD_SPAN_START = "span-start"
RECORD_SPAN_END = "span-end"
RECORD_EVENT = "event"


class TraceSink:
    """Append span/event records as JSONL to ``target``.

    ``target`` is a path (opened for writing, truncating any previous
    trace) or an already-open text handle (left open on :meth:`close`).
    The sink is single-threaded by design — all instrumentation sites run
    in the parent process's dispatch loop.
    """

    def __init__(self, target: Union[str, Path, IO[str]]):
        if hasattr(target, "write"):
            self._handle: Optional[IO[str]] = target  # type: ignore[assignment]
            self._owns_handle = False
            self.path: Optional[Path] = None
        else:
            self.path = Path(target)
            self._handle = self.path.open("w", encoding="utf-8")
            self._owns_handle = True
        self._sequence = 0
        self._origin = time.monotonic()
        self._stack: List[str] = []
        self._emit(RECORD_EVENT, "trace", version=TRACE_FORMAT_VERSION)

    # ------------------------------------------------------------------
    def _emit(self, record: str, name: str, **fields: Any) -> None:
        handle = self._handle
        if handle is None:
            return
        payload: Dict[str, Any] = {
            "sequence": self._sequence,
            "record": record,
            "name": name,
            "parent": self._stack[-1] if self._stack else None,
            "t": round(time.monotonic() - self._origin, 6),
        }
        for key, value in fields.items():
            if value is not None:
                payload[key] = value
        self._sequence += 1
        try:
            handle.write(json.dumps(payload, sort_keys=True) + "\n")
        except (OSError, ValueError):
            # Tracing must never take the run down with it: a full disk or
            # a closed handle silences the sink for the rest of the run.
            self._handle = None

    # ------------------------------------------------------------------
    def event(self, name: str, **fields: Any) -> None:
        """Record a point-in-time event under the innermost open span."""
        self._emit(RECORD_EVENT, name, **fields)

    @contextmanager
    def span(self, name: str, **fields: Any) -> Iterator[None]:
        """Bracket a block with start/end records; nests with other spans."""
        self._emit(RECORD_SPAN_START, name, **fields)
        self._stack.append(name)
        started = time.monotonic()
        error: Optional[str] = None
        try:
            yield
        except BaseException as exc:
            error = type(exc).__name__
            raise
        finally:
            self._stack.pop()
            self._emit(
                RECORD_SPAN_END,
                name,
                duration=round(time.monotonic() - started, 6),
                error=error,
            )

    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._handle is None

    def close(self) -> None:
        """Flush and close the sink (idempotent; borrowed handles survive)."""
        handle = self._handle
        self._handle = None
        if handle is None:
            return
        try:
            handle.flush()
            if self._owns_handle:
                handle.close()
        except OSError:
            pass
