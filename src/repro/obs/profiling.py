"""Opt-in cProfile hooks for worker-side task execution.

Profiling crosses the process boundary: tasks run in pool workers, so the
parent cannot profile them directly.  The hook works through one
environment variable, :data:`PROFILE_DIR_ENV` — when it names a
directory, every process (the parent in serial mode, each worker in
parallel mode) accumulates a :class:`cProfile.Profile` across the tasks
it executes and rewrites ``worker-<pid>.pstats`` in that directory after
each task.  Rewriting per task means the dumps survive a pool respawn or
``terminate()``: whatever the worker profiled up to its last completed
task is on disk.

The parent then merges the per-process dumps with :func:`merge_profiles`
into a single :class:`pstats.Stats`, which the ``run --profile`` flag
saves and summarises.  Because workers inherit the parent's environment
at pool creation (both fork and spawn re-exported it), setting the
variable before the pool exists — :func:`worker_profiling` does this —
is all the plumbing required; no per-task arguments change, so profiled
and unprofiled runs stay byte-identical.
"""

from __future__ import annotations

import cProfile
import os
import pstats
from pathlib import Path
from typing import Any, Callable, List, Optional, Union

PROFILE_DIR_ENV = "REPRO_PROFILE_DIR"
"""Environment variable naming the per-process pstats dump directory."""

_PROFILER: Optional[cProfile.Profile] = None


def profile_directory() -> Optional[str]:
    """The active profile dump directory, or ``None`` when profiling is off."""
    value = os.environ.get(PROFILE_DIR_ENV)
    return value if value else None


def profiled_call(func: Callable[..., Any], *args: Any) -> Any:
    """Run ``func(*args)`` under this process's accumulating profiler.

    The caller has already checked :func:`profile_directory`; stats are
    re-dumped after every task so a crashed or terminated worker still
    leaves its last-known profile behind.  Dump failures are swallowed —
    profiling is descriptive, never load-bearing.
    """
    global _PROFILER
    if _PROFILER is None:
        _PROFILER = cProfile.Profile()
    _PROFILER.enable()
    try:
        return func(*args)
    finally:
        _PROFILER.disable()
        directory = profile_directory()
        if directory is not None:
            try:
                Path(directory).mkdir(parents=True, exist_ok=True)
                _PROFILER.dump_stats(str(Path(directory) / f"worker-{os.getpid()}.pstats"))
            except OSError:
                pass


class worker_profiling:
    """Context manager: export :data:`PROFILE_DIR_ENV` around pool creation.

    Entered *before* the worker pool spins up so every worker inherits the
    variable; restores the previous value on exit.
    """

    def __init__(self, directory: Union[str, Path]):
        self._directory = str(directory)
        self._previous: Optional[str] = None

    def __enter__(self) -> "worker_profiling":
        Path(self._directory).mkdir(parents=True, exist_ok=True)
        self._previous = os.environ.get(PROFILE_DIR_ENV)
        os.environ[PROFILE_DIR_ENV] = self._directory
        return self

    def __exit__(self, *exc_info: Any) -> None:
        if self._previous is None:
            os.environ.pop(PROFILE_DIR_ENV, None)
        else:
            os.environ[PROFILE_DIR_ENV] = self._previous


def merge_profiles(
    directory: Union[str, Path],
    output: Optional[Union[str, Path]] = None,
) -> Optional[pstats.Stats]:
    """Merge every ``worker-*.pstats`` dump in ``directory``.

    Returns the combined :class:`pstats.Stats` (dumped to ``output`` when
    given), or ``None`` when the directory holds no dumps.  Unreadable or
    truncated dumps (a worker killed mid-write) are skipped.
    """
    dumps = sorted(Path(directory).glob("worker-*.pstats"))
    merged: Optional[pstats.Stats] = None
    for dump in dumps:
        try:
            if merged is None:
                merged = pstats.Stats(str(dump))
            else:
                merged.add(str(dump))
        except (OSError, EOFError, TypeError, ValueError, ImportError):
            continue
    if merged is not None and output is not None:
        merged.dump_stats(str(output))
    return merged


def top_functions(stats: pstats.Stats, limit: int = 10) -> List[str]:
    """The ``limit`` most cumulative-expensive functions as display lines."""
    entries = sorted(
        stats.stats.items(),  # type: ignore[attr-defined]
        key=lambda item: item[1][3],  # cumulative time
        reverse=True,
    )
    lines = []
    for (filename, lineno, function), row in entries[:limit]:
        calls, _, total_time, cumulative, _ = row
        location = f"{Path(filename).name}:{lineno}:{function}"
        lines.append(f"{cumulative:9.4f}s cum {total_time:9.4f}s tot {calls:>8} calls  {location}")
    return lines
