"""Observability: metrics registry, structured tracing, profiling hooks.

Everything in this package is **descriptive, never load-bearing** — the
execution layers emit telemetry into it, and nothing reads telemetry back
to make a decision.  Records, baselines and serial==parallel byte-identity
are unchanged whether telemetry is on or off; tests enforce this.

The package is deliberately outside the semantic fingerprint
(``repro.store.fingerprint.SEMANTIC_PACKAGES``): editing instrumentation
must never invalidate cached run records.
"""

from .registry import (
    METRICS,
    Counter,
    Gauge,
    MetricsRegistry,
    Timer,
    TIMER_BUCKETS,
    render_markdown,
    render_prometheus,
    render_text,
    set_enabled,
    telemetry_enabled,
)
from .trace import (
    RECORD_EVENT,
    RECORD_SPAN_END,
    RECORD_SPAN_START,
    TRACE_FORMAT_VERSION,
    TraceSink,
)
from .profiling import (
    PROFILE_DIR_ENV,
    merge_profiles,
    profile_directory,
    profiled_call,
    top_functions,
    worker_profiling,
)

__all__ = [
    "METRICS",
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "Timer",
    "TIMER_BUCKETS",
    "render_markdown",
    "render_prometheus",
    "render_text",
    "set_enabled",
    "telemetry_enabled",
    "RECORD_EVENT",
    "RECORD_SPAN_END",
    "RECORD_SPAN_START",
    "TRACE_FORMAT_VERSION",
    "TraceSink",
    "PROFILE_DIR_ENV",
    "merge_profiles",
    "profile_directory",
    "profiled_call",
    "top_functions",
    "worker_profiling",
]
