"""The process-local metrics registry: named counters, gauges and timers.

Every hot subsystem (runner dispatch, supervision, the run store, the job
executor, the fuzz engine) registers named instruments here and bumps them
as work flows through.  The registry is **descriptive, never load-bearing**:
its numbers are observations about an execution, and nothing in the library
reads them back to make a decision — disabling the registry entirely (see
:func:`set_enabled`) changes no record, baseline or verdict byte.

Design constraints, in order:

* **cheap on the hot path** — an enabled counter increment is one global
  load, one attribute add; instruments are created once (typically at module
  import) and cached by the caller, so steady-state cost never includes a
  registry lookup;
* **deterministic where it can be** — counter and gauge values are pure
  functions of the work performed; :meth:`MetricsRegistry.snapshot` orders
  every key, so two identical serial executions snapshot identically.
  Timers record *wall-clock* durations (count and per-bucket tallies), which
  are host facts, not content — consumers must treat them as descriptive;
* **process-local** — worker processes have their own (unused) copy; all
  instrumentation sites run in the parent, which is the only place the
  numbers are aggregated or persisted.

The module-level :data:`METRICS` registry is the default instance the
library threads through; isolated registries can be constructed for tests.
"""

from __future__ import annotations

import re
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Tuple

_NAME_PATTERN = re.compile(r"^[a-z0-9]+([._-][a-z0-9]+)*$")

_ENABLED = True
# One module-level flag instead of a per-instrument field: the disabled
# check is a single global load, and flipping it reconfigures every
# instrument of every registry at once (the benchmark harness uses this to
# measure the telemetry-off floor).


def set_enabled(enabled: bool) -> None:
    """Globally enable/disable instrument updates (snapshots still work)."""
    global _ENABLED
    _ENABLED = bool(enabled)


def telemetry_enabled() -> bool:
    """Whether instrument updates are currently applied."""
    return _ENABLED


TIMER_BUCKETS: Tuple[float, ...] = (0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10.0)
"""Histogram bucket upper bounds, in seconds (an implicit +inf bucket
catches the rest).  Log-spaced to cover everything from a cache-hit lookup
to a long scenario run."""


class Counter:
    """A monotonically increasing count of events."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if _ENABLED:
            self.value += amount


class Gauge:
    """A point-in-time value (pool size, coverage sites, pending records)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def set(self, value: float) -> None:
        if _ENABLED:
            self.value = value


class Timer:
    """Wall-clock duration observations in histogram-style buckets.

    ``count`` and the per-bucket tallies are deterministic only insofar as
    the host is; treat them as descriptive.  ``observe`` takes seconds.
    """

    __slots__ = ("name", "count", "total_seconds", "buckets")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total_seconds = 0.0
        self.buckets = [0] * (len(TIMER_BUCKETS) + 1)

    def observe(self, seconds: float) -> None:
        if not _ENABLED:
            return
        self.count += 1
        self.total_seconds += seconds
        for position, bound in enumerate(TIMER_BUCKETS):
            if seconds <= bound:
                self.buckets[position] += 1
                return
        self.buckets[-1] += 1

    @contextmanager
    def time(self) -> Iterator[None]:
        """Context manager: observe the wall-clock duration of the block."""
        started = time.perf_counter()
        try:
            yield
        finally:
            self.observe(time.perf_counter() - started)


class MetricsRegistry:
    """Named instruments, created on first request and reused thereafter.

    A name belongs to exactly one instrument kind for the registry's
    lifetime; asking for the same name as a different kind is a programming
    error and raises ``ValueError``.  :meth:`reset` zeroes values but keeps
    the instrument objects, so callers that cached an instrument at import
    time stay wired after a test reset.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._timers: Dict[str, Timer] = {}

    def _check_name(self, name: str, kind: str) -> None:
        if not _NAME_PATTERN.match(name):
            raise ValueError(
                f"invalid instrument name {name!r}: use lowercase dotted words "
                "([a-z0-9] separated by '.', '_' or '-')"
            )
        for other_kind, table in (
            ("counter", self._counters),
            ("gauge", self._gauges),
            ("timer", self._timers),
        ):
            if other_kind != kind and name in table:
                raise ValueError(f"instrument {name!r} already exists as a {other_kind}")

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            self._check_name(name, "counter")
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            self._check_name(name, "gauge")
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def timer(self, name: str) -> Timer:
        instrument = self._timers.get(name)
        if instrument is None:
            self._check_name(name, "timer")
            instrument = self._timers[name] = Timer(name)
        return instrument

    # ------------------------------------------------------------------
    # Snapshots and deltas
    # ------------------------------------------------------------------
    def counter_values(self) -> Dict[str, int]:
        """Flat, sorted ``{name: value}`` of every counter."""
        return {name: self._counters[name].value for name in sorted(self._counters)}

    def counter_delta(self, before: Dict[str, int]) -> Dict[str, int]:
        """Counter movement since a :meth:`counter_values` snapshot.

        Counters created after ``before`` was taken diff against zero; the
        result only includes counters that actually moved.
        """
        after = self.counter_values()
        return {
            name: after[name] - before.get(name, 0)
            for name in after
            if after[name] != before.get(name, 0)
        }

    def snapshot(self) -> Dict[str, Any]:
        """The full registry as a JSON-ready dict with sorted keys."""
        return {
            "counters": self.counter_values(),
            "gauges": {name: self._gauges[name].value for name in sorted(self._gauges)},
            "timers": {
                name: {
                    "count": timer.count,
                    "total_seconds": round(timer.total_seconds, 6),
                    "buckets": {
                        _bucket_label(position): timer.buckets[position]
                        for position in range(len(timer.buckets))
                    },
                }
                for name, timer in sorted(self._timers.items())
            },
        }

    def reset(self) -> None:
        """Zero every instrument in place (cached instrument objects survive)."""
        for counter in self._counters.values():
            counter.value = 0
        for gauge in self._gauges.values():
            gauge.value = 0
        for timer in self._timers.values():
            timer.count = 0
            timer.total_seconds = 0.0
            timer.buckets = [0] * (len(TIMER_BUCKETS) + 1)


def _bucket_label(position: int) -> str:
    if position >= len(TIMER_BUCKETS):
        return "+inf"
    return f"{TIMER_BUCKETS[position]:g}"


METRICS = MetricsRegistry()
"""The process-local default registry every subsystem instruments into."""


# ----------------------------------------------------------------------
# Rendering (the ``stats`` subcommand's output formats)
# ----------------------------------------------------------------------
def render_text(snapshot: Dict[str, Any], title: str = "metrics") -> str:
    """A plain-text rendering of a :meth:`MetricsRegistry.snapshot`."""
    lines: List[str] = [f"{title}:"]
    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    timers = snapshot.get("timers", {})
    if counters:
        lines.append("  counters:")
        lines.extend(f"    {name} = {value}" for name, value in sorted(counters.items()))
    if gauges:
        lines.append("  gauges:")
        lines.extend(f"    {name} = {value}" for name, value in sorted(gauges.items()))
    if timers:
        lines.append("  timers:")
        for name, data in sorted(timers.items()):
            lines.append(
                f"    {name}: count={data['count']} total={data['total_seconds']:.3f}s"
            )
    if len(lines) == 1:
        lines.append("  (no instruments recorded)")
    return "\n".join(lines)


def render_markdown(snapshot: Dict[str, Any]) -> str:
    """The counters/gauges as a GitHub-flavoured markdown table."""
    lines = ["| instrument | kind | value |", "| --- | --- | --- |"]
    for name, value in sorted(snapshot.get("counters", {}).items()):
        lines.append(f"| {name} | counter | {value} |")
    for name, value in sorted(snapshot.get("gauges", {}).items()):
        lines.append(f"| {name} | gauge | {value} |")
    for name, data in sorted(snapshot.get("timers", {}).items()):
        lines.append(
            f"| {name} | timer | count={data['count']} total={data['total_seconds']:.3f}s |"
        )
    return "\n".join(lines)


def _prometheus_name(name: str, suffix: str = "") -> str:
    return "repro_" + re.sub(r"[^a-zA-Z0-9_]", "_", name) + suffix


def render_prometheus(snapshot: Dict[str, Any]) -> str:
    """The snapshot in the Prometheus textfile exposition format.

    Suitable for a node-exporter textfile collector: counters become
    ``repro_<name>_total``, gauges ``repro_<name>``, timers a classic
    ``_seconds`` histogram (``_bucket``/``_sum``/``_count`` series with
    cumulative ``le`` labels).
    """
    lines: List[str] = []
    for name, value in sorted(snapshot.get("counters", {}).items()):
        metric = _prometheus_name(name, "_total")
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {value}")
    for name, value in sorted(snapshot.get("gauges", {}).items()):
        metric = _prometheus_name(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {value}")
    for name, data in sorted(snapshot.get("timers", {}).items()):
        metric = _prometheus_name(name, "_seconds")
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for label in [f"{bound:g}" for bound in TIMER_BUCKETS] + ["+inf"]:
            cumulative += data["buckets"].get(label, 0)
            lines.append(f'{metric}_bucket{{le="{label}"}} {cumulative}')
        lines.append(f"{metric}_sum {data['total_seconds']}")
        lines.append(f"{metric}_count {data['count']}")
    return "\n".join(lines) + "\n"
