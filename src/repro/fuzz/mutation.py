"""The fuzzer's mutation vocabulary: plain-data perturbations of a scenario.

A mutation is a ``(kind, key, value)`` tuple — picklable, JSON-friendly and
trivially diffable, which is what makes counterexample shrinking and corpus
persistence simple.  :func:`apply_mutations` folds a mutation list over a
base ``(spec, seed)`` pair with **later-wins** semantics per ``(kind, key)``
slot, so a shrunk sublist applies exactly like the original list minus the
removed entries.

The palette is a closed, deterministic list: the campaign's random walk
draws from it with a seeded :class:`random.Random`, so two campaigns with
the same fuzz seed draw identical mutation sequences no matter the host or
worker count.
"""

from __future__ import annotations

from typing import Any, List, Sequence, Tuple

from ..experiments.scenario import ScenarioSpec, make_params, scenario_name

Mutation = Tuple[str, str, Any]
"""One perturbation: ``(kind, key, value)``.

Kinds:

* ``("adversary", "", key)`` — switch the adversary registry key;
* ``("delay", "", key)`` — switch the delay-model registry key;
* ``("param", name, value)`` — set one scenario parameter (attack knobs
  like ``release_time``, ``stall_until``, ``crash_time``, jitter ``delta``);
* ``("system", "n_t", (n, t))`` — resize the system;
* ``("seed", "offset", k)`` — shift the per-run seed by ``k``;
* ``("limit", "time_limit", v)`` — move the simulated-time horizon.
"""

_ADVERSARY_CHOICES: Tuple[str, ...] = (
    "none",
    "silent",
    "crash",
    "dropping",
    "equivocation",
    "splitbrain",
)
_DELAY_CHOICES: Tuple[str, ...] = (
    "synchronous",
    "eventual",
    "partition",
    "jittered",
    "stalled",
)
_PARAM_CHOICES: Tuple[Tuple[str, Tuple[Any, ...]], ...] = (
    # release_time 20000.0 exceeds the default 10000.0 horizon: the partition
    # never heals inside the run, the known liveness counterexample the
    # regression suite seeds the campaign to rediscover.
    ("release_time", (2.0, 50.0, 20000.0)),
    ("stall_until", (30.0, 120.0)),
    ("gst", (0.0, 5.0, 80.0)),
    ("crash_time", (0.5, 2.0, 10.0)),
    ("drop_probability", (0.1, 0.5, 0.9)),
    ("delta", (0.5, 2.0)),
)
_SYSTEM_CHOICES: Tuple[Tuple[int, int], ...] = ((4, 1), (5, 2), (6, 2), (7, 2), (9, 3), (10, 3))
_SEED_OFFSETS: Tuple[int, ...] = (1, 2, 3, 7)
_TIME_LIMITS: Tuple[float, ...] = (1_500.0, 10_000.0, 40_000.0)


def mutation_palette() -> List[Mutation]:
    """Every mutation the fuzzer may draw, in deterministic order."""
    palette: List[Mutation] = []
    palette.extend(("adversary", "", key) for key in _ADVERSARY_CHOICES)
    palette.extend(("delay", "", key) for key in _DELAY_CHOICES)
    for name, values in _PARAM_CHOICES:
        palette.extend(("param", name, value) for value in values)
    palette.extend(("system", "n_t", pair) for pair in _SYSTEM_CHOICES)
    palette.extend(("seed", "offset", offset) for offset in _SEED_OFFSETS)
    palette.extend(("limit", "time_limit", value) for value in _TIME_LIMITS)
    return palette


def apply_mutations(
    base_spec: ScenarioSpec, base_seed: int, mutations: Sequence[Mutation]
) -> Tuple[ScenarioSpec, int]:
    """Fold a mutation list over a base pair; later mutations win per slot.

    The result is a pure function of ``(base_spec, base_seed, mutations)``:
    the spec's name is recomputed from its registry keys and size so that
    equal content always fingerprints identically regardless of the mutation
    path that produced it.
    """
    adversary = base_spec.adversary
    delay = base_spec.delay
    n, t = base_spec.n, base_spec.t
    seed = base_seed
    time_limit = base_spec.time_limit
    params = {key: value for key, value in base_spec.params}
    for kind, key, value in mutations:
        if kind == "adversary":
            adversary = value
        elif kind == "delay":
            delay = value
        elif kind == "param":
            params[key] = value
        elif kind == "system":
            n, t = value
        elif kind == "seed":
            seed = base_seed + value
        elif kind == "limit":
            time_limit = value
        else:
            raise ValueError(f"unknown mutation kind {kind!r}")
    spec = base_spec.with_(
        name=f"fuzz:{scenario_name(base_spec.protocol, adversary, delay)}+n{n}t{t}",
        adversary=adversary,
        delay=delay,
        n=n,
        t=t,
        params=make_params(params),
        time_limit=time_limit,
    )
    return spec, seed


def spec_is_fuzzable(spec: ScenarioSpec) -> bool:
    """Whether a mutated spec describes a constructible execution.

    Mutations compose freely, so some combinations are nonsense — a
    split-brain leader against a leaderless protocol, a fault threshold at
    or above the system size.  Those are skipped (without consuming budget)
    rather than crashing the campaign.
    """
    if not 0 < spec.t < spec.n:
        return False
    if spec.adversary == "splitbrain" and spec.protocol != "quad":
        return False
    return True
