"""Coverage-guided adversarial fuzzer over scenario space.

The sweep matrix samples the protocol × adversary × delay space at points a
human named in advance; the claims of the paper are quantified over *all*
executions.  This package closes some of that gap mechanically: a
deterministic, coverage-guided fuzzer perturbs :class:`ScenarioSpec`-adjacent
inputs (adversary choice, delay schedule, per-run seeds, system size,
attack-specific parameters), scores each mutated execution by the novelty of
the protocol decision branches it exercises (via the read-only probes in
:mod:`repro.sim.instrument`), keeps novel inputs in a persisted,
content-addressed corpus, and shrinks every violating input to a minimal
replayable counterexample.

* :mod:`repro.fuzz.mutation` — the plain-data mutation vocabulary and its
  deterministic application to a base ``(spec, seed)``;
* :mod:`repro.fuzz.coverage` — the novelty scorer over canonical coverage
  tuples;
* :mod:`repro.fuzz.engine` — the campaign loop: deterministic candidate
  generation, batched execution on the persistent
  :class:`~repro.experiments.runner.Runner` pool, corpus persistence through
  :class:`~repro.store.RunStore` (a warm re-fuzz executes zero runs);
* :mod:`repro.fuzz.shrink` — delta-debugging of a violating mutation list
  down to a locally minimal one.

Everything is deterministic under a fixed fuzz seed: serial and parallel
campaigns visit byte-identical candidates and produce identical corpus
fingerprints and shrunk counterexamples.
"""

from .coverage import CoverageMap
from .engine import FuzzReport, fuzz_execute, run_fuzz
from .mutation import Mutation, apply_mutations, mutation_palette, spec_is_fuzzable
from .shrink import shrink_mutations, violation_kinds

__all__ = [
    "CoverageMap",
    "FuzzReport",
    "Mutation",
    "apply_mutations",
    "fuzz_execute",
    "mutation_palette",
    "run_fuzz",
    "shrink_mutations",
    "spec_is_fuzzable",
    "violation_kinds",
]
