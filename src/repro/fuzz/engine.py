"""The fuzz campaign loop: deterministic, batched, store-backed.

One campaign is a pure function of ``(base scenarios, budget, fuzz seed,
code)``.  Candidates are drawn from the seeded mutation walk in fixed-size
batches (the batch size is a constant, *not* the worker count, so the walk
is identical serially and in parallel), executed on the persistent
:class:`~repro.experiments.runner.Runner` pool with coverage probes armed,
then scored in candidate order against the campaign-wide
:class:`~repro.fuzz.coverage.CoverageMap`.  Inputs that reach new coverage
or violate a property join the mutation pool; every executed candidate is
persisted — its :class:`~repro.experiments.runner.RunResult` in the ``runs``
table, its coverage in the content-addressed ``corpus`` table — so a warm
re-run of the same campaign serves every candidate from the store and
executes zero simulations.

Violating inputs are deduplicated by ``(base scenario, violation kinds)``
and shrunk (:mod:`repro.fuzz.shrink`) to minimal replayable counterexamples;
``run --spec`` replays the emitted spec JSON to the same violation.
"""

from __future__ import annotations

import random
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..experiments.runner import (
    DEFAULT_SEED,
    Runner,
    RunResult,
    _execute_with_timeout,
    _poison_result,
)
from ..experiments.scenario import ScenarioSpec
from ..obs.registry import METRICS
from ..sim import instrument
from ..store.fingerprint import payload_fingerprint, spec_payload
from ..store.store import CorpusRecord, RunStore
from .coverage import CoverageMap, proximity_score
from .mutation import Mutation, apply_mutations, mutation_palette, spec_is_fuzzable
from .shrink import shrink_mutations, violation_kinds

_BATCH_SIZE = 8
"""Candidates generated (then executed) per round.  A constant by design:
the walk advances on batch boundaries, so tying this to the worker count
would make parallel campaigns diverge from serial ones."""

_MAX_STACK = 8
"""Mutation stack depth cap; beyond it the oldest mutation is dropped."""

_MAX_SHRINK_TARGETS = 5
"""Distinct violations shrunk per campaign (deduplicated first)."""

_FRESH_BASE_PROBABILITY = 0.25
"""Chance a candidate restarts from a bare base instead of extending the pool."""

# Telemetry instruments (descriptive only — see repro.obs): campaign-shape
# counters bumped once per round/candidate, plus a gauge for the coverage
# frontier.  None of them feed back into the walk.
_OBS_ROUNDS = METRICS.counter("fuzz.rounds")
_OBS_CANDIDATES = METRICS.counter("fuzz.candidates")
_OBS_NOVEL = METRICS.counter("fuzz.novel")
_OBS_VIOLATING = METRICS.counter("fuzz.violating")
_OBS_COVERAGE_SITES = METRICS.gauge("fuzz.coverage.sites")


def fuzz_execute(
    item: Tuple[ScenarioSpec, int, Optional[float]],
) -> Tuple[RunResult, Tuple[str, ...]]:
    """Execute one candidate with coverage probes armed.

    Top-level and picklable so it can ride :meth:`Runner.iter_tasks` into
    pool workers.  The probes are read-only observers, so the returned
    :class:`RunResult` is byte-identical to an uninstrumented run of the
    same ``(spec, seed)`` — instrumented results are safe to persist in the
    shared ``runs`` table.
    """
    instrument.begin_collection()
    try:
        result = _execute_with_timeout(item)
    finally:
        sites = instrument.end_collection()
    return result, instrument.canonical_coverage(sites)


def entry_fingerprint(spec: ScenarioSpec, seed: int) -> str:
    """Content address of one corpus entry: the mutated ``(spec, seed)`` pair."""
    return payload_fingerprint({"kind": "fuzz-corpus", "spec": spec_payload(spec), "seed": seed})


@dataclass
class FuzzReport:
    """Outcome of one campaign — pure data, JSON-ready.

    ``executed`` counts real simulations (campaign + shrinking); a warm
    re-run of an already-persisted campaign reports ``executed == 0``.
    ``corpus_fingerprints`` lists every candidate's content address in
    campaign order: two campaigns with equal seed/budget/base must produce
    byte-identical sequences, which the determinism tests pin down.
    """

    fuzz_seed: int
    budget: int
    candidates: int = 0
    executed: int = 0
    cached: int = 0
    skipped_invalid: int = 0
    novel: int = 0
    violating: int = 0
    pool_size: int = 0
    coverage_sites: int = 0
    corpus_fingerprints: Tuple[str, ...] = ()
    counterexamples: List[Dict[str, Any]] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "fuzz_seed": self.fuzz_seed,
            "budget": self.budget,
            "candidates": self.candidates,
            "executed": self.executed,
            "cached": self.cached,
            "skipped_invalid": self.skipped_invalid,
            "novel": self.novel,
            "violating": self.violating,
            "pool_size": self.pool_size,
            "coverage_sites": self.coverage_sites,
            "corpus_fingerprints": list(self.corpus_fingerprints),
            "counterexamples": self.counterexamples,
        }


class _PoolEntry:
    __slots__ = ("base_index", "mutations", "weight")

    def __init__(self, base_index: int, mutations: Tuple[Mutation, ...], weight: int):
        self.base_index = base_index
        self.mutations = mutations
        self.weight = weight


def run_fuzz(
    base_specs: Sequence[ScenarioSpec],
    budget: int,
    fuzz_seed: int = DEFAULT_SEED,
    *,
    store: Optional[RunStore] = None,
    runner: Optional[Runner] = None,
    timeout: Optional[float] = None,
    base_seed: int = DEFAULT_SEED,
    shrink: bool = True,
    log: Optional[Callable[[str], None]] = None,
    fail_fast: bool = False,
) -> FuzzReport:
    """Run one coverage-guided campaign; returns its :class:`FuzzReport`.

    Args:
        base_specs: Seed scenarios the mutation walk starts from (each is
            also the campaign's first candidates, unmutated).
        budget: Number of candidates to process (cache hits count — the
            walk, not the CPU, is what the budget meters).
        fuzz_seed: Seed of the mutation walk; same seed, same campaign.
        store: Optional :class:`RunStore` for results + corpus persistence.
        runner: Optional shared :class:`Runner` (a serial one is created
            otherwise); its ``timeout`` wins over the ``timeout`` argument.
        timeout: Per-run wall-clock timeout when no runner is given.
        base_seed: The per-run seed mutations perturb from.
        shrink: Whether to delta-debug violating inputs before reporting.
        log: Optional progress sink (one line per round).
        fail_fast: Stop the walk at the end of the first batch that found
            a violation (batch-granular so the deterministic walk is cut
            at a deterministic point) instead of spending the whole budget.
    """
    if budget < 1:
        raise ValueError("fuzz budget must be at least 1")
    if not base_specs:
        raise ValueError("fuzzing needs at least one base scenario")
    for spec in base_specs:
        if not spec_is_fuzzable(spec):
            raise ValueError(f"base scenario {spec.name!r} is not a valid fuzz base")

    if runner is None:
        # A short-lived serial session owns the fallback runner; callers
        # with a pool (the job executor, the CLI session) pass their own.
        from ..jobs.session import ExecutionSession

        with ExecutionSession(timeout=timeout) as session:
            return run_fuzz(
                base_specs,
                budget,
                fuzz_seed,
                store=store,
                runner=session.runner,
                base_seed=base_seed,
                shrink=shrink,
                log=log,
                fail_fast=fail_fast,
            )
    effective_timeout = runner.timeout

    rng = random.Random(fuzz_seed)
    palette = mutation_palette()
    coverage = CoverageMap()
    report = FuzzReport(fuzz_seed=fuzz_seed, budget=budget)
    pool: List[_PoolEntry] = []
    seen_entries: set = set()
    raw_violations: List[Tuple[int, Tuple[Mutation, ...], ScenarioSpec, int, RunResult]] = []
    corpus_fps: List[str] = []
    # Seed the walk with the bare bases, then draw mutated candidates.
    queued: List[Tuple[int, Tuple[Mutation, ...]]] = [
        (index, ()) for index in range(len(base_specs))
    ]
    attempts = 0
    max_attempts = budget * 25 + 100

    def draw() -> Tuple[int, Tuple[Mutation, ...]]:
        if queued:
            return queued.pop(0)
        mutation = palette[rng.randrange(len(palette))]
        if pool and rng.random() >= _FRESH_BASE_PROBABILITY:
            weights = [entry.weight for entry in pool]
            entry = pool[rng.choices(range(len(pool)), weights=weights)[0]]
            stack = entry.mutations
            if len(stack) >= _MAX_STACK:
                stack = stack[1:]
            return entry.base_index, stack + (mutation,)
        return rng.randrange(len(base_specs)), (mutation,)

    while report.candidates < budget and attempts < max_attempts:
        batch: List[Tuple[int, Tuple[Mutation, ...], ScenarioSpec, int, str]] = []
        while (
            len(batch) < _BATCH_SIZE
            and report.candidates + len(batch) < budget
            and attempts < max_attempts
        ):
            attempts += 1
            base_index, mutations = draw()
            spec, seed = apply_mutations(base_specs[base_index], base_seed, mutations)
            if not spec_is_fuzzable(spec):
                report.skipped_invalid += 1
                continue
            fp = entry_fingerprint(spec, seed)
            if fp in seen_entries:
                continue
            seen_entries.add(fp)
            batch.append((base_index, mutations, spec, seed, fp))
        if not batch:
            break
        # Warm path: a candidate whose result AND coverage are already
        # stored is served without touching a worker.
        cached: Dict[int, Tuple[RunResult, Tuple[str, ...]]] = {}
        if store is not None:
            for position, (_bi, _muts, spec, seed, fp) in enumerate(batch):
                record = store.get_corpus(fp)
                if record is None:
                    continue
                result = store.get(spec, seed)
                if result is not None:
                    cached[position] = (result, tuple(record.entry["coverage"]))
        items = [(spec, seed, effective_timeout) for _bi, _muts, spec, seed, _fp in batch]

        def quarantine(index: int, record: Any) -> Tuple[RunResult, Tuple[str, ...]]:
            # A candidate that kept killing its worker yields a typed
            # poison result with no coverage — it joins neither the pool
            # nor the store's runs table, but is quarantined by name.
            spec, seed, _timeout = items[index]
            if store is not None:
                store.put_poison(spec, seed, attempts=record.attempts, reason=record.reason)
            return (_poison_result(spec, seed, record), ())

        outcomes = list(
            runner.iter_tasks(fuzz_execute, items, cached=cached, on_poison=quarantine)
        )
        # Score strictly in candidate order: the pool and coverage map
        # evolve identically no matter how execution was scheduled.
        for position, ((base_index, mutations, spec, seed, fp), (result, cov)) in enumerate(
            zip(batch, outcomes)
        ):
            was_cached = position in cached
            report.candidates += 1
            report.cached += 1 if was_cached else 0
            report.executed += 0 if was_cached else 1
            _OBS_CANDIDATES.inc()
            corpus_fps.append(fp)
            new_sites = coverage.observe(cov)
            is_violating = bool(result.violations)
            if new_sites > 0:
                _OBS_NOVEL.inc()
            if is_violating:
                _OBS_VIOLATING.inc()
            if store is not None and not was_cached:
                if store.put(spec, result):  # timeouts are host conditions: skipped
                    store.put_corpus(
                        CorpusRecord(
                            entry_fp=fp,
                            scenario=spec.name,
                            seed=seed,
                            novel=new_sites > 0,
                            violation=is_violating,
                            score=new_sites,
                            entry={
                                "base": base_specs[base_index].name,
                                "mutations": [list(m) for m in mutations],
                                "spec": spec_payload(spec),
                                "seed": seed,
                                "coverage": list(cov),
                                "violations": list(result.violations),
                            },
                        )
                    )
            if new_sites > 0:
                report.novel += 1
            if is_violating:
                report.violating += 1
                raw_violations.append((base_index, mutations, spec, seed, result))
            if new_sites > 0 or is_violating:
                pool.append(
                    _PoolEntry(
                        base_index,
                        mutations,
                        weight=1 + proximity_score(cov) + (4 if is_violating else 0),
                    )
                )
        _OBS_ROUNDS.inc()
        _OBS_COVERAGE_SITES.set(len(coverage))
        if log is not None:
            log(
                f"fuzz: {report.candidates}/{budget} candidates, "
                f"{len(coverage)} sites, {report.violating} violating, "
                f"pool {len(pool)}"
            )
        if fail_fast and report.violating:
            if log is not None:
                log("fuzz: stopping at first violating batch (fail-fast)")
            break

    report.pool_size = len(pool)
    report.coverage_sites = len(coverage)
    report.corpus_fingerprints = tuple(corpus_fps)

    def evaluate(spec: ScenarioSpec, seed: int) -> RunResult:
        if store is not None:
            hit = store.get(spec, seed)
            if hit is not None:
                return hit
        result = _execute_with_timeout((spec, seed, effective_timeout))
        report.executed += 1
        if store is not None:
            store.put(spec, result)
        return result

    # One shrink target per distinct (base, violation kinds) pair.
    targets: "OrderedDict[Tuple[str, Tuple[str, ...]], Tuple[int, Tuple[Mutation, ...], ScenarioSpec, int, RunResult]]" = OrderedDict()
    for base_index, mutations, spec, seed, result in raw_violations:
        key = (base_specs[base_index].name, violation_kinds(result.violations))
        if key not in targets:
            targets[key] = (base_index, mutations, spec, seed, result)
    for key, (base_index, mutations, spec, seed, result) in list(targets.items())[
        :_MAX_SHRINK_TARGETS
    ]:
        kinds = violation_kinds(result.violations)
        minimal = (
            shrink_mutations(base_specs[base_index], base_seed, mutations, kinds, evaluate)
            if shrink
            else tuple(mutations)
        )
        final_spec, final_seed = apply_mutations(base_specs[base_index], base_seed, minimal)
        final_result = evaluate(final_spec, final_seed)
        report.counterexamples.append(
            {
                "entry_fp": entry_fingerprint(final_spec, final_seed),
                "base": base_specs[base_index].name,
                "scenario": final_spec.name,
                "seed": final_seed,
                "mutations": [list(m) for m in minimal],
                "violations": list(final_result.violations),
                "spec": spec_payload(final_spec),
            }
        )
        if log is not None:
            log(
                f"fuzz: shrunk {key[1]} on {key[0]} to "
                f"{len(minimal)} mutation(s)"
            )
    if store is not None:
        store.flush_retrying(raise_on_failure=False)
    return report
