"""Novelty scoring over canonical coverage tuples.

The probes in :mod:`repro.sim.instrument` reduce one execution to a set of
canonical site strings (decision branches taken, quorum margins observed).
:class:`CoverageMap` accumulates the union over a campaign and scores each
new execution by what it adds:

* **novelty** — the number of sites never seen before; any positive novelty
  keeps the input in the corpus (it reached code/margin territory no earlier
  input reached);
* **proximity** — the number of near-miss quorum sites (margin buckets
  ``m1``/``m2``: one or two votes short of a threshold).  Near-miss inputs
  are the most promising mutation bases — one more perturbation may tip a
  quorum the wrong way — so the campaign weights its base selection by this.
"""

from __future__ import annotations

from typing import Sequence, Set, Tuple

_NEAR_MISS_MARKERS = (":m1", ":m2")


def proximity_score(coverage: Sequence[str]) -> int:
    """How many near-miss quorum sites an execution touched."""
    return sum(1 for site in coverage if site.endswith(_NEAR_MISS_MARKERS))


class CoverageMap:
    """The campaign-wide union of observed coverage sites."""

    def __init__(self) -> None:
        self._seen: Set[str] = set()

    def __len__(self) -> int:
        return len(self._seen)

    def __contains__(self, site: str) -> bool:
        return site in self._seen

    def observe(self, coverage: Sequence[str]) -> int:
        """Merge one execution's coverage; returns the number of new sites."""
        seen = self._seen
        new = [site for site in coverage if site not in seen]
        seen.update(new)
        return len(new)

    def snapshot(self) -> Tuple[str, ...]:
        """The accumulated sites in canonical (sorted) order."""
        return tuple(sorted(self._seen))
