"""Counterexample shrinking: delta-debug a violating mutation list.

A violating input found by the campaign usually carries incidental
mutations — seed shifts and parameter tweaks that rode along but do not
cause the violation.  :func:`shrink_mutations` removes one mutation at a
time, re-evaluating after each removal, until no single removal preserves
the violation: the result is a locally minimal (1-minimal) mutation list,
the standard ddmin guarantee.  Evaluation goes through a caller-supplied
``evaluate(spec, seed)`` so the campaign can memoise every probe through the
run store — a warm re-shrink executes nothing.

"Still fails" means the trial still exhibits every violation *kind* of the
original (the text before the first ``:`` — ``"agreement violated"``,
``"termination violated"`` — not the full message, which embeds decided
values and process sets that legitimately change as mutations fall away).
"""

from __future__ import annotations

from typing import Callable, Sequence, Tuple

from ..experiments.runner import RunResult
from ..experiments.scenario import ScenarioSpec
from .mutation import Mutation, apply_mutations, spec_is_fuzzable

Evaluator = Callable[[ScenarioSpec, int], RunResult]


def violation_kinds(violations: Sequence[str]) -> Tuple[str, ...]:
    """The sorted set of violation kinds (message text before the first colon)."""
    return tuple(sorted({violation.split(":", 1)[0] for violation in violations}))


def shrink_mutations(
    base_spec: ScenarioSpec,
    base_seed: int,
    mutations: Sequence[Mutation],
    kinds: Sequence[str],
    evaluate: Evaluator,
) -> Tuple[Mutation, ...]:
    """Remove mutations one at a time while the violation kinds persist.

    Deterministic: removal is attempted left to right and restarts from the
    front after every successful removal, so the result depends only on the
    inputs and the (pure) evaluator.  Returns a list from which no single
    mutation can be dropped without losing one of the required ``kinds``.
    """
    required = set(kinds)
    current = list(mutations)
    changed = True
    while changed:
        changed = False
        for index in range(len(current)):
            trial = current[:index] + current[index + 1 :]
            spec, seed = apply_mutations(base_spec, base_seed, trial)
            if not spec_is_fuzzable(spec):
                continue
            result = evaluate(spec, seed)
            if required <= set(violation_kinds(result.violations)):
                current = trial
                changed = True
                break
    return tuple(current)
