"""Named validity properties from the literature, in the paper's formalism.

Section 3.3 of the paper shows how classical validity properties are
expressed as functions ``val : I -> 2^{V_O}``; Section 2 surveys several
more.  This module implements them all:

* :class:`StrongValidity` — if all correct processes propose the same value,
  only that value may be decided.
* :class:`WeakValidity` — if *all* processes are correct and propose the same
  value, that value must be decided.
* :class:`CorrectProposalValidity` — the decision must be the proposal of a
  correct process (Fitzi–Garay "strong consensus").
* :class:`MedianValidity` — the decision must be a correct proposal close (in
  rank) to the median of the correct proposals (Stolz–Wattenhofer).
* :class:`IntervalValidity` — the decision must lie close (in rank) to the
  ``k``-th smallest correct proposal (Melnyk–Wattenhofer).
* :class:`ConvexHullValidity` — the decision must lie between the smallest
  and largest correct proposal.
* :class:`ConstantValidity` — a fixed value is always (and only) admissible;
  the canonical *trivial* property.
* :class:`FreeValidity` — every output value is always admissible; the other
  canonical trivial property (and the degenerate consensus with no validity).
* :class:`VectorValidity` — the validity property of vector consensus
  (Section 5.2.1): a decided vector may only attribute to a correct process
  the value that process actually proposed.
"""

from __future__ import annotations

from typing import Optional, Sequence

from .input_config import InputConfiguration, Value
from .ordering import canonical_key, canonical_sorted
from .system import SystemConfig
from .validity import ValidityProperty


class StrongValidity(ValidityProperty):
    """If all correct processes propose ``v``, only ``v`` can be decided."""

    def __init__(self, output_domain: Optional[Sequence[Value]] = None):
        self.name = "strong-validity"
        self.output_domain = tuple(output_domain) if output_domain is not None else None

    def is_admissible(self, config: InputConfiguration, value: Value) -> bool:
        unanimous = config.unanimous_value()
        if unanimous is None:
            return True
        return value == unanimous


class WeakValidity(ValidityProperty):
    """If all ``n`` processes are correct and propose ``v``, ``v`` must be decided."""

    def __init__(self, system: SystemConfig, output_domain: Optional[Sequence[Value]] = None):
        self.name = "weak-validity"
        self.system = system
        self.output_domain = tuple(output_domain) if output_domain is not None else None

    def is_admissible(self, config: InputConfiguration, value: Value) -> bool:
        if config.size != self.system.n:
            return True
        unanimous = config.unanimous_value()
        if unanimous is None:
            return True
        return value == unanimous


class CorrectProposalValidity(ValidityProperty):
    """A decided value must have been proposed by a correct process."""

    def __init__(self, output_domain: Optional[Sequence[Value]] = None):
        self.name = "correct-proposal-validity"
        self.output_domain = tuple(output_domain) if output_domain is not None else None

    def is_admissible(self, config: InputConfiguration, value: Value) -> bool:
        return value in config.distinct_proposals()


class MedianValidity(ValidityProperty):
    """The decision must lie within ``radius`` ranks of the median of the correct proposals.

    Stolz and Wattenhofer define median validity for synchronous consensus:
    the decision must be close to the median of the sorted correct proposals.
    Here the admissible set is the (inclusive) value range between the
    ``(m - radius)``-th and ``(m + radius)``-th smallest correct proposals,
    where ``m`` is the median rank.  The rank radius is configurable so the
    classifier experiments can explore when the property becomes (un)solvable
    in partial synchrony.
    """

    def __init__(self, radius: int, output_domain: Optional[Sequence[Value]] = None):
        if radius < 0:
            raise ValueError("radius must be non-negative")
        self.name = f"median-validity(radius={radius})"
        self.radius = radius
        self.output_domain = tuple(output_domain) if output_domain is not None else None

    def is_admissible(self, config: InputConfiguration, value: Value) -> bool:
        ordered = canonical_sorted(config.proposals())
        median_index = (len(ordered) - 1) // 2
        low = max(0, median_index - self.radius)
        high = min(len(ordered) - 1, median_index + self.radius)
        key = canonical_key(value)
        return canonical_key(ordered[low]) <= key <= canonical_key(ordered[high])


class IntervalValidity(ValidityProperty):
    """The decision must lie close in rank to the ``k``-th smallest correct proposal.

    Following Melnyk and Wattenhofer, the admissible values are those lying
    (inclusively) between the ``(k - radius)``-th and ``(k + radius)``-th
    smallest correct proposals, with ranks clamped to the valid range.
    Ranks are 1-based, matching the paper's "k-th smallest" phrasing.
    """

    def __init__(self, k: int, radius: int, output_domain: Optional[Sequence[Value]] = None):
        if k < 1:
            raise ValueError("k must be at least 1 (1-based rank)")
        if radius < 0:
            raise ValueError("radius must be non-negative")
        self.name = f"interval-validity(k={k}, radius={radius})"
        self.k = k
        self.radius = radius
        self.output_domain = tuple(output_domain) if output_domain is not None else None

    def is_admissible(self, config: InputConfiguration, value: Value) -> bool:
        ordered = canonical_sorted(config.proposals())
        low_rank = max(1, self.k - self.radius)
        high_rank = min(len(ordered), self.k + self.radius)
        if low_rank > len(ordered):
            return True
        low_value = ordered[low_rank - 1]
        high_value = ordered[high_rank - 1]
        key = canonical_key(value)
        return canonical_key(low_value) <= key <= canonical_key(high_value)


class ConvexHullValidity(ValidityProperty):
    """The decision must lie between the minimum and maximum correct proposal."""

    def __init__(self, output_domain: Optional[Sequence[Value]] = None):
        self.name = "convex-hull-validity"
        self.output_domain = tuple(output_domain) if output_domain is not None else None

    def is_admissible(self, config: InputConfiguration, value: Value) -> bool:
        ordered = canonical_sorted(config.proposals())
        key = canonical_key(value)
        return canonical_key(ordered[0]) <= key <= canonical_key(ordered[-1])


class ConstantValidity(ValidityProperty):
    """Only one fixed value is ever admissible (the canonical trivial property)."""

    def __init__(self, constant: Value, output_domain: Optional[Sequence[Value]] = None):
        self.name = f"constant-validity({constant!r})"
        self.constant = constant
        if output_domain is not None:
            self.output_domain = tuple(output_domain)
        else:
            self.output_domain = (constant,)

    def is_admissible(self, config: InputConfiguration, value: Value) -> bool:
        return value == self.constant


class FreeValidity(ValidityProperty):
    """Every output value is always admissible (consensus without validity)."""

    def __init__(self, output_domain: Optional[Sequence[Value]] = None):
        self.name = "free-validity"
        self.output_domain = tuple(output_domain) if output_domain is not None else None

    def is_admissible(self, config: InputConfiguration, value: Value) -> bool:
        return True


class VectorValidity(ValidityProperty):
    """Vector Validity (Section 5.2.1): the validity property of vector consensus.

    Here the *output* values are themselves input configurations with exactly
    ``n - t`` process-proposal pairs.  A decided vector is admissible for an
    execution's input configuration ``c`` iff every process that appears in
    both the vector and ``c`` (i.e. every *correct* process named by the
    vector) is attributed the proposal it actually made in ``c``.  This is
    precisely the similarity of the vector with ``c`` restricted to the
    requirement on common processes — the paper's observation that a decided
    vector is always similar to the execution's input configuration.
    """

    def __init__(self, system: SystemConfig):
        self.name = "vector-validity"
        self.system = system
        self.output_domain = None

    def is_admissible(self, config: InputConfiguration, value: Value) -> bool:
        if not isinstance(value, InputConfiguration):
            return False
        if value.size != self.system.quorum:
            return False
        common = value.processes & config.processes
        return all(value[process] == config[process] for process in common)


def standard_properties(
    system: SystemConfig, output_domain: Optional[Sequence[Value]] = None
) -> dict:
    """Return the named validity properties keyed by a short identifier.

    Convenience used by the classification experiments and examples.
    """
    return {
        "strong": StrongValidity(output_domain),
        "weak": WeakValidity(system, output_domain),
        "correct-proposal": CorrectProposalValidity(output_domain),
        "median": MedianValidity(radius=2 * system.t, output_domain=output_domain),
        "interval": IntervalValidity(k=system.t + 1, radius=system.t, output_domain=output_domain),
        "convex-hull": ConvexHullValidity(output_domain),
        "constant": ConstantValidity(
            constant=(output_domain[0] if output_domain else 0), output_domain=output_domain
        ),
        "free": FreeValidity(output_domain),
    }
