"""The validity-property formalism (Section 3.3 of the paper).

A validity property is a function ``val : I -> 2^{V_O}`` mapping every input
configuration to a non-empty set of admissible decisions.  An algorithm
satisfies the property iff, in every execution, correct processes only
decide values admissible for the execution's input configuration.

This module provides the abstract interface (:class:`ValidityProperty`), a
concrete table-backed implementation for exhaustively enumerated properties
(:class:`TableValidity`), and a helper for restricting a property to a
finite output domain so that set-valued questions (triviality, ``C_S``)
become decidable.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Dict, FrozenSet, Iterable, Mapping, Optional, Sequence

from .input_config import InputConfiguration, Value
from .ordering import canonical_sorted


class ValidityProperty(ABC):
    """Abstract validity property ``val : I -> 2^{V_O}``.

    Concrete subclasses implement :meth:`is_admissible`.  Subclasses that can
    do better than filtering a finite output domain may also override
    :meth:`admissible_values`.

    Attributes:
        name: Human-readable name used in reports and experiment output.
        output_domain: Optional finite output domain ``V_O``.  When present,
            :meth:`admissible_values` can be called without an explicit
            domain argument and the property can be fed to the decision
            procedures (triviality, similarity condition, classification).
    """

    name: str = "validity"
    output_domain: Optional[Sequence[Value]] = None

    @abstractmethod
    def is_admissible(self, config: InputConfiguration, value: Value) -> bool:
        """Return ``True`` iff ``value`` is admissible for ``config`` (``value in val(config)``)."""

    def admissible_values(
        self, config: InputConfiguration, output_domain: Optional[Sequence[Value]] = None
    ) -> FrozenSet[Value]:
        """Return ``val(config)`` restricted to a finite output domain.

        Args:
            config: The input configuration.
            output_domain: Finite domain to intersect with; defaults to the
                property's own :attr:`output_domain`.

        Raises:
            ValueError: if no finite output domain is available.
        """
        domain = output_domain if output_domain is not None else self.output_domain
        if domain is None:
            raise ValueError(
                f"validity property {self.name!r} has no finite output domain; "
                "pass output_domain explicitly"
            )
        return frozenset(value for value in domain if self.is_admissible(config, value))

    def check_non_empty(
        self,
        configurations: Iterable[InputConfiguration],
        output_domain: Optional[Sequence[Value]] = None,
    ) -> Optional[InputConfiguration]:
        """Verify the formalism's well-formedness requirement ``val(c) != {}``.

        Returns the first configuration with an empty admissible set, or
        ``None`` if every configuration has at least one admissible value.
        """
        for config in configurations:
            if not self.admissible_values(config, output_domain):
                return config
        return None

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class TableValidity(ValidityProperty):
    """A validity property given extensionally as a table ``config -> set of values``.

    This is the representation produced when enumerating *all* validity
    properties over a small system (the Figure 1 experiment) and when
    restricting a symbolic property to a finite domain.
    """

    def __init__(
        self,
        table: Mapping[InputConfiguration, Iterable[Value]],
        output_domain: Sequence[Value],
        name: str = "table-validity",
        default_all: bool = True,
    ):
        """Create a table-backed validity property.

        Args:
            table: Mapping from input configurations to admissible values.
            output_domain: The finite output domain ``V_O``.
            name: Display name.
            default_all: When ``True`` (default), configurations missing from
                the table admit every output value; when ``False``, a lookup
                of a missing configuration raises ``KeyError``.
        """
        self._table: Dict[InputConfiguration, FrozenSet[Value]] = {
            config: frozenset(values) for config, values in table.items()
        }
        for config, values in self._table.items():
            if not values:
                raise ValueError(f"validity property must be non-empty for every configuration; empty for {config}")
        self.output_domain = tuple(canonical_sorted(set(output_domain)))
        self.name = name
        self._default_all = default_all

    def is_admissible(self, config: InputConfiguration, value: Value) -> bool:
        if config in self._table:
            return value in self._table[config]
        if self._default_all:
            return value in set(self.output_domain)
        raise KeyError(f"configuration {config} not covered by table validity {self.name!r}")

    def admissible_values(
        self, config: InputConfiguration, output_domain: Optional[Sequence[Value]] = None
    ) -> FrozenSet[Value]:
        domain = frozenset(output_domain if output_domain is not None else self.output_domain)
        if config in self._table:
            return self._table[config] & domain
        if self._default_all:
            return domain
        raise KeyError(f"configuration {config} not covered by table validity {self.name!r}")

    @property
    def table(self) -> Dict[InputConfiguration, FrozenSet[Value]]:
        """A copy of the underlying admissibility table."""
        return dict(self._table)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TableValidity):
            return NotImplemented
        return self._table == other._table and set(self.output_domain) == set(other.output_domain)

    def __hash__(self) -> int:
        return hash((frozenset(self._table.items()), frozenset(self.output_domain)))


def restrict_to_domain(
    prop: ValidityProperty,
    configurations: Iterable[InputConfiguration],
    output_domain: Sequence[Value],
    name: Optional[str] = None,
) -> TableValidity:
    """Materialise a symbolic validity property as a :class:`TableValidity`.

    Useful for running the exact decision procedures on the named properties
    of :mod:`repro.core.properties` over small, finite systems.
    """
    table = {
        config: prop.admissible_values(config, output_domain) for config in configurations
    }
    return TableValidity(
        table,
        output_domain,
        name=name or f"{prop.name}@finite",
        default_all=False,
    )


def algorithm_satisfies_validity(
    prop: ValidityProperty,
    config: InputConfiguration,
    decisions: Mapping[int, Value],
) -> bool:
    """Check the satisfaction condition of Section 3.3 for one execution.

    Args:
        prop: The validity property under test.
        config: The input configuration the execution corresponds to.
        decisions: Mapping from correct-process index to the value it decided
            (processes that have not decided are simply absent).

    Returns:
        ``True`` iff every decided value is admissible for ``config``.
    """
    return all(prop.is_admissible(config, value) for value in decisions.values())
