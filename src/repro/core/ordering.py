"""Canonical, deterministic ordering of arbitrary proposal values.

The paper's value spaces ``V_I`` and ``V_O`` are arbitrary sets.  Several
places in the library must make a *deterministic* choice among a set of
admissible values (for instance when constructing the ``Lambda`` function of
the similarity condition, or when a validity property admits every value and
an algorithm must still pick one).  Python values of mixed types are not
directly comparable, so this module provides a total order that works for
any hashable value: values are first compared by type name, then by their
natural order when available, and finally by ``repr``.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence, Tuple


def canonical_key(value: Any) -> Tuple[str, str, str]:
    """Return a sort key defining a total order over arbitrary values.

    The key is deterministic across runs (it never uses ``hash`` or ``id``)
    so that experiments and the ``Lambda`` construction are reproducible.
    """
    type_name = type(value).__name__
    try:
        natural = format_sortable(value)
    except TypeError:
        natural = ""
    return (type_name, natural, repr(value))


def format_sortable(value: Any) -> str:
    """Render numeric values in a fixed-width form so string order matches numeric order."""
    if isinstance(value, bool):
        return f"bool:{int(value)}"
    if isinstance(value, int):
        return f"{value:+032d}"
    if isinstance(value, float):
        return f"{value:+040.12f}"
    if isinstance(value, str):
        return value
    raise TypeError(f"no natural ordering for {type(value).__name__}")


def canonical_sorted(values: Iterable[Any]) -> list:
    """Sort arbitrary values deterministically using :func:`canonical_key`."""
    return sorted(values, key=canonical_key)


def canonical_min(values: Iterable[Any]) -> Any:
    """Return the canonical minimum of a non-empty iterable of values."""
    ordered = canonical_sorted(values)
    if not ordered:
        raise ValueError("canonical_min of an empty collection")
    return ordered[0]


def canonical_choice(values: Iterable[Any]) -> Any:
    """Deterministically pick one value out of a non-empty collection.

    Alias of :func:`canonical_min`; exists so call sites read as "pick any
    admissible value" rather than "pick the minimum".
    """
    return canonical_min(values)


def median_value(values: Sequence[Any]) -> Any:
    """Return the lower median of a non-empty sequence under the canonical order."""
    ordered = canonical_sorted(values)
    if not ordered:
        raise ValueError("median of an empty collection")
    return ordered[(len(ordered) - 1) // 2]
