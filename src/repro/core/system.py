"""System model parameters for Byzantine consensus.

The paper considers a system ``Pi = {P_1, ..., P_n}`` of ``n`` processes out
of which at most ``t`` (with ``0 < t < n``) may be Byzantine (arbitrarily
faulty).  This module provides :class:`SystemConfig`, the single place where
``n`` and ``t`` live, together with the derived quantities used throughout
the library (quorum sizes, the ``n > 3t`` resilience predicate, and the
bounds on input-configuration sizes ``n - t <= x <= n``).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class SystemConfig:
    """Static description of a consensus system.

    Attributes:
        n: Total number of processes.  Processes are identified by the
            integer indices ``0 .. n - 1``.
        t: Maximum number of Byzantine (arbitrarily faulty) processes the
            system must tolerate.  The paper requires ``0 < t < n``.
    """

    n: int
    t: int

    def __post_init__(self) -> None:
        if self.n < 2:
            raise ValueError(f"a consensus system needs at least 2 processes, got n={self.n}")
        if not 0 < self.t < self.n:
            raise ValueError(f"fault threshold must satisfy 0 < t < n, got n={self.n}, t={self.t}")

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def processes(self) -> range:
        """All process indices ``0 .. n - 1``."""
        return range(self.n)

    @property
    def quorum(self) -> int:
        """The ``n - t`` quorum size used by every protocol in the paper."""
        return self.n - self.t

    @property
    def min_configuration_size(self) -> int:
        """Smallest number of process-proposal pairs in an input configuration."""
        return self.n - self.t

    @property
    def max_configuration_size(self) -> int:
        """Largest number of process-proposal pairs in an input configuration."""
        return self.n

    @property
    def byzantine_quorum_intersection(self) -> int:
        """Guaranteed number of correct processes in the intersection of two quorums.

        Two ``n - t`` quorums intersect in at least ``n - 2t`` processes, of
        which at least ``n - 3t`` are correct.  For ``n > 3t`` this is
        positive, which is exactly why quorum-intersection arguments work.
        """
        return self.n - 3 * self.t

    def tolerates_byzantine_faults(self) -> bool:
        """Return ``True`` iff ``n > 3t`` (the classical resilience bound).

        Theorem 1 of the paper shows that when ``n <= 3t`` every solvable
        validity property is trivial, so non-trivial consensus requires this
        predicate to hold.
        """
        return self.n > 3 * self.t

    def valid_configuration_sizes(self) -> range:
        """Sizes ``x`` with ``n - t <= x <= n`` allowed for input configurations."""
        return range(self.n - self.t, self.n + 1)

    def validate_process(self, process: int) -> None:
        """Raise :class:`ValueError` if ``process`` is not a valid index."""
        if not 0 <= process < self.n:
            raise ValueError(f"process index {process} out of range for n={self.n}")

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------
    @classmethod
    def with_optimal_resilience(cls, n: int) -> "SystemConfig":
        """Build a system with the largest ``t`` such that ``n > 3t``.

        This is the configuration used by most of the paper's upper-bound
        statements (``t = floor((n - 1) / 3)``).
        """
        t = (n - 1) // 3
        if t == 0:
            raise ValueError(f"n={n} is too small for a Byzantine-tolerant system (need n >= 4)")
        return cls(n=n, t=t)

    @classmethod
    def without_byzantine_resilience(cls, t: int) -> "SystemConfig":
        """Build a system with ``n = 3t`` (the regime of Theorem 1)."""
        if t < 1:
            raise ValueError("t must be positive")
        return cls(n=3 * t, t=t)
