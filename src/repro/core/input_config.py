"""Input configurations: assignments of proposals to correct processes.

Section 3.3 of the paper defines a *process-proposal pair* ``(P, v)`` and an
*input configuration* as a tuple of ``x`` process-proposal pairs with
``n - t <= x <= n``, every pair naming a distinct process.  An input
configuration describes one execution's assignment of proposals to the
processes that are correct in that execution.

This module implements both notions as immutable value objects, together
with the enumeration of the full set ``I`` of input configurations (and its
slices ``I_x``) over a finite proposal domain, which the decision procedures
in :mod:`repro.core.triviality` and
:mod:`repro.core.similarity_condition` rely on.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Iterable, Iterator, Mapping, Optional, Sequence, Tuple

from .ordering import canonical_sorted
from .system import SystemConfig

Value = Any


@dataclass(frozen=True, order=False)
class ProcessProposal:
    """A process-proposal pair ``(P, v)``.

    Attributes:
        process: Index of the process (``0 <= process < n``).
        proposal: The value proposed by that process.
    """

    process: int
    proposal: Value

    def __post_init__(self) -> None:
        if self.process < 0:
            raise ValueError(f"process index must be non-negative, got {self.process}")


class InputConfiguration:
    """An immutable assignment of proposals to a set of (correct) processes.

    The class is deliberately independent of a particular
    :class:`~repro.core.system.SystemConfig`: protocols produce and consume
    configurations of exactly ``n - t`` pairs (vector-consensus decisions),
    while the formalism also manipulates configurations of every size between
    ``n - t`` and ``n``.  Use :meth:`is_valid_for` to check the paper's size
    constraint against a concrete system.
    """

    __slots__ = ("_assignment", "_pairs", "_processes")

    def __init__(self, pairs: Iterable[ProcessProposal]):
        assignment: Dict[int, Value] = {}
        for pair in pairs:
            if pair.process in assignment:
                raise ValueError(f"duplicate process {pair.process} in input configuration")
            assignment[pair.process] = pair.proposal
        if not assignment:
            raise ValueError("an input configuration must contain at least one process-proposal pair")
        ordered = tuple(
            ProcessProposal(process, assignment[process]) for process in sorted(assignment)
        )
        object.__setattr__(self, "_assignment", assignment)
        object.__setattr__(self, "_pairs", ordered)
        object.__setattr__(self, "_processes", frozenset(assignment))

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_mapping(cls, assignment: Mapping[int, Value]) -> "InputConfiguration":
        """Build a configuration from a ``process -> proposal`` mapping."""
        return cls(ProcessProposal(process, value) for process, value in assignment.items())

    @classmethod
    def unanimous(cls, processes: Iterable[int], value: Value) -> "InputConfiguration":
        """Build a configuration in which every listed process proposes ``value``."""
        return cls(ProcessProposal(process, value) for process in processes)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def pairs(self) -> Tuple[ProcessProposal, ...]:
        """The process-proposal pairs, sorted by process index."""
        return self._pairs

    @property
    def processes(self) -> FrozenSet[int]:
        """The set ``pi(c)`` of processes included in the configuration."""
        return self._processes

    @property
    def size(self) -> int:
        """Number of process-proposal pairs (the paper's ``x``)."""
        return len(self._pairs)

    def proposal_of(self, process: int) -> Optional[Value]:
        """Return the proposal of ``process``, or ``None`` if it is not included.

        This mirrors the paper's ``c[i]`` notation (with ``None`` playing the
        role of the paper's bottom symbol).
        """
        return self._assignment.get(process)

    def __getitem__(self, process: int) -> Value:
        try:
            return self._assignment[process]
        except KeyError:
            raise KeyError(f"process {process} is not part of this input configuration") from None

    def __contains__(self, process: int) -> bool:
        return process in self._assignment

    def __iter__(self) -> Iterator[ProcessProposal]:
        return iter(self._pairs)

    def __len__(self) -> int:
        return len(self._pairs)

    def proposals(self) -> Tuple[Value, ...]:
        """All proposals, ordered by process index (duplicates preserved)."""
        return tuple(pair.proposal for pair in self._pairs)

    def distinct_proposals(self) -> FrozenSet[Value]:
        """The set of distinct values proposed in this configuration."""
        return frozenset(pair.proposal for pair in self._pairs)

    def as_mapping(self) -> Dict[int, Value]:
        """Return a fresh ``process -> proposal`` dictionary."""
        return dict(self._assignment)

    def multiplicity(self, value: Value) -> int:
        """Number of processes proposing ``value`` in this configuration."""
        return sum(1 for pair in self._pairs if pair.proposal == value)

    def is_unanimous(self) -> bool:
        """Return ``True`` iff all included processes propose the same value."""
        return len(self.distinct_proposals()) == 1

    def unanimous_value(self) -> Optional[Value]:
        """Return the common proposal if the configuration is unanimous, else ``None``."""
        distinct = self.distinct_proposals()
        if len(distinct) == 1:
            return next(iter(distinct))
        return None

    # ------------------------------------------------------------------
    # Derived configurations
    # ------------------------------------------------------------------
    def restricted_to(self, processes: Iterable[int]) -> "InputConfiguration":
        """Return the sub-configuration containing only the given processes."""
        kept = {p: v for p, v in self._assignment.items() if p in set(processes)}
        return InputConfiguration.from_mapping(kept)

    def without(self, processes: Iterable[int]) -> "InputConfiguration":
        """Return the configuration with the given processes removed."""
        removed = set(processes)
        kept = {p: v for p, v in self._assignment.items() if p not in removed}
        return InputConfiguration.from_mapping(kept)

    def extended_with(self, assignment: Mapping[int, Value]) -> "InputConfiguration":
        """Return a configuration extended with additional process-proposal pairs.

        Raises:
            ValueError: if any added process is already present.
        """
        merged = dict(self._assignment)
        for process, value in assignment.items():
            if process in merged:
                raise ValueError(f"process {process} already present in configuration")
            merged[process] = value
        return InputConfiguration.from_mapping(merged)

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def is_valid_for(self, system: SystemConfig) -> bool:
        """Check the paper's constraints: size in ``[n - t, n]`` and indices in range."""
        if not system.min_configuration_size <= self.size <= system.max_configuration_size:
            return False
        return all(0 <= process < system.n for process in self._processes)

    def validate_for(self, system: SystemConfig) -> None:
        """Raise :class:`ValueError` when :meth:`is_valid_for` fails."""
        if not self.is_valid_for(system):
            raise ValueError(
                f"configuration with processes {sorted(self._processes)} is not a valid input "
                f"configuration for n={system.n}, t={system.t}"
            )

    # ------------------------------------------------------------------
    # Equality / hashing / repr
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, InputConfiguration):
            return NotImplemented
        return self._pairs == other._pairs

    def __hash__(self) -> int:
        return hash(self._pairs)

    def __repr__(self) -> str:
        body = ", ".join(f"(P{pair.process}, {pair.proposal!r})" for pair in self._pairs)
        return f"InputConfiguration[{body}]"


# ----------------------------------------------------------------------
# Enumeration of the input-configuration space I (and slices I_x)
# ----------------------------------------------------------------------
def enumerate_input_configurations(
    system: SystemConfig,
    input_domain: Sequence[Value],
    sizes: Optional[Iterable[int]] = None,
) -> Iterator[InputConfiguration]:
    """Enumerate the set ``I`` of input configurations over a finite domain.

    Args:
        system: The system parameters (``n``, ``t``).
        input_domain: The finite proposal domain ``V_I`` to enumerate over.
        sizes: Optional subset of sizes to enumerate; defaults to the paper's
            full range ``n - t <= x <= n``.

    Yields:
        Every input configuration with the requested sizes, in a
        deterministic order (process subsets in lexicographic order, values
        in canonical order).
    """
    if not input_domain:
        raise ValueError("input domain must be non-empty")
    domain = canonical_sorted(set(input_domain))
    requested_sizes = list(sizes) if sizes is not None else list(system.valid_configuration_sizes())
    for size in requested_sizes:
        if not system.min_configuration_size <= size <= system.max_configuration_size:
            raise ValueError(
                f"size {size} outside the valid range "
                f"[{system.min_configuration_size}, {system.max_configuration_size}]"
            )
        for process_subset in itertools.combinations(range(system.n), size):
            for values in itertools.product(domain, repeat=size):
                yield InputConfiguration(
                    ProcessProposal(process, value)
                    for process, value in zip(process_subset, values)
                )


def enumerate_minimal_configurations(
    system: SystemConfig, input_domain: Sequence[Value]
) -> Iterator[InputConfiguration]:
    """Enumerate ``I_{n-t}``, the configurations with exactly ``n - t`` pairs.

    These are the configurations over which the ``Lambda`` function of the
    similarity condition (Definition 2) is defined, and the decision space of
    vector consensus.
    """
    yield from enumerate_input_configurations(
        system, input_domain, sizes=[system.min_configuration_size]
    )


def enumerate_full_configurations(
    system: SystemConfig, input_domain: Sequence[Value]
) -> Iterator[InputConfiguration]:
    """Enumerate ``I_n``, the configurations in which every process is correct."""
    yield from enumerate_input_configurations(system, input_domain, sizes=[system.n])


def count_input_configurations(system: SystemConfig, domain_size: int) -> int:
    """Closed-form count of ``|I|`` for a domain of the given size.

    Used by tests to check that enumeration is exhaustive and duplicate-free.
    """
    import math

    total = 0
    for size in system.valid_configuration_sizes():
        total += math.comb(system.n, size) * domain_size**size
    return total
