"""The similarity condition ``C_S`` (Definition 2) and the ``Lambda`` function.

A validity property satisfies ``C_S`` iff there is a computable function
``Lambda : I_{n-t} -> V_O`` such that, for every configuration ``c`` with
exactly ``n - t`` process-proposal pairs, ``Lambda(c)`` is admissible for
*every* configuration similar to ``c``.  Theorem 3 proves ``C_S`` necessary
for solvability; Theorem 5 (via the Universal algorithm) proves it
sufficient when ``n > 3t``.

Over finite domains the condition is decidable by enumeration; this module
implements that decision procedure and materialises the resulting ``Lambda``
as an explicit table, which the Universal protocol can then execute.

Examples
--------

Strong Validity satisfies ``C_S`` exactly when ``n > 3t`` — the boundary
Theorems 3 and 5 draw:

>>> from repro.core.properties import StrongValidity
>>> from repro.core.system import SystemConfig
>>> check_similarity_condition(StrongValidity(), SystemConfig(4, 1), [0, 1]).holds
True
>>> check_similarity_condition(StrongValidity(), SystemConfig(3, 1), [0, 1]).holds
False

When the condition holds, the materialised ``Lambda`` maps every minimal
(``n - t`` sized) configuration to a value admissible across its whole
similarity neighbourhood — a unanimous vector forces the unanimous value:

>>> from repro.core.input_config import InputConfiguration
>>> result = check_similarity_condition(StrongValidity(), SystemConfig(4, 1), [0, 1])
>>> result.lambda_function()(InputConfiguration.from_mapping({0: 1, 1: 1, 2: 1}))
1
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Optional, Sequence

from .input_config import (
    InputConfiguration,
    Value,
    enumerate_input_configurations,
    enumerate_minimal_configurations,
)
from .ordering import canonical_sorted
from .relations import similar
from .system import SystemConfig
from .validity import ValidityProperty

LambdaFunction = Callable[[InputConfiguration], Value]


@dataclass
class SimilarityConditionResult:
    """Outcome of the ``C_S`` decision procedure.

    Attributes:
        holds: ``True`` iff every minimal configuration has a common
            admissible value across its similarity neighbourhood.
        lambda_table: When the condition holds, an explicit table realising
            one valid ``Lambda`` (the canonical minimum of each intersection).
        admissible_intersections: For every minimal configuration, the full
            intersection of admissible sets over its similarity neighbourhood
            (useful for diagnostics and for proving that *any* choice rule
            within the intersection yields a correct ``Lambda``).
        counterexample: A minimal configuration whose intersection is empty,
            when the condition fails.
        minimal_configurations_checked: Number of ``I_{n-t}`` configurations examined.
    """

    holds: bool
    lambda_table: Dict[InputConfiguration, Value] = field(default_factory=dict)
    admissible_intersections: Dict[InputConfiguration, FrozenSet[Value]] = field(default_factory=dict)
    counterexample: Optional[InputConfiguration] = None
    minimal_configurations_checked: int = 0

    def lambda_function(self) -> LambdaFunction:
        """Return the ``Lambda`` realised by this result as a callable.

        Raises:
            ValueError: if the similarity condition does not hold.
        """
        if not self.holds:
            raise ValueError("the similarity condition does not hold: no Lambda function exists")
        table = dict(self.lambda_table)

        def lambda_fn(config: InputConfiguration) -> Value:
            try:
                return table[config]
            except KeyError:
                raise KeyError(
                    f"configuration {config} is not a minimal configuration of the checked system"
                ) from None

        return lambda_fn


def similarity_intersection(
    prop: ValidityProperty,
    config: InputConfiguration,
    system: SystemConfig,
    input_domain: Sequence[Value],
    output_domain: Sequence[Value],
) -> FrozenSet[Value]:
    """Compute the intersection of ``val(c')`` over all ``c'`` similar to ``config``.

    This is the set from which any valid ``Lambda(config)`` must be drawn
    (and, by canonical similarity, the set of values decidable in a canonical
    execution corresponding to ``config``).
    """
    remaining = set(output_domain)
    for candidate in enumerate_input_configurations(system, input_domain):
        if not remaining:
            break
        if similar(config, candidate):
            remaining &= prop.admissible_values(candidate, output_domain)
    return frozenset(remaining)


def check_similarity_condition(
    prop: ValidityProperty,
    system: SystemConfig,
    input_domain: Sequence[Value],
    output_domain: Optional[Sequence[Value]] = None,
) -> SimilarityConditionResult:
    """Decide ``C_S`` over finite domains and build an explicit ``Lambda`` table.

    Args:
        prop: The validity property under test.
        system: System parameters (``n``, ``t``).
        input_domain: Finite proposal domain ``V_I``.
        output_domain: Finite decision domain ``V_O``; defaults to the
            property's own domain, or to ``input_domain``.

    Returns:
        A :class:`SimilarityConditionResult`.  When ``holds`` is ``True`` the
        ``lambda_table`` maps every configuration of ``I_{n-t}`` to an
        admissible-for-all-similar value (the canonical minimum of the
        intersection, so that the function is deterministic).
    """
    domain = output_domain if output_domain is not None else prop.output_domain
    if domain is None:
        domain = input_domain

    result = SimilarityConditionResult(holds=True)
    for config in enumerate_minimal_configurations(system, input_domain):
        result.minimal_configurations_checked += 1
        intersection = similarity_intersection(prop, config, system, input_domain, domain)
        result.admissible_intersections[config] = intersection
        if not intersection:
            result.holds = False
            result.counterexample = config
            result.lambda_table = {}
            continue
        if result.holds:
            result.lambda_table[config] = canonical_sorted(intersection)[0]
    if not result.holds:
        result.lambda_table = {}
    return result


def satisfies_similarity_condition(
    prop: ValidityProperty,
    system: SystemConfig,
    input_domain: Sequence[Value],
    output_domain: Optional[Sequence[Value]] = None,
) -> bool:
    """Shorthand for ``check_similarity_condition(...).holds``."""
    return check_similarity_condition(prop, system, input_domain, output_domain).holds


def verify_lambda_function(
    prop: ValidityProperty,
    lambda_fn: LambdaFunction,
    system: SystemConfig,
    input_domain: Sequence[Value],
    output_domain: Optional[Sequence[Value]] = None,
) -> Optional[InputConfiguration]:
    """Check that a candidate ``Lambda`` really witnesses ``C_S``.

    Used by the tests to validate the closed-form ``Lambda`` implementations
    of :mod:`repro.core.lambda_functions` against the definition: for every
    minimal configuration ``c`` and every configuration ``c'`` similar to
    ``c``, ``Lambda(c)`` must be admissible for ``c'``.

    Returns:
        ``None`` when the candidate is correct, otherwise the first minimal
        configuration on which it fails.
    """
    domain = output_domain if output_domain is not None else prop.output_domain
    if domain is None:
        domain = input_domain
    for config in enumerate_minimal_configurations(system, input_domain):
        chosen = lambda_fn(config)
        for candidate in enumerate_input_configurations(system, input_domain):
            if similar(config, candidate) and not prop.is_admissible(candidate, chosen):
                return config
    return None
