"""External Validity for a committee-based blockchain (the Appendix C motivating example).

The example of Appendix C.1: *clients* issue signed transactions, *servers*
run Byzantine consensus to order them.  Servers cannot forge client
signatures, so the input space (signed transactions) and the output space
(batches of signed transactions) are only discoverable from what the servers
actually receive.  External Validity requires every decided batch to satisfy
a predicate — here: every transaction in the batch carries a valid client
signature and no client double-spends within the batch.

This module provides a small, self-contained model of that setting
(clients, signed transactions, batches, the discovery function that
concatenates known transactions) used by the blockchain example and the E9
benchmark.
"""

from __future__ import annotations

import hashlib
import hmac
import itertools
from dataclasses import dataclass
from typing import AbstractSet, FrozenSet, Iterable, Tuple

from ...crypto.hashing import stable_encode
from .discovery import DiscoveryModel, ExtendedValidityProperty


@dataclass(frozen=True)
class SignedTransaction:
    """A client-signed transfer."""

    client: str
    sequence_number: int
    payload: str
    signature: str

    def stable_fields(self) -> tuple:
        return (self.client, self.sequence_number, self.payload, self.signature)

    @property
    def words(self) -> int:
        return 2


Batch = Tuple[SignedTransaction, ...]


class ClientWallet:
    """A blockchain client able to issue signed transactions."""

    def __init__(self, name: str, secret_seed: str = "wallet"):
        self.name = name
        self._secret = hashlib.sha256(f"{secret_seed}:{name}".encode()).digest()

    def issue(self, sequence_number: int, payload: str) -> SignedTransaction:
        body = (self.name, sequence_number, payload)
        signature = hmac.new(self._secret, stable_encode(body), hashlib.sha256).hexdigest()
        return SignedTransaction(self.name, sequence_number, payload, signature)


class TransactionVerifier:
    """Verifies client signatures (the servers' view of the clients' PKI)."""

    def __init__(self, secret_seed: str = "wallet"):
        self._secret_seed = secret_seed

    def transaction_is_valid(self, transaction: object) -> bool:
        if not isinstance(transaction, SignedTransaction):
            return False
        secret = hashlib.sha256(f"{self._secret_seed}:{transaction.client}".encode()).digest()
        body = (transaction.client, transaction.sequence_number, transaction.payload)
        expected = hmac.new(secret, stable_encode(body), hashlib.sha256).hexdigest()
        return hmac.compare_digest(expected, transaction.signature)

    def batch_is_valid(self, batch: object) -> bool:
        """External Validity predicate: all signatures valid, no intra-batch double spend."""
        if not isinstance(batch, tuple):
            return False
        seen = set()
        for transaction in batch:
            if not self.transaction_is_valid(transaction):
                return False
            key = (transaction.client, transaction.sequence_number)
            if key in seen:
                return False
            seen.add(key)
        return True


def batch_discovery(observed: AbstractSet[object], max_batch_size: int = 3) -> FrozenSet[Batch]:
    """The discovery function: batches assembled from observed transactions.

    Observing transactions ``tx1`` and ``tx2`` lets a server learn the batches
    ``()``, ``(tx1,)``, ``(tx2,)``, ``(tx1, tx2)`` and ``(tx2, tx1)`` —
    concatenations of what it has seen, as in the paper's example.  Observed
    values may be individual transactions or containers of transactions
    (server proposals are tuples of the transactions they received).
    """
    flattened = []
    for item in observed:
        if isinstance(item, SignedTransaction):
            flattened.append(item)
        elif isinstance(item, (tuple, list, set, frozenset)):
            flattened.extend(tx for tx in item if isinstance(tx, SignedTransaction))
    transactions = list(dict.fromkeys(flattened))
    discovered = {()}
    for size in range(1, min(max_batch_size, len(transactions)) + 1):
        for combination in itertools.permutations(transactions, size):
            discovered.add(tuple(combination))
    return frozenset(discovered)


def external_validity_property(
    verifier: TransactionVerifier, max_batch_size: int = 3
) -> ExtendedValidityProperty:
    """Build the External Validity property for the committee blockchain.

    A batch is admissible iff it satisfies the external predicate *and* is
    discoverable from the inputs present in the execution (the extended
    formalism's Assumption 1 folded into admissibility).
    """
    def input_is_valid(value: object) -> bool:
        if isinstance(value, SignedTransaction):
            return verifier.transaction_is_valid(value)
        if isinstance(value, (tuple, list, set, frozenset)):
            return all(verifier.transaction_is_valid(tx) for tx in value)
        return False

    discovery = DiscoveryModel(
        valid_input=input_is_valid,
        valid_output=verifier.batch_is_valid,
        discover=lambda observed: batch_discovery(observed, max_batch_size),
    )

    def admissible(extended, batch) -> bool:
        if not verifier.batch_is_valid(batch):
            return False
        return batch in discovery.discover(extended.known_inputs())

    return ExtendedValidityProperty(
        name="external-validity(committee-blockchain)",
        admissible=admissible,
        discovery=discovery,
    )


def batch_decision_rule(verifier: TransactionVerifier, max_batch_size: int = 3):
    """A ``Lambda``-style decision rule for the blockchain consensus variant.

    Given a decided vector of proposals (each proposal being a tuple of signed
    transactions the proposing server has observed), the rule assembles the
    lexicographically-first valid batch out of the union of valid
    transactions — a deterministic choice every correct server computes
    identically, and which is always discoverable from the correct proposals.
    """

    def decide(vector) -> Batch:
        transactions = set()
        for pair in vector.pairs:
            proposal = pair.proposal
            if isinstance(proposal, Iterable):
                for transaction in proposal:
                    if verifier.transaction_is_valid(transaction):
                        transactions.add(transaction)
        ordered = sorted(
            transactions, key=lambda tx: (tx.client, tx.sequence_number, tx.payload, tx.signature)
        )
        batch: list = []
        seen = set()
        for transaction in ordered:
            key = (transaction.client, transaction.sequence_number)
            if key in seen:
                continue
            seen.add(key)
            batch.append(transaction)
            if len(batch) == max_batch_size:
                break
        return tuple(batch)

    return decide
