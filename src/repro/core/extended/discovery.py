"""The extended formalism of Appendix C: discovery functions and adversary pools.

The original formalism assumes that processes know the full input and output
spaces.  Blockchain-style validity properties (External Validity) break that
assumption: a server cannot fabricate a client-signed transaction, so the
value spaces are only *discoverable* from observed inputs.  Appendix C
sketches an extension with:

* membership predicates ``valid_input`` / ``valid_output`` for the two spaces;
* a monotone *discovery function* ``discover : 2^{V_I} -> 2^{V_O}`` mapping a
  set of observed proposals to the decisions they make learnable;
* *extended input configurations* that also carry the adversary pool — the
  set of input values the Byzantine processes know;
* two execution assumptions: decisions must be discoverable from the correct
  proposals together with the adversary pool (Assumption 1), and in canonical
  executions from the correct proposals alone (Assumption 2).

This module implements those notions so the blockchain example and the E9
experiment can exercise them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import AbstractSet, Any, Callable, FrozenSet, Iterable, Optional

from ..input_config import InputConfiguration, Value

MembershipFunction = Callable[[Any], bool]
DiscoverFunction = Callable[[AbstractSet[Value]], AbstractSet[Value]]


@dataclass(frozen=True)
class ExtendedInputConfiguration:
    """An input configuration plus the adversary pool (Appendix C.3).

    Attributes:
        configuration: The assignment of proposals to correct processes.
        adversary_pool: The input values known to the faulty processes
            (``rho`` in the paper); must be empty when every process is
            correct.
    """

    configuration: InputConfiguration
    adversary_pool: FrozenSet[Value]

    @classmethod
    def build(
        cls,
        configuration: InputConfiguration,
        adversary_pool: Iterable[Value] = (),
        n: Optional[int] = None,
    ) -> "ExtendedInputConfiguration":
        pool = frozenset(adversary_pool)
        if n is not None and configuration.size == n and pool:
            raise ValueError("when all processes are correct the adversary pool must be empty")
        return cls(configuration=configuration, adversary_pool=pool)

    def correct_proposals(self) -> FrozenSet[Value]:
        """``correct_proposals(c)``: the set of values proposed by correct processes."""
        return self.configuration.distinct_proposals()

    def known_inputs(self) -> FrozenSet[Value]:
        """All input values present in the execution (correct proposals plus adversary pool)."""
        return self.correct_proposals() | self.adversary_pool


class DiscoveryModel:
    """The knowledge model of Appendix C: membership predicates plus a discovery function."""

    def __init__(
        self,
        valid_input: MembershipFunction,
        valid_output: MembershipFunction,
        discover: DiscoverFunction,
    ):
        self.valid_input = valid_input
        self.valid_output = valid_output
        self._discover = discover

    def discover(self, observed_inputs: AbstractSet[Value]) -> FrozenSet[Value]:
        """Return the output values learnable from ``observed_inputs``.

        Only valid inputs contribute, and only valid outputs are returned, so
        a malformed observation can never "unlock" a decision.
        """
        filtered = frozenset(value for value in observed_inputs if self.valid_input(value))
        discovered = frozenset(value for value in self._discover(filtered) if self.valid_output(value))
        return discovered

    def check_monotone(self, chains: Iterable[tuple]) -> bool:
        """Verify the monotonicity requirement on sample chains ``(smaller, larger)``."""
        for smaller, larger in chains:
            small_set, large_set = frozenset(smaller), frozenset(larger)
            if not small_set <= large_set:
                raise ValueError("each chain element must be (subset, superset)")
            if not self.discover(small_set) <= self.discover(large_set):
                return False
        return True

    # ------------------------------------------------------------------
    # The two execution assumptions of Appendix C.3
    # ------------------------------------------------------------------
    def assumption_1_holds(self, extended: ExtendedInputConfiguration, decision: Value) -> bool:
        """Decisions are discoverable from correct proposals plus the adversary pool."""
        return decision in self.discover(extended.known_inputs())

    def assumption_2_holds(self, extended: ExtendedInputConfiguration, decision: Value) -> bool:
        """In canonical executions, decisions are discoverable from correct proposals alone."""
        return decision in self.discover(extended.correct_proposals())


class ExtendedValidityProperty:
    """A validity property over extended input configurations (Appendix C.3)."""

    def __init__(
        self,
        name: str,
        admissible: Callable[[ExtendedInputConfiguration, Value], bool],
        discovery: DiscoveryModel,
    ):
        self.name = name
        self._admissible = admissible
        self.discovery = discovery

    def is_admissible(self, extended: ExtendedInputConfiguration, value: Value) -> bool:
        """``value in val(extended)`` — admissibility under the extended formalism."""
        return self._admissible(extended, value)

    def execution_respects_assumptions(
        self,
        extended: ExtendedInputConfiguration,
        decision: Value,
        canonical: bool,
    ) -> bool:
        """Check Assumptions 1 and 2 for one execution's decision."""
        if not self.discovery.assumption_1_holds(extended, decision):
            return False
        if canonical and not self.discovery.assumption_2_holds(extended, decision):
            return False
        return True

    def __repr__(self) -> str:
        return f"ExtendedValidityProperty(name={self.name!r})"
