"""Extended formalism (Appendix C): discovery functions, adversary pools, External Validity."""

from .discovery import (
    DiscoveryModel,
    ExtendedInputConfiguration,
    ExtendedValidityProperty,
)
from .external import (
    Batch,
    ClientWallet,
    SignedTransaction,
    TransactionVerifier,
    batch_decision_rule,
    batch_discovery,
    external_validity_property,
)

__all__ = [
    "DiscoveryModel",
    "ExtendedInputConfiguration",
    "ExtendedValidityProperty",
    "ClientWallet",
    "SignedTransaction",
    "TransactionVerifier",
    "Batch",
    "batch_discovery",
    "batch_decision_rule",
    "external_validity_property",
]
