"""Triviality of validity properties (Theorems 1 and 2).

A validity property is *trivial* when some value is admissible for every
input configuration; solving consensus with a trivial property is immediate
(every process decides the always-admissible value without communicating).
Theorem 1 of the paper shows that when ``n <= 3t`` *every* solvable validity
property is trivial, and Theorem 2 strengthens this to the existence of a
finite ``always_admissible`` procedure.

This module provides the exact decision procedure over finite domains and
the ``always_admissible`` witness extraction.

Examples
--------

Strong Validity is non-trivial (two unanimous configurations already force
disjoint admissible sets), while Free Validity admits everything and is the
canonical trivial property:

>>> from repro.core.properties import FreeValidity, StrongValidity
>>> from repro.core.system import SystemConfig
>>> system = SystemConfig(n=3, t=1)
>>> check_triviality(StrongValidity(), system, [0, 1]).trivial
False
>>> result = check_triviality(FreeValidity(), system, [0, 1])
>>> (result.trivial, result.witness, sorted(result.always_admissible))
(True, 0, [0, 1])

For a trivial property the Theorem 2 procedure returns the canonical
always-admissible value:

>>> result.always_admissible_procedure()
0
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Optional, Sequence

from .input_config import InputConfiguration, Value, enumerate_input_configurations
from .ordering import canonical_sorted
from .system import SystemConfig
from .validity import ValidityProperty


@dataclass(frozen=True)
class TrivialityResult:
    """Outcome of the triviality decision procedure.

    Attributes:
        trivial: ``True`` iff some output value is admissible for every
            enumerated input configuration.
        always_admissible: The set of always-admissible values (empty when
            the property is non-trivial).
        witness: A deterministic representative of ``always_admissible`` (the
            value the paper's Theorem 2 ``always_admissible`` procedure would
            return), or ``None``.
        configurations_checked: Number of input configurations enumerated.
    """

    trivial: bool
    always_admissible: FrozenSet[Value]
    witness: Optional[Value]
    configurations_checked: int

    def always_admissible_procedure(self) -> Value:
        """The finite procedure promised by Theorem 2 for trivial properties.

        Returns:
            The canonical always-admissible value.

        Raises:
            ValueError: if the property is non-trivial.
        """
        if not self.trivial or self.witness is None:
            raise ValueError("the validity property is non-trivial: no always-admissible value exists")
        return self.witness


def always_admissible_values(
    prop: ValidityProperty,
    configurations: Iterable[InputConfiguration],
    output_domain: Sequence[Value],
) -> FrozenSet[Value]:
    """Intersect ``val(c)`` over the given configurations.

    Returns the set of values admissible for *every* configuration in the
    iterable (over the finite output domain).
    """
    remaining = set(output_domain)
    for config in configurations:
        if not remaining:
            break
        remaining &= prop.admissible_values(config, output_domain)
    return frozenset(remaining)


def check_triviality(
    prop: ValidityProperty,
    system: SystemConfig,
    input_domain: Sequence[Value],
    output_domain: Optional[Sequence[Value]] = None,
) -> TrivialityResult:
    """Decide whether a validity property is trivial over finite domains.

    Args:
        prop: The validity property.
        system: System parameters (``n``, ``t``); determines the enumerated
            configuration sizes ``n - t .. n``.
        input_domain: Finite proposal domain ``V_I``.
        output_domain: Finite decision domain ``V_O``; defaults to the
            property's own domain, or to ``input_domain`` when absent.

    Returns:
        A :class:`TrivialityResult` with the witness value when trivial.
    """
    domain = output_domain if output_domain is not None else prop.output_domain
    if domain is None:
        domain = input_domain
    remaining = set(domain)
    checked = 0
    for config in enumerate_input_configurations(system, input_domain):
        checked += 1
        if not remaining:
            continue
        remaining &= prop.admissible_values(config, domain)
    always = frozenset(remaining)
    witness = canonical_sorted(always)[0] if always else None
    return TrivialityResult(
        trivial=bool(always),
        always_admissible=always,
        witness=witness,
        configurations_checked=checked,
    )


def is_trivial(
    prop: ValidityProperty,
    system: SystemConfig,
    input_domain: Sequence[Value],
    output_domain: Optional[Sequence[Value]] = None,
) -> bool:
    """Shorthand for ``check_triviality(...).trivial``."""
    return check_triviality(prop, system, input_domain, output_domain).trivial
