"""The similarity and compatibility relations between input configurations.

Section 3.4 of the paper defines the *similarity* relation: ``c1 ~ c2`` iff
the two configurations share at least one process and agree on the proposal
of every shared process.  Section 4.1 defines the *compatibility* relation:
``c1 <> c2`` iff they share at most ``t`` processes and neither is contained
in the other.  Both relations drive the paper's core results (canonical
similarity, the triviality theorem for ``n <= 3t``, and the similarity
condition ``C_S``).
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence

from .input_config import InputConfiguration, Value, enumerate_input_configurations
from .system import SystemConfig


def similar(first: InputConfiguration, second: InputConfiguration) -> bool:
    """Return ``True`` iff the two input configurations are similar (``c1 ~ c2``).

    Two configurations are similar iff (1) they have at least one process in
    common and (2) every common process has the same proposal in both.
    The relation is symmetric and reflexive but *not* transitive.
    """
    common = first.processes & second.processes
    if not common:
        return False
    return all(first[process] == second[process] for process in common)


def compatible(first: InputConfiguration, second: InputConfiguration, t: int) -> bool:
    """Return ``True`` iff the two configurations are compatible (``c1 <> c2``).

    Compatibility (Section 4.1) requires (1) at most ``t`` common processes,
    (2) a process in ``c1`` that is not in ``c2``, and (3) a process in
    ``c2`` that is not in ``c1``.  The relation is symmetric and irreflexive.
    """
    if t < 0:
        raise ValueError("t must be non-negative")
    common = first.processes & second.processes
    if len(common) > t:
        return False
    if not (first.processes - second.processes):
        return False
    if not (second.processes - first.processes):
        return False
    return True


def similar_configurations(
    config: InputConfiguration,
    system: SystemConfig,
    input_domain: Sequence[Value],
) -> Iterator[InputConfiguration]:
    """Enumerate ``sim(c)``: every input configuration similar to ``config``.

    The enumeration covers the full space ``I`` over the given finite domain
    and filters it by :func:`similar`.  For the moderate system sizes used in
    the decision procedures this is exact and fast enough; protocols never
    need this enumeration (they use closed-form ``Lambda`` functions).
    """
    for candidate in enumerate_input_configurations(system, input_domain):
        if similar(config, candidate):
            yield candidate


def similarity_classes(
    configurations: Iterable[InputConfiguration],
) -> List[List[InputConfiguration]]:
    """Group configurations into connected components of the similarity graph.

    Similarity is not transitive, so these are components of the graph whose
    edges are similarity pairs, not equivalence classes.  Useful for
    visualising the structure that canonical similarity (Lemma 1) imposes.
    """
    nodes = list(configurations)
    parent = list(range(len(nodes)))

    def find(index: int) -> int:
        while parent[index] != index:
            parent[index] = parent[parent[index]]
            index = parent[index]
        return index

    def union(a: int, b: int) -> None:
        root_a, root_b = find(a), find(b)
        if root_a != root_b:
            parent[root_b] = root_a

    for i, left in enumerate(nodes):
        for j in range(i + 1, len(nodes)):
            if similar(left, nodes[j]):
                union(i, j)

    groups: dict[int, List[InputConfiguration]] = {}
    for index, node in enumerate(nodes):
        groups.setdefault(find(index), []).append(node)
    return list(groups.values())


def is_similarity_witness(
    config: InputConfiguration, other: InputConfiguration, process: int
) -> bool:
    """Check that ``process`` witnesses the similarity of two configurations.

    A witness is a common process with identical proposals; the existence of
    at least one witness (plus agreement on all common processes) is exactly
    the similarity relation.  Exposed for tests and teaching examples.
    """
    return (
        process in config.processes
        and process in other.processes
        and config[process] == other[process]
        and similar(config, other)
    )
