"""The decision rule of the Universal algorithm (Algorithm 2), in pure form.

Universal solves consensus with *any* validity property satisfying the
similarity condition, by (1) running vector consensus to agree on an input
configuration ``vector`` of exactly ``n - t`` process-proposal pairs, and
(2) deciding ``Lambda(vector)``.

The network protocol lives in
:mod:`repro.consensus.universal_protocol`; this module contains the
protocol-independent pieces: the pairing of a validity property with its
``Lambda`` function and the correctness check used pervasively in tests
(the decided value is admissible for the execution's input configuration
because the decided vector is similar to it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from .input_config import InputConfiguration, Value
from .lambda_functions import standard_lambda_functions
from .properties import standard_properties
from .relations import similar
from .similarity_condition import LambdaFunction, check_similarity_condition
from .system import SystemConfig
from .validity import ValidityProperty


@dataclass
class UniversalSpec:
    """A consensus variant Universal can solve: a validity property plus its ``Lambda``.

    Attributes:
        system: System parameters.
        validity: The validity property the variant must satisfy.
        decision_rule: A ``Lambda`` function witnessing the similarity
            condition for that property.
    """

    system: SystemConfig
    validity: ValidityProperty
    decision_rule: LambdaFunction

    def decide(self, vector: InputConfiguration) -> Value:
        """Apply the Universal decision rule to a decided vector (line 6 of Algorithm 2)."""
        if vector.size != self.system.quorum:
            raise ValueError(
                f"Universal decides from vectors of exactly n - t = {self.system.quorum} "
                f"process-proposal pairs, got {vector.size}"
            )
        return self.decision_rule(vector)

    def decision_is_admissible(
        self, vector: InputConfiguration, execution_configuration: InputConfiguration
    ) -> bool:
        """Check the key safety argument of Lemma 8 for a concrete execution.

        Vector Validity guarantees that the decided ``vector`` is similar to
        the execution's input configuration; by definition of ``Lambda`` the
        decided value is then admissible.  Tests use this method to verify
        the whole chain end-to-end.
        """
        if not similar(vector, execution_configuration):
            return False
        return self.validity.is_admissible(execution_configuration, self.decide(vector))

    @classmethod
    def for_standard_property(cls, system: SystemConfig, key: str) -> "UniversalSpec":
        """Build the spec for one of the named properties (``strong``, ``weak``, ...)."""
        properties = standard_properties(system)
        rules = standard_lambda_functions(system)
        if key not in properties or key not in rules:
            raise KeyError(
                f"unknown standard property {key!r}; available: {sorted(set(properties) & set(rules))}"
            )
        return cls(system=system, validity=properties[key], decision_rule=rules[key])

    @classmethod
    def from_finite_domains(
        cls,
        system: SystemConfig,
        validity: ValidityProperty,
        input_domain: Sequence[Value],
        output_domain: Optional[Sequence[Value]] = None,
    ) -> "UniversalSpec":
        """Build the spec for an arbitrary property over finite domains.

        The ``Lambda`` function is obtained from the enumerative similarity
        condition check; raises :class:`ValueError` if the property does not
        satisfy ``C_S`` (and is therefore unsolvable for ``n > 3t``).
        """
        result = check_similarity_condition(validity, system, input_domain, output_domain)
        if not result.holds:
            raise ValueError(
                f"validity property {validity.name!r} does not satisfy the similarity condition; "
                "Universal cannot solve it"
            )
        return cls(system=system, validity=validity, decision_rule=result.lambda_function())


def universal_decision(vector: InputConfiguration, decision_rule: LambdaFunction) -> Value:
    """The bare Universal decision rule: ``decide Lambda(vector)``."""
    return decision_rule(vector)
