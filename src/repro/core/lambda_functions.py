"""Closed-form ``Lambda`` functions for the standard validity properties.

The generic construction in :mod:`repro.core.similarity_condition` builds a
``Lambda`` table by exhaustive enumeration, which only works over small
finite domains.  Protocol executions, however, run over arbitrary value
domains (integers, strings, transaction batches, ...), so the Universal
algorithm needs *closed-form* ``Lambda`` functions.  This module derives
them for the named properties:

* Strong Validity: any value proposed by at least ``n - 2t`` processes of the
  decided vector must be chosen (such a value is unique when ``n > 3t``);
  otherwise every value is safe.
* Weak Validity: the unanimous value of the vector when it exists, otherwise
  anything.
* Correct-Proposal Validity: a value proposed at least ``t + 1`` times in
  the vector (guaranteed to exist iff ``n > (|V_I| + 1) t``, the
  Fitzi–Garay bound that the classifier experiment re-derives).
* Convex-Hull Validity: the ``(t + 1)``-th smallest proposal of the vector —
  it lies inside the convex hull of the correct proposals of every similar
  configuration.
* Median Validity (radius >= t): the median of the vector.
* Interval Validity (k, radius >= t): the ``k``-th smallest proposal of the
  vector, clamped to the vector's length.

Every closed form is cross-checked against the enumerative construction in
the test-suite (``tests/test_lambda_functions.py``).
"""

from __future__ import annotations

from collections import Counter
from typing import Optional

from .input_config import InputConfiguration, Value
from .ordering import canonical_choice, canonical_sorted
from .similarity_condition import LambdaFunction
from .system import SystemConfig


class LambdaUndefinedError(ValueError):
    """Raised when a closed-form ``Lambda`` has no valid output for a vector.

    This only happens when the corresponding validity property does not
    satisfy the similarity condition for the given system parameters (for
    example Correct-Proposal Validity with ``n <= (|V_I| + 1) t``).
    """


def strong_validity_lambda(system: SystemConfig) -> LambdaFunction:
    """``Lambda`` for Strong Validity.

    A similar configuration can be unanimous for ``w`` only if at least
    ``n - 2t`` members of the vector already propose ``w``; with ``n > 3t``
    at most one such value exists and it must be chosen.  When no value
    reaches the threshold, no similar configuration is unanimous and every
    value is admissible, so the canonical choice among the vector's proposals
    is returned.
    """
    threshold = system.n - 2 * system.t

    def lambda_fn(vector: InputConfiguration) -> Value:
        counts = Counter(vector.proposals())
        forced = [value for value, count in counts.items() if count >= threshold]
        if len(forced) > 1:
            raise LambdaUndefinedError(
                "two values reach the n - 2t threshold; strong validity is not solvable "
                f"for n={system.n}, t={system.t}"
            )
        if forced:
            return forced[0]
        return canonical_choice(counts)

    return lambda_fn


def weak_validity_lambda(system: SystemConfig) -> LambdaFunction:
    """``Lambda`` for Weak Validity: the unanimous value of the vector, else any proposal."""

    def lambda_fn(vector: InputConfiguration) -> Value:
        unanimous = vector.unanimous_value()
        if unanimous is not None:
            return unanimous
        return canonical_choice(vector.distinct_proposals())

    return lambda_fn


def correct_proposal_lambda(system: SystemConfig) -> LambdaFunction:
    """``Lambda`` for Correct-Proposal Validity.

    The chosen value must be a proposal of a correct process in *every*
    similar configuration, which requires it to appear at least ``t + 1``
    times in the vector (so that at least one occurrence survives in every
    common subset of size ``n - 2t`` and the t Byzantine slots cannot erase
    it).  When no value is that frequent the property violates ``C_S`` and
    :class:`LambdaUndefinedError` is raised.
    """
    threshold = system.t + 1

    def lambda_fn(vector: InputConfiguration) -> Value:
        counts = Counter(vector.proposals())
        frequent = [value for value, count in counts.items() if count >= threshold]
        if not frequent:
            raise LambdaUndefinedError(
                "no value is proposed by more than t processes; correct-proposal validity "
                f"does not satisfy the similarity condition for n={system.n}, t={system.t} "
                "over this proposal spread"
            )
        ordered = canonical_sorted(frequent)
        return max(ordered, key=lambda value: counts[value])

    return lambda_fn


def convex_hull_lambda(system: SystemConfig) -> LambdaFunction:
    """``Lambda`` for Convex-Hull Validity: the ``(t + 1)``-th smallest proposal.

    For every configuration similar to the vector, the common processes form
    at least ``n - 2t`` members of the vector, so the similar configuration's
    maximum is at least the vector's ``(n - 2t)``-th smallest proposal and its
    minimum is at most the vector's ``(t + 1)``-th smallest proposal.  The
    ``(t + 1)``-th smallest proposal therefore lies inside every similar
    configuration's convex hull (using ``t + 1 <= n - 2t``, i.e. ``n > 3t``).
    """

    def lambda_fn(vector: InputConfiguration) -> Value:
        ordered = canonical_sorted(vector.proposals())
        index = min(system.t, len(ordered) - 1)
        return ordered[index]

    return lambda_fn


def median_validity_lambda(system: SystemConfig, radius: Optional[int] = None) -> LambdaFunction:
    """``Lambda`` for Median Validity with rank radius at least ``2t``.

    A similar configuration's multiset of correct proposals is obtained from
    the vector by removing at most ``t`` elements and adding at most ``t``
    others, and its size differs by at most ``t``; each of those moves shifts
    the median rank by at most one, so the vector's median stays within
    ``2t`` ranks of the similar configuration's median.
    """
    effective_radius = 2 * system.t if radius is None else radius
    if effective_radius < 2 * system.t:
        raise LambdaUndefinedError(
            f"median validity with radius {effective_radius} < 2t={2 * system.t} is not covered "
            "by the closed-form Lambda; use the enumerative construction instead"
        )

    def lambda_fn(vector: InputConfiguration) -> Value:
        ordered = canonical_sorted(vector.proposals())
        return ordered[(len(ordered) - 1) // 2]

    return lambda_fn


def interval_validity_lambda(
    system: SystemConfig, k: int, radius: Optional[int] = None
) -> LambdaFunction:
    """``Lambda`` for Interval Validity: the ``k``-th smallest proposal of the vector.

    Requires the rank radius to be at least ``t`` and ``k <= n - 2t``
    (otherwise the closed form is not guaranteed to be admissible for every
    similar configuration); the returned value is the vector's ``k``-th
    smallest proposal, clamped to the vector length.
    """
    effective_radius = system.t if radius is None else radius
    if effective_radius < system.t:
        raise LambdaUndefinedError(
            f"interval validity with radius {effective_radius} < t={system.t} does not satisfy "
            "the similarity condition; no closed-form Lambda exists"
        )
    if k < 1:
        raise ValueError("k must be a 1-based rank")
    if k > system.n - 2 * system.t:
        raise LambdaUndefinedError(
            f"interval validity with k={k} > n - 2t = {system.n - 2 * system.t} is not covered "
            "by the closed-form Lambda; use the enumerative construction instead"
        )

    def lambda_fn(vector: InputConfiguration) -> Value:
        ordered = canonical_sorted(vector.proposals())
        index = min(k, len(ordered)) - 1
        return ordered[index]

    return lambda_fn


def constant_lambda(constant: Value) -> LambdaFunction:
    """``Lambda`` for a trivial (constant) validity property."""

    def lambda_fn(vector: InputConfiguration) -> Value:
        return constant

    return lambda_fn


def free_validity_lambda() -> LambdaFunction:
    """``Lambda`` for Free Validity: any proposal of the vector is admissible."""

    def lambda_fn(vector: InputConfiguration) -> Value:
        return canonical_choice(vector.distinct_proposals())

    return lambda_fn


def identity_lambda() -> LambdaFunction:
    """``Lambda`` for Vector Validity: the decided vector itself.

    Used when Universal is asked to solve vector consensus — the paper's
    observation that Vector Validity is a "strongest" validity property.
    """

    def lambda_fn(vector: InputConfiguration) -> Value:
        return vector

    return lambda_fn


def standard_lambda_functions(system: SystemConfig) -> dict:
    """Closed-form ``Lambda`` functions for the standard properties, keyed like
    :func:`repro.core.properties.standard_properties`.

    Entries whose closed form is undefined for the given system parameters
    (for example Interval Validity when ``n <= 3t``) are simply omitted.
    """
    functions = {
        "strong": strong_validity_lambda(system),
        "weak": weak_validity_lambda(system),
        "correct-proposal": correct_proposal_lambda(system),
        "median": median_validity_lambda(system),
        "convex-hull": convex_hull_lambda(system),
        "free": free_validity_lambda(),
        "vector": identity_lambda(),
    }
    try:
        functions["interval"] = interval_validity_lambda(system, k=system.t + 1)
    except LambdaUndefinedError:
        pass
    return functions
