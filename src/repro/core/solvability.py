"""Solvability classification of validity properties (the paper's main characterization).

The paper's necessary and sufficient conditions are:

* ``n <= 3t`` (Theorems 1 and 2): a validity property is solvable iff it is
  trivial (there is an always-admissible value, extractable by a finite
  procedure).
* ``n > 3t`` (Theorems 3 and 5): a validity property is solvable iff it
  satisfies the similarity condition ``C_S``.

This module combines the decision procedures of
:mod:`repro.core.triviality` and :mod:`repro.core.similarity_condition`
into a single classifier, which is what the Figure 1 experiment exercises.

Examples
--------

The same non-trivial property flips from solvable to unsolvable at the
``n = 3t`` resilience boundary:

>>> from repro.core.properties import StrongValidity
>>> from repro.core.system import SystemConfig
>>> classify(StrongValidity(), SystemConfig(4, 1), [0, 1]).solvable
True
>>> classify(StrongValidity(), SystemConfig(3, 1), [0, 1]).solvable
False

The space of *all* validity properties over finite domains is finite and
enumerable (here ``(2^2 - 1)^8`` for the smallest system over two values):

>>> count_validity_properties(SystemConfig(2, 1), 2, 2)
6561
>>> next(enumerate_validity_properties(SystemConfig(2, 1), [0, 1], [0, 1])).name
'enumerated-1'
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

from .input_config import InputConfiguration, Value, enumerate_input_configurations
from .similarity_condition import SimilarityConditionResult, check_similarity_condition
from .system import SystemConfig
from .triviality import TrivialityResult, check_triviality
from .validity import TableValidity, ValidityProperty


@dataclass(frozen=True)
class Classification:
    """The verdict of the solvability classifier for one validity property.

    Attributes:
        property_name: Name of the classified property.
        system: The system parameters used.
        trivial: Whether an always-admissible value exists.
        satisfies_similarity_condition: Whether ``C_S`` holds.
        solvable: The paper's characterization applied to the two facts above.
        reason: Human-readable explanation citing the relevant theorem.
        triviality: Full triviality result (with witness).
        similarity: Full similarity-condition result (with ``Lambda`` table).
    """

    property_name: str
    system: SystemConfig
    trivial: bool
    satisfies_similarity_condition: bool
    solvable: bool
    reason: str
    triviality: TrivialityResult
    similarity: SimilarityConditionResult


def classify(
    prop: ValidityProperty,
    system: SystemConfig,
    input_domain: Sequence[Value],
    output_domain: Optional[Sequence[Value]] = None,
) -> Classification:
    """Classify a validity property as solvable or unsolvable.

    The classification applies the paper's characterization exactly:

    * if the property is trivial it is solvable regardless of ``n`` and ``t``
      (decide the always-admissible value without communication);
    * if ``n <= 3t`` and the property is non-trivial it is unsolvable
      (Theorem 1);
    * if ``n > 3t`` the property is solvable iff it satisfies ``C_S``
      (Theorems 3 and 5).
    """
    triviality = check_triviality(prop, system, input_domain, output_domain)
    similarity = check_similarity_condition(prop, system, input_domain, output_domain)

    if triviality.trivial:
        solvable = True
        reason = (
            "trivial: value "
            f"{triviality.witness!r} is admissible for every input configuration, so every "
            "process can decide it immediately (Theorem 2)"
        )
    elif not system.tolerates_byzantine_faults():
        solvable = False
        reason = (
            f"n={system.n} <= 3t={3 * system.t} and the property is non-trivial, hence "
            "unsolvable (Theorem 1)"
        )
    elif similarity.holds:
        solvable = True
        reason = (
            "non-trivial, n > 3t, and the similarity condition holds, hence solvable by the "
            "Universal algorithm (Theorem 5)"
        )
    else:
        solvable = False
        reason = (
            "the similarity condition fails (no common admissible value for all configurations "
            f"similar to {similarity.counterexample}), hence unsolvable (Theorem 3)"
        )

    return Classification(
        property_name=prop.name,
        system=system,
        trivial=triviality.trivial,
        satisfies_similarity_condition=similarity.holds,
        solvable=solvable,
        reason=reason,
        triviality=triviality,
        similarity=similarity,
    )


def is_solvable(
    prop: ValidityProperty,
    system: SystemConfig,
    input_domain: Sequence[Value],
    output_domain: Optional[Sequence[Value]] = None,
) -> bool:
    """Shorthand for ``classify(...).solvable``."""
    return classify(prop, system, input_domain, output_domain).solvable


# ----------------------------------------------------------------------
# Exhaustive enumeration of validity properties (Figure 1 experiment)
# ----------------------------------------------------------------------
def enumerate_validity_properties(
    system: SystemConfig,
    input_domain: Sequence[Value],
    output_domain: Sequence[Value],
    max_properties: Optional[int] = None,
) -> Iterator[TableValidity]:
    """Enumerate *all* validity properties over tiny finite domains.

    A validity property assigns to each of the ``|I|`` input configurations a
    non-empty subset of ``V_O``, so there are ``(2^{|V_O|} - 1)^{|I|}``
    properties — astronomically many even for the smallest systems.  The
    enumeration is therefore only practical with an explicit
    ``max_properties`` cut-off or for systems where ``|I|`` is tiny; the
    Figure 1 experiment instead samples this space and additionally uses the
    named properties.  The enumeration order is deterministic.

    Args:
        system: System parameters.
        input_domain: Finite proposal domain.
        output_domain: Finite decision domain.
        max_properties: Optional bound on the number of properties yielded.
    """
    configurations = list(enumerate_input_configurations(system, input_domain))
    non_empty_subsets = [
        frozenset(subset)
        for size in range(1, len(output_domain) + 1)
        for subset in itertools.combinations(output_domain, size)
    ]
    produced = 0
    for assignment in itertools.product(non_empty_subsets, repeat=len(configurations)):
        if max_properties is not None and produced >= max_properties:
            return
        table = dict(zip(configurations, assignment))
        produced += 1
        yield TableValidity(
            table, output_domain, name=f"enumerated-{produced}", default_all=False
        )


def count_validity_properties(system: SystemConfig, input_domain_size: int, output_domain_size: int) -> int:
    """Closed-form count of all validity properties over finite domains."""
    from .input_config import count_input_configurations

    configurations = count_input_configurations(system, input_domain_size)
    return (2**output_domain_size - 1) ** configurations
