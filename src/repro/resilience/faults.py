"""Deterministic fault injection: the :class:`FaultPlan` and its hooks.

A fault plan is pure data naming *which* faults to inject *where*: kill the
worker executing task *k*, hang the worker executing task *k*, raise an
``OSError`` from the store's *j*-th flush, corrupt the store file before
the next open.  Everything is keyed by deterministic counters (the task's
dispatch number, the flush attempt number), never by wall clock or pid, so
the same plan injects exactly the same faults on every run — chaos
campaigns are replayable, and the chaos tests can assert byte-identity
against a fault-free run.

Plans travel two ways:

* constructor hooks — ``Runner(fault_plan=...)`` and
  ``RunStore(fault_plan=...)`` for in-process tests;
* the :data:`REPRO_FAULT_PLAN_ENV` environment variable (the plan's
  canonical JSON), read at ``Runner``/``RunStore`` construction, for
  subprocess and CLI tests (the ``chaos-smoke`` CI job injects this way).

The plan itself is frozen; per-process bookkeeping (which task number is
being dispatched next, how many flush attempts have happened) lives in
:class:`FaultState`, one per ``Runner``/``RunStore`` instance.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

REPRO_FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"
"""Environment variable carrying a :meth:`FaultPlan.to_json` payload.
``Runner`` and ``RunStore`` read it at construction when no explicit plan
is passed, which is how subprocess tests and the chaos-smoke CI job inject
faults without touching the CLI surface."""

FAULT_CRASH = "crash"
"""Worker-side instruction: die like ``kill -9`` (``os._exit``)."""

FAULT_HANG = "hang"
"""Worker-side instruction: block well past any reasonable deadline."""


class FaultInjectionError(ValueError):
    """The fault plan payload itself is malformed."""


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic, replayable set of faults to inject.

    Task-indexed faults count *dispatch numbers*: the n-th task handed to a
    runner's supervised dispatch (0-based, counted across every
    ``iter_tasks``/``iter_runs`` call on that runner, retries excluded) —
    a deterministic sequence because dispatch order is item order.

    Args:
        seed: Seeds the retry policy's jittered backoff for chaos runs.
        worker_crash: Dispatch numbers whose **first** attempt kills the
            executing worker (``os._exit``); the retry then succeeds.
        worker_hang: Dispatch numbers whose first attempt blocks for
            ``hang_seconds`` — long enough that only the parent-side
            deadline can reclaim the worker.
        poison: Dispatch numbers that kill their worker on **every**
            attempt — the quarantine path.
        flush_errors: 1-based store flush attempt numbers (counting only
            flushes with pending rows) that raise an injected ``OSError``.
        corrupt_on_reopen: Scribble over the store file's header before the
            next open, forcing the integrity check down the
            quarantine-and-rebuild path.
        hang_seconds: How long a hung worker blocks.
    """

    seed: int = 0
    worker_crash: Tuple[int, ...] = ()
    worker_hang: Tuple[int, ...] = ()
    poison: Tuple[int, ...] = ()
    flush_errors: Tuple[int, ...] = ()
    corrupt_on_reopen: bool = False
    hang_seconds: float = 3600.0

    def __post_init__(self) -> None:
        for name in ("worker_crash", "worker_hang", "poison", "flush_errors"):
            values = getattr(self, name)
            try:
                object.__setattr__(self, name, tuple(sorted(int(value) for value in values)))
            except (TypeError, ValueError) as exc:
                raise FaultInjectionError(f"fault plan field {name!r} must hold integers: {exc}") from None

    @property
    def injects_worker_faults(self) -> bool:
        return bool(self.worker_crash or self.worker_hang or self.poison)

    def worker_fault(self, task_number: int, attempt: int) -> Optional[str]:
        """The fault (if any) for dispatching ``task_number`` on ``attempt`` (1-based)."""
        if task_number in self.poison:
            return FAULT_CRASH
        if attempt == 1 and task_number in self.worker_crash:
            return FAULT_CRASH
        if attempt == 1 and task_number in self.worker_hang:
            return FAULT_HANG
        return None

    def flush_fault(self, flush_attempt: int) -> bool:
        """Whether store flush attempt ``flush_attempt`` (1-based) should fail."""
        return flush_attempt in self.flush_errors

    # ------------------------------------------------------------------
    # Wire form (the REPRO_FAULT_PLAN payload)
    # ------------------------------------------------------------------
    def payload(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "worker_crash": list(self.worker_crash),
            "worker_hang": list(self.worker_hang),
            "poison": list(self.poison),
            "flush_errors": list(self.flush_errors),
            "corrupt_on_reopen": self.corrupt_on_reopen,
            "hang_seconds": self.hang_seconds,
        }

    def to_json(self) -> str:
        return json.dumps(self.payload(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "FaultPlan":
        if not isinstance(payload, Mapping):
            raise FaultInjectionError(
                f"a fault plan payload must be a mapping, got {type(payload).__name__}"
            )
        known = {
            "seed", "worker_crash", "worker_hang", "poison",
            "flush_errors", "corrupt_on_reopen", "hang_seconds",
        }
        unknown = sorted(set(payload) - known)
        if unknown:
            raise FaultInjectionError(f"unknown fault plan fields {unknown}; known: {sorted(known)}")
        return cls(
            seed=int(payload.get("seed", 0)),
            worker_crash=tuple(payload.get("worker_crash", ())),
            worker_hang=tuple(payload.get("worker_hang", ())),
            poison=tuple(payload.get("poison", ())),
            flush_errors=tuple(payload.get("flush_errors", ())),
            corrupt_on_reopen=bool(payload.get("corrupt_on_reopen", False)),
            hang_seconds=float(payload.get("hang_seconds", 3600.0)),
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FaultInjectionError(f"fault plan is not valid JSON: {exc}") from None
        return cls.from_payload(payload)

    @classmethod
    def from_env(cls, environ: Optional[Mapping[str, str]] = None) -> Optional["FaultPlan"]:
        """The plan named by :data:`REPRO_FAULT_PLAN_ENV`, or ``None``."""
        text = (environ if environ is not None else os.environ).get(REPRO_FAULT_PLAN_ENV)
        if not text:
            return None
        return cls.from_json(text)


@dataclass
class FaultState:
    """Per-instance bookkeeping over a frozen :class:`FaultPlan`.

    One per ``Runner`` (task numbering) and one per ``RunStore`` (flush
    attempt numbering).  Task numbers are handed out in dispatch order and
    remembered per slot, so a retried task keeps the number of its first
    dispatch — a poison entry keeps firing on the same task, and a one-shot
    crash entry fires exactly once.
    """

    plan: Optional[FaultPlan] = None
    next_task_number: int = 0
    flush_attempts: int = 0
    calls: int = 0
    _assigned: Dict[Any, int] = field(default_factory=dict)

    def begin_call(self) -> int:
        """Start a new dispatch call; its id disambiguates task tokens.

        Item indices restart at zero for every ``iter_tasks`` call (each
        fuzz batch, each analysis stage), so a token must pair the call id
        with the index to stay unique — that is what keeps the global
        dispatch numbering monotonic across an entire campaign.
        """
        self.calls += 1
        return self.calls

    def task_number(self, token: Any) -> int:
        """The stable dispatch number for ``token`` (assigned on first use)."""
        number = self._assigned.get(token)
        if number is None:
            number = self._assigned[token] = self.next_task_number
            self.next_task_number += 1
        return number

    def worker_fault(self, token: Any, attempt: int) -> Optional[str]:
        number = self.task_number(token)
        if self.plan is None:
            return None
        return self.plan.worker_fault(number, attempt)

    def next_flush_fails(self) -> bool:
        """Count one flush attempt; report whether the plan fails it."""
        self.flush_attempts += 1
        if self.plan is None:
            return False
        return self.plan.flush_fault(self.flush_attempts)


def apply_worker_fault(fault: Optional[str], hang_seconds: float = 3600.0) -> None:
    """Execute a worker-side fault instruction (runs *inside* the worker).

    ``crash`` exits the process without any Python-level cleanup — the
    closest in-process stand-in for ``kill -9``: the pool sees a dead
    worker, the dispatched task's result never arrives, and only the
    parent-side supervisor can recover.  ``hang`` blocks far past any
    deadline.  Top-level and import-light so it is picklable into workers.
    """
    if fault == FAULT_CRASH:
        os._exit(137)
    if fault == FAULT_HANG:
        time.sleep(hang_seconds)
