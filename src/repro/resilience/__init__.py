"""Fault-tolerant execution: supervision, retries, and deterministic chaos.

The repo reproduces Byzantine-fault-tolerant consensus results; this
package makes the *harness that runs those experiments* tolerate faults of
its own.  Three pieces, threaded through the runner, session, executor and
store:

* :mod:`repro.resilience.retry` — :class:`RetryPolicy`: bounded attempts,
  seeded jittered backoff, and the transient-vs-deterministic error
  classification every retry loop in the repo shares;
* :mod:`repro.resilience.faults` — :class:`FaultPlan`: a *deterministic*
  fault-injection plan (worker crash at task *k*, worker hang, flush
  ``OSError`` on attempt *j*, corrupt-on-reopen) injectable through
  ``Runner``/``RunStore`` hooks or the ``REPRO_FAULT_PLAN`` environment
  variable, so chaos runs are replayable: the same plan always injects the
  same faults;
* :mod:`repro.resilience.supervisor` — :class:`Supervisor`: the parent-side
  dispatch loop that replaces the bare ``imap_unordered`` fan-out.  It
  detects dead workers (pool pid churn) and hung tasks (per-task deadline),
  respawns the pool, re-dispatches in-flight work under the retry policy,
  and quarantines a task that repeatedly kills its worker as a typed
  :class:`PoisonRecord` instead of aborting the sweep.

Retries are invisible to result content: a task is a pure function of its
input, so a re-executed task reproduces the same bytes and a chaos sweep
stays byte-identical to the fault-free sweep — the contract
``tests/test_chaos.py`` and the ``chaos-smoke`` CI job pin down.
"""

from .faults import FaultInjectionError, FaultPlan, FaultState, REPRO_FAULT_PLAN_ENV
from .retry import (
    RetryPolicy,
    TaskQuarantinedError,
    call_with_retry,
    classify_error,
    is_transient_error,
)
from .supervisor import PoisonRecord, SupervisionStats, Supervisor

__all__ = [
    "FaultInjectionError",
    "FaultPlan",
    "FaultState",
    "PoisonRecord",
    "REPRO_FAULT_PLAN_ENV",
    "RetryPolicy",
    "SupervisionStats",
    "Supervisor",
    "TaskQuarantinedError",
    "call_with_retry",
    "classify_error",
    "is_transient_error",
]
