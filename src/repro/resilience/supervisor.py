"""Parent-side supervised dispatch: detect dead workers, retry, quarantine.

``multiprocessing.Pool`` has a well-known pathology: when a worker is
killed (``kill -9``, OOM, a segfaulting extension) the pool quietly
replaces the *process*, but the task the worker was executing is lost —
its result never arrives, and a bare ``imap_unordered`` loop blocks on it
forever.  :class:`Supervisor` replaces that loop with a windowed
``apply_async`` dispatch the parent can observe:

* **detection** — each poll compares the pool's worker pid set against a
  snapshot (a vanished or replaced pid means a worker died) and checks
  every in-flight task against a per-task deadline (a hung worker never
  churns a pid, only the deadline catches it);
* **recovery** — on a detected fault the pool is respawned and every
  unharvested in-flight task is re-dispatched under the
  :class:`~repro.resilience.retry.RetryPolicy`, with seeded backoff;
* **attribution** — retried tasks run in *isolation* (one in flight at a
  time), so when a crash recurs it is attributed to exactly one task; a
  task that keeps killing its worker is yielded as a typed
  :class:`PoisonRecord` after its attempt budget instead of aborting the
  sweep.

Because tasks are pure functions of their items, a re-dispatched task
reproduces the same bytes, and completion-order jitter is absorbed by the
caller's reorder buffer — supervision is invisible to result content.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, Iterable, Iterator, List, Optional, Tuple

from ..obs.registry import METRICS
from .faults import FaultState, apply_worker_fault
from .retry import RetryPolicy

# Telemetry instruments (descriptive only — see repro.obs).  They mirror
# SupervisionStats into the process-local registry: the dataclass stays the
# per-runner, test-visible record, the registry the process-wide aggregate.
# "runner.tasks.dispatched" is shared with the runner's serial path so the
# counter means "task executions paid for" regardless of dispatch mode.
_OBS_DISPATCHED = METRICS.counter("runner.tasks.dispatched")
_OBS_TASK_WALL = METRICS.timer("runner.task.wall")
_OBS_CRASHES = METRICS.counter("supervisor.crashes_detected")
_OBS_RESPAWNS = METRICS.counter("supervisor.respawns")
_OBS_RETRIES = METRICS.counter("supervisor.retries")
_OBS_QUARANTINED = METRICS.counter("supervisor.quarantined")

_POLL_INTERVAL = 0.02
"""Default seconds between supervision polls while tasks are in flight."""

SUPERVISION_GRACE = 5.0
"""Seconds added to a runner's per-run timeout to form the parent-side
deadline: the worker's own ``SIGALRM`` should fire first and return a
timeout record; only a worker too wedged to do even that (or killed
outright) trips the supervisor."""


@dataclass(frozen=True)
class PoisonRecord:
    """A task quarantined for repeatedly killing its worker.

    Yielded by :meth:`Supervisor.map_unordered` in place of the task's
    result.  ``index`` is the task's slot in the dispatched sequence,
    ``attempts`` how many dispatches it consumed, ``reason`` the last
    detected fault.
    """

    index: int
    attempts: int
    reason: str


@dataclass
class SupervisionStats:
    """Counters a supervised dispatch accumulates (exposed for tests/reports)."""

    dispatched: int = 0
    crashes_detected: int = 0
    respawns: int = 0
    retries: int = 0
    quarantined: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "dispatched": self.dispatched,
            "crashes_detected": self.crashes_detected,
            "respawns": self.respawns,
            "retries": self.retries,
            "quarantined": self.quarantined,
        }


def _supervised_invoke_batch(
    worker: Any,
    faults: Tuple[Optional[str], ...],
    hang_seconds: float,
    indexed_items: Tuple[Tuple[int, Any], ...],
) -> List[Any]:
    """Worker entry for a microbatch: run each item, faults applied per item.

    Items execute in item order with their *own* fault tags, so a crash
    entry keyed to the third task of a batch kills the worker exactly when
    that task is reached — the already-computed results die with the
    process, the parent loses the whole batch, and recovery splits it back
    into per-task dispatches (see :meth:`Supervisor._recover`).  Faults
    therefore stay attributable per task even though pickle/dispatch
    overhead is paid once per batch.
    """
    results: List[Any] = []
    for fault, indexed_item in zip(faults, indexed_items):
        apply_worker_fault(fault, hang_seconds)
        results.append(worker(indexed_item))
    return results


@dataclass
class _Task:
    """Parent-side state for one dispatched batch of slots.

    ``items`` is the ordered ``(index, item)`` list travelling in one
    worker dispatch — a plain task is just a batch of one.  A batch shares
    one attempt counter; after a crash, multi-item batches are split into
    singletons that *inherit* the counter, so the per-task attempt
    accounting the retry policy and quarantine thresholds reason about is
    preserved (the batch dispatch was attempt one for every member).
    """

    items: List[Tuple[int, Any]]
    attempts: int = 0
    eligible_at: float = 0.0

    @property
    def index(self) -> int:
        """The batch's first slot — its identity in logs and bookkeeping."""
        return self.items[0][0]


class Supervisor:
    """Supervises one runner's parallel dispatch (see module docstring).

    Args:
        runner: The owning :class:`~repro.experiments.runner.Runner`; the
            supervisor uses its pool lifecycle (``_ensure_pool``/``close``)
            to respawn workers after a detected fault.
        policy: Retry budget and backoff schedule for re-dispatched tasks.
        fault_state: Deterministic fault bookkeeping (may wrap ``plan=None``,
            in which case no faults are ever injected — detection and
            recovery still run, they just never trigger).
        deadline: Optional per-task wall-clock ceiling (seconds from
            dispatch) after which an in-flight task is presumed lost to a
            hung worker.  ``None`` disables deadline detection (pid churn
            still catches outright deaths).
        stats: Counters to accumulate into (the runner shares one across
            all its dispatches).
        on_log: Optional sink for supervision log lines.
        poll_interval: Seconds between health polls.
    """

    def __init__(
        self,
        runner: Any,
        policy: RetryPolicy,
        fault_state: FaultState,
        *,
        deadline: Optional[float] = None,
        stats: Optional[SupervisionStats] = None,
        on_log: Optional[Callable[[str], None]] = None,
        poll_interval: float = _POLL_INTERVAL,
    ) -> None:
        self._runner = runner
        self._policy = policy
        self._faults = fault_state
        self._deadline = deadline
        self.stats = stats if stats is not None else SupervisionStats()
        self._on_log = on_log
        self._poll_interval = poll_interval
        self._call = fault_state.begin_call()
        self._pids: Optional[frozenset] = None
        # index -> (async_result, dispatched_at); insertion order is dispatch order
        self._outstanding: Dict[int, Tuple[Any, float, _Task]] = {}

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _log(self, message: str) -> None:
        if self._on_log is not None:
            self._on_log(message)

    @staticmethod
    def _worker_pids(pool: Any) -> Optional[frozenset]:
        workers = getattr(pool, "_pool", None)
        if workers is None:  # private API drifted; fall back to deadline-only
            return None
        try:
            return frozenset(worker.pid for worker in workers)
        except Exception:
            return None

    @staticmethod
    def _worker_died(pool: Any) -> bool:
        workers = getattr(pool, "_pool", None)
        if workers is None:
            return False
        try:
            return any(worker.exitcode is not None for worker in workers)
        except Exception:
            return False

    def _window(self) -> int:
        workers = self._runner.parallel or 1
        return max(1, workers * 2)

    def _can_dispatch(self, task: _Task, now: float) -> bool:
        if task.eligible_at > now:
            return False
        if task.attempts > 0:
            # Isolation: a retried task runs alone so a recurring crash is
            # attributed to it and only it.
            return not self._outstanding
        if any(entry[2].attempts > 0 for entry in self._outstanding.values()):
            return False
        return len(self._outstanding) < self._window()

    def _detect_fault(self, pool: Any, now: float) -> Optional[str]:
        if self._worker_died(pool):
            return "a pool worker died mid-task"
        pids = self._worker_pids(pool)
        if self._pids is not None and pids is not None and pids != self._pids:
            return "pool worker pids churned (a worker died and was replaced)"
        if self._deadline is not None:
            for index, (_result, started, _task) in self._outstanding.items():
                if now - started > self._deadline:
                    return (
                        f"task {index} exceeded the {self._deadline:.1f}s "
                        "supervision deadline (worker presumed hung)"
                    )
        return None

    def _recover(self, reason: str, queue: Deque[_Task]) -> List[Tuple[int, PoisonRecord]]:
        """Respawn the pool; requeue, split or quarantine every unharvested task.

        A lost multi-item batch is never retried (or quarantined) wholesale:
        it splits into singleton tasks inheriting the batch's attempt count,
        so the culprit is re-executed in isolation and quarantine decisions
        stay per-task — an injected poison fault takes down exactly its own
        task, and the innocent batch-mates simply re-run.
        """
        self.stats.crashes_detected += 1
        _OBS_CRASHES.inc()
        lost = [entry[2] for entry in self._outstanding.values()]
        self._outstanding.clear()
        self._log(
            f"supervisor: {reason}; respawning the pool and "
            f"re-dispatching {len(lost)} in-flight task(s)"
        )
        self._runner.close()
        self._pids = None
        self.stats.respawns += 1
        _OBS_RESPAWNS.inc()
        poisoned: List[Tuple[int, PoisonRecord]] = []
        now = time.monotonic()
        singles: List[Tuple[_Task, bool]] = []
        for task in lost:
            if len(task.items) > 1:
                singles.extend(
                    (_Task(items=[pair], attempts=task.attempts), True) for pair in task.items
                )
            else:
                singles.append((task, False))
        for task, fresh_split in reversed(singles):  # appendleft keeps original dispatch order
            # A singleton fresh off a batch split has never run in isolation,
            # so it cannot be quarantined off this crash — the culprit could
            # be any batch-mate.  It is requeued even with its attempt budget
            # spent; the *next* crash (now attributable) quarantines it.
            if not fresh_split and task.attempts >= self._policy.max_attempts:
                self.stats.quarantined += 1
                _OBS_QUARANTINED.inc()
                self._log(
                    f"supervisor: quarantining task {task.index} as poison "
                    f"after {task.attempts} attempt(s)"
                )
                poisoned.append(
                    (task.index, PoisonRecord(index=task.index, attempts=task.attempts, reason=reason))
                )
            else:
                self.stats.retries += 1
                _OBS_RETRIES.inc()
                task.eligible_at = now + self._policy.backoff(task.attempts, token=task.index)
                queue.appendleft(task)
        return poisoned

    # ------------------------------------------------------------------
    # The dispatch loop
    # ------------------------------------------------------------------
    def map_unordered(
        self, worker: Any, indexed_items: Iterable[Tuple[int, Any]], batch_size: int = 1
    ) -> Iterator[Tuple[int, Any]]:
        """Yield ``worker((index, item))`` results in completion order.

        ``worker`` must return ``(index, result)`` (the runner's indexed
        worker contract).  A quarantined task yields
        ``(index, PoisonRecord)`` instead; the caller decides whether that
        aborts the sweep or becomes a typed poison result.

        ``batch_size`` microbatches dispatch: consecutive items travel to a
        worker in chunks of that size, amortizing pickle and pool plumbing
        over the chunk while results are still yielded (and faults still
        injected, retried and quarantined) per item.  Results within a
        harvested batch arrive in item order; across batches, completion
        order — the caller's reorder buffer makes both invisible.
        """
        items_list = list(indexed_items)
        batch_size = max(1, int(batch_size))
        queue: Deque[_Task] = deque(
            _Task(items=items_list[start : start + batch_size])
            for start in range(0, len(items_list), batch_size)
        )
        hang_seconds = self._faults.plan.hang_seconds if self._faults.plan else 0.0
        while queue or self._outstanding:
            now = time.monotonic()
            # Dispatch from the front while the window (or isolation) allows.
            while queue and self._can_dispatch(queue[0], now):
                task = queue.popleft()
                pool = self._runner._ensure_pool()
                if self._pids is None:
                    self._pids = self._worker_pids(pool)
                task.attempts += 1
                self.stats.dispatched += len(task.items)
                _OBS_DISPATCHED.inc(len(task.items))
                # One fault tag per item, computed in item order so the
                # plan's dispatch numbering is identical at every batch size.
                faults = tuple(
                    self._faults.worker_fault((self._call, index), task.attempts)
                    for index, _item in task.items
                )
                async_result = pool.apply_async(
                    _supervised_invoke_batch,
                    (worker, faults, hang_seconds, tuple(task.items)),
                )
                self._outstanding[task.index] = (async_result, time.monotonic(), task)
            # Harvest everything that completed.
            completed = [
                index for index, (result, _s, _t) in self._outstanding.items() if result.ready()
            ]
            if completed:
                for index in completed:
                    async_result, started, _task = self._outstanding.pop(index)
                    _OBS_TASK_WALL.observe(time.monotonic() - started)
                    # .get() re-raises an exception the task itself raised —
                    # that is a task failure, not a worker fault, and it
                    # propagates exactly as it did under imap_unordered.
                    yield from async_result.get()
                continue
            if not self._outstanding:
                # Nothing in flight: the front task is backing off.
                if queue:
                    time.sleep(max(0.0, min(self._poll_interval, queue[0].eligible_at - now)))
                continue
            pool = self._runner._ensure_pool()
            fault_reason = self._detect_fault(pool, now)
            if fault_reason is not None:
                for poisoned in self._recover(fault_reason, queue):
                    yield poisoned
                continue
            # Block briefly on one in-flight result (wakes early on completion).
            next(iter(self._outstanding.values()))[0].wait(self._poll_interval)
