"""Bounded, deterministic retries: :class:`RetryPolicy` and friends.

Every retry loop in the repo — the supervisor re-dispatching a task whose
worker died, the store re-attempting a failed flush — shares one policy
shape: a bounded attempt budget, a seeded jittered exponential backoff,
and a transient-vs-deterministic error classification.  Determinism is
the point: backoff delays come from ``random.Random`` seeded with
``(policy seed, attempt, token)``, never from the global RNG or the
clock, so a chaos run under a fixed :class:`FaultPlan` replays the exact
same schedule every time.
"""

from __future__ import annotations

import sqlite3
import time
from dataclasses import dataclass
from random import Random
from typing import Any, Callable, Optional, TypeVar

T = TypeVar("T")

TRANSIENT = "transient"
"""Classification for errors worth retrying (infrastructure hiccups)."""

DETERMINISTIC = "deterministic"
"""Classification for errors that will recur on retry (real bugs)."""


class TaskQuarantinedError(RuntimeError):
    """A task exhausted its retry budget killing workers and was quarantined.

    Raised by supervised dispatch when the caller provides no poison
    handler; carries the task's dispatch index and attempt count so the
    caller can report which unit of work is poisonous.
    """

    def __init__(self, index: int, attempts: int, reason: str) -> None:
        super().__init__(
            f"task {index} quarantined after {attempts} attempt(s): {reason}"
        )
        self.index = index
        self.attempts = attempts
        self.reason = reason


class WorkerCrashError(RuntimeError):
    """A pool worker died (or was reclaimed past deadline) mid-task.

    Never escapes supervised dispatch directly — it is the internal,
    always-transient signal that a dispatched task lost its worker and
    must be retried or quarantined.
    """


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded attempts with seeded, jittered exponential backoff.

    Args:
        max_attempts: Total attempts including the first (so ``3`` means
            one try plus two retries).  Must be >= 1.
        backoff_base: Delay before the first retry, in seconds.
        backoff_factor: Multiplier applied per subsequent retry.
        backoff_max: Upper clamp on any single delay.
        jitter: Fractional jitter: the delay is scaled by a factor drawn
            uniformly from ``[1 - jitter, 1 + jitter]``.
        seed: Seeds the jitter draw (together with attempt and token), so
            delays are a pure function of ``(seed, attempt, token)``.
    """

    max_attempts: int = 3
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0
    jitter: float = 0.25
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise ValueError("backoff delays must be non-negative")
        if not 0 <= self.jitter <= 1:
            raise ValueError(f"jitter must be within [0, 1], got {self.jitter}")

    def backoff(self, attempt: int, token: Any = 0) -> float:
        """The delay (seconds) before retry number ``attempt`` (1-based).

        Deterministic: the jitter factor is drawn from a ``Random`` seeded
        with ``(seed, attempt, token)``, so the same policy produces the
        same schedule for the same task on every run.
        """
        if attempt < 1:
            return 0.0
        raw = self.backoff_base * (self.backoff_factor ** (attempt - 1))
        raw = min(raw, self.backoff_max)
        if self.jitter:
            rng = Random(f"{self.seed}:{attempt}:{token}")
            raw *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return min(raw, self.backoff_max)


def classify_error(exc: BaseException) -> str:
    """Classify ``exc`` as :data:`TRANSIENT` or :data:`DETERMINISTIC`.

    Transient errors are infrastructure failures a retry can plausibly
    outlive: a worker process dying, the OS refusing a write, sqlite
    reporting a busy/locked/full condition.  Everything else — assertion
    failures, value errors, any bug in task code — is deterministic: the
    same inputs will fail the same way, so retrying wastes the budget.
    """
    if isinstance(exc, WorkerCrashError):
        return TRANSIENT
    if isinstance(exc, (ConnectionError, TimeoutError)):
        return TRANSIENT
    if isinstance(exc, OSError):
        return TRANSIENT
    if isinstance(exc, sqlite3.OperationalError):
        return TRANSIENT
    return DETERMINISTIC


def is_transient_error(exc: BaseException) -> bool:
    return classify_error(exc) == TRANSIENT


def call_with_retry(
    func: Callable[[], T],
    policy: RetryPolicy,
    *,
    token: Any = 0,
    classify: Callable[[BaseException], str] = classify_error,
    sleep: Callable[[float], None] = time.sleep,
    on_retry: Optional[Callable[[int, BaseException, float], None]] = None,
) -> T:
    """Call ``func`` under ``policy``, retrying transient failures.

    Deterministic errors propagate immediately; transient errors are
    retried with the policy's seeded backoff until the attempt budget is
    spent, after which the last error propagates.  ``on_retry(attempt,
    error, delay)`` fires before each backoff sleep.
    """
    last_error: Optional[BaseException] = None
    for attempt in range(1, policy.max_attempts + 1):
        try:
            return func()
        except Exception as exc:  # noqa: BLE001 - classification decides
            if classify(exc) != TRANSIENT or attempt == policy.max_attempts:
                raise
            last_error = exc
            delay = policy.backoff(attempt, token)
            if on_retry is not None:
                on_retry(attempt, exc, delay)
            if delay > 0:
                sleep(delay)
    raise last_error if last_error is not None else RuntimeError("unreachable")
