"""repro — a reproduction of "On the Validity of Consensus" (PODC 2023).

The package is organised as follows:

* :mod:`repro.core` — the paper's formalism: input configurations, validity
  properties, the similarity/compatibility relations, triviality and the
  similarity condition ``C_S``, the solvability classifier, and the
  Universal decision rule.
* :mod:`repro.sim` — a deterministic partially synchronous message-passing
  simulator (processes, adversarial scheduling, GST/delta, metrics).
* :mod:`repro.crypto` — simulated PKI signatures, threshold signatures and
  hashing.
* :mod:`repro.broadcast` — best-effort, Byzantine-reliable and slow broadcast.
* :mod:`repro.consensus` — Quad, binary consensus, the three vector-consensus
  algorithms of the paper and the Universal protocol.
* :mod:`repro.coding` — GF(256) Reed–Solomon coding and ADD.
* :mod:`repro.analysis` — experiment drivers used by the benchmarks and the
  examples (classification, complexity sweeps, lower-bound and partitioning
  adversaries).
* :mod:`repro.experiments` — the scenario matrix (protocol × adversary ×
  delay model) and the parallel experiment runner with deterministic
  per-``(scenario, seed)`` results, aggregation and regression baselines;
  CLI: ``python -m repro.experiments``.
"""

from . import core

__version__ = "1.0.0"

__all__ = ["core", "__version__"]
