"""Sweep aggregation and JSON regression baselines.

The runner produces one :class:`~repro.experiments.runner.RunResult` per
``(scenario, seed)``; this module folds those records into per-scenario
:class:`ScenarioSummary` statistics (message/word/latency distributions,
violation and error counts) and diffs them against a stored JSON baseline so
a sweep can act as a regression gate: correctness fields are compared
exactly, complexity means within a relative tolerance.
"""

from __future__ import annotations

import json
import math
import pathlib
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Union

from .runner import RunResult

BASELINE_FORMAT_VERSION = 1


@dataclass(frozen=True)
class Distribution:
    """Summary statistics of one per-run metric across a sweep."""

    minimum: float
    maximum: float
    mean: float
    median: float

    @classmethod
    def from_values(cls, values: Sequence[float]) -> "Distribution":
        if not values:
            return cls(0.0, 0.0, 0.0, 0.0)
        ordered = sorted(values)
        middle = len(ordered) // 2
        if len(ordered) % 2:
            median = float(ordered[middle])
        else:
            median = (ordered[middle - 1] + ordered[middle]) / 2.0
        return cls(
            minimum=float(ordered[0]),
            maximum=float(ordered[-1]),
            mean=sum(ordered) / len(ordered),
            median=median,
        )


@dataclass
class ScenarioSummary:
    """Aggregated outcome of every run of one scenario in a sweep."""

    scenario: str
    runs: int = 0
    errors: int = 0
    incomplete: int = 0
    agreement_violations: int = 0
    validity_violations: int = 0
    violation_total: int = 0
    messages: Distribution = field(default_factory=lambda: Distribution(0, 0, 0, 0))
    words: Distribution = field(default_factory=lambda: Distribution(0, 0, 0, 0))
    latency: Distribution = field(default_factory=lambda: Distribution(0, 0, 0, 0))

    @property
    def ok(self) -> bool:
        return (
            self.errors == 0
            and self.incomplete == 0
            and self.agreement_violations == 0
            and self.validity_violations == 0
        )

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)


class _ScenarioAccumulator:
    """Streaming per-scenario fold: counters plus the metric value lists.

    Only the numeric distributions (needed for min/max/mean/median) are
    retained per run — the :class:`RunResult` records themselves are not,
    which is what lets a sweep aggregate while it streams instead of
    materializing every record first.
    """

    __slots__ = (
        "scenario",
        "runs",
        "errors",
        "incomplete",
        "agreement_violations",
        "validity_violations",
        "violation_total",
        "messages",
        "words",
        "latency",
    )

    def __init__(self, scenario: str):
        self.scenario = scenario
        self.runs = 0
        self.errors = 0
        self.incomplete = 0
        self.agreement_violations = 0
        self.validity_violations = 0
        self.violation_total = 0
        self.messages: List[float] = []
        self.words: List[float] = []
        self.latency: List[float] = []

    def add(self, result: RunResult) -> None:
        self.runs += 1
        self.violation_total += len(result.violations)
        if result.error is not None:
            self.errors += 1
            return
        # Finished runs feed the distributions and the correctness counters.
        if not result.completed:
            self.incomplete += 1
        if result.agreement is False:
            self.agreement_violations += 1
        if result.validity_ok is False:
            self.validity_violations += 1
        self.messages.append(result.message_complexity)
        self.words.append(result.communication_complexity)
        if result.completed and result.decision_latency is not None:
            self.latency.append(result.decision_latency)

    def summary(self) -> ScenarioSummary:
        return ScenarioSummary(
            scenario=self.scenario,
            runs=self.runs,
            errors=self.errors,
            incomplete=self.incomplete,
            agreement_violations=self.agreement_violations,
            validity_violations=self.validity_violations,
            violation_total=self.violation_total,
            messages=Distribution.from_values(self.messages),
            words=Distribution.from_values(self.words),
            latency=Distribution.from_values(self.latency),
        )


class StreamingAggregator:
    """Folds :class:`RunResult` records into summaries one record at a time.

    Built for :meth:`Runner.iter_runs`: feed results as the pool produces
    them and call :meth:`summaries` at the end — identical output to
    :func:`aggregate` over the full list, without holding the records.
    """

    def __init__(self) -> None:
        self._accumulators: Dict[str, _ScenarioAccumulator] = {}

    def add(self, result: RunResult) -> None:
        accumulator = self._accumulators.get(result.scenario)
        if accumulator is None:
            accumulator = self._accumulators[result.scenario] = _ScenarioAccumulator(
                result.scenario
            )
        accumulator.add(result)

    def add_many(self, results: Iterable[RunResult]) -> None:
        for result in results:
            self.add(result)

    def summaries(self) -> Dict[str, ScenarioSummary]:
        return {name: acc.summary() for name, acc in self._accumulators.items()}


def aggregate(results: Iterable[RunResult]) -> Dict[str, ScenarioSummary]:
    """Fold run records into per-scenario summaries (keyed by scenario name).

    Runs that never finished (errors, timeouts) carry no agreement/validity
    verdict and no meaningful latency, so they only feed the ``errors``
    counter: agreement/validity violations are counted over runs with an
    actual ``False`` verdict, and the latency distribution only over runs in
    which every correct process decided.  Treating a timed-out run's
    placeholder fields as data would let it pass for a clean, zero-latency
    run.

    This is the one-shot wrapper over :class:`StreamingAggregator`; both
    produce identical summaries.
    """
    aggregator = StreamingAggregator()
    aggregator.add_many(results)
    return aggregator.summaries()


def summaries_to_payload(summaries: Dict[str, ScenarioSummary]) -> Dict[str, Any]:
    """The baseline JSON shape as plain dicts (single source of the format)."""
    return {
        "format_version": BASELINE_FORMAT_VERSION,
        "scenarios": {name: summary.to_dict() for name, summary in summaries.items()},
    }


def summaries_to_json(summaries: Dict[str, ScenarioSummary]) -> str:
    """Canonical JSON for a set of summaries (stable across runs and hosts)."""
    return json.dumps(summaries_to_payload(summaries), sort_keys=True, separators=(",", ":"))


def write_baseline(path: Union[str, pathlib.Path], summaries: Dict[str, ScenarioSummary]) -> None:
    """Store sweep summaries as a regression baseline."""
    pathlib.Path(path).write_text(summaries_to_json(summaries) + "\n")


def load_baseline(path: Union[str, pathlib.Path]) -> Dict[str, Dict[str, Any]]:
    payload = json.loads(pathlib.Path(path).read_text())
    if payload.get("format_version") != BASELINE_FORMAT_VERSION:
        raise ValueError(
            f"baseline {path} has format_version {payload.get('format_version')!r}, "
            f"expected {BASELINE_FORMAT_VERSION}"
        )
    return payload["scenarios"]


def diff_against_baseline(
    summaries: Dict[str, ScenarioSummary],
    baseline: Dict[str, Dict[str, Any]],
    relative_tolerance: float = 0.2,
) -> List[str]:
    """Compare a sweep against a baseline; returns human-readable regressions.

    Correctness counters (errors, incomplete runs, agreement/validity
    violations) must not exceed the baseline.  Mean message and word
    complexity may drift by at most ``relative_tolerance`` above it
    (improvements never count as regressions).
    """
    regressions: List[str] = []
    for name, stored in sorted(baseline.items()):
        summary = summaries.get(name)
        if summary is None:
            regressions.append(f"{name}: scenario missing from the sweep")
            continue
        for counter in ("errors", "incomplete", "agreement_violations", "validity_violations"):
            measured = getattr(summary, counter)
            allowed = stored.get(counter, 0)
            if measured > allowed:
                regressions.append(f"{name}: {counter} rose from {allowed} to {measured}")
        for metric in ("messages", "words"):
            measured_mean = getattr(summary, metric).mean
            stored_mean = stored.get(metric, {}).get("mean", 0.0)
            ceiling = stored_mean * (1.0 + relative_tolerance)
            if stored_mean and measured_mean > ceiling and not math.isclose(measured_mean, ceiling):
                regressions.append(
                    f"{name}: mean {metric} rose from {stored_mean:.1f} to {measured_mean:.1f} "
                    f"(> {relative_tolerance:.0%} tolerance)"
                )
    return regressions


def check_baseline(
    summaries: Dict[str, ScenarioSummary],
    path: Union[str, pathlib.Path],
    relative_tolerance: float = 0.2,
) -> List[str]:
    """Load a baseline file and diff a sweep against it."""
    return diff_against_baseline(summaries, load_baseline(path), relative_tolerance)


def growth_exponent(sizes: Sequence[int], counts: Sequence[float]) -> float:
    """Least-squares slope of ``log(count)`` vs ``log(n)`` (shared with analysis)."""
    from ..analysis.complexity import fit_growth_exponent

    return fit_growth_exponent(sizes, counts)


def results_to_json(results: Sequence[RunResult]) -> str:
    """Canonical JSON for raw run records (used by the CLI ``--output``)."""
    return json.dumps([result.to_dict() for result in results], sort_keys=True, separators=(",", ":"))
