"""Command-line interface for scenario sweeps: ``python -m repro.experiments``.

Examples::

    # Enumerate the registered scenario matrix (add --json for tooling)
    python -m repro.experiments --list
    python -m repro.experiments --list --json

    # Parallel smoke sweep over a slice of the matrix, 2 seeds per scenario
    python -m repro.experiments run --protocol binary universal-authenticated \
        --adversary silent crash --seeds 2 --parallel 4

    # Incremental sweep against a persistent run store: cache hits are
    # served from runs.db, misses are executed and persisted, so an
    # interrupted sweep resumes for free and a re-sweep executes nothing.
    python -m repro.experiments run --store runs.db --seeds 3 --parallel 4
    python -m repro.experiments run --store runs.db --seeds 3 --require-cached
    python -m repro.experiments run --store runs.db --seeds 3 --rerun

    # Aggregate and diff stored slices without re-running anything
    python -m repro.experiments report --store runs.db --protocol binary
    python -m repro.experiments compare --store runs.db \
        --against benchmarks/baselines/scenario_matrix.json

    # Full matrix, write (or check) a regression baseline
    python -m repro.experiments run --seeds 3 --write-baseline baseline.json
    python -m repro.experiments run --seeds 3 --check-baseline baseline.json

    # Classify the validity-property families (the paper's theory side) and
    # cross-check the verdicts against the recorded scenario matrix; verdicts
    # are cached in the same run store, so a re-analysis classifies nothing.
    python -m repro.experiments analyze --parallel 4 --store runs.db
    python -m repro.experiments analyze --check-baseline

    # Coverage-guided adversarial fuzzing over scenario space: mutate the
    # base scenarios, persist the corpus in the run store (a warm re-fuzz
    # executes nothing), shrink violations to minimal replayable specs.
    python -m repro.experiments fuzz --budget 200 --seed 2023 --store runs.db \
        --counterexamples out/counterexamples
    python -m repro.experiments run --spec out/counterexamples/counterexample-XYZ.json

The process exits non-zero when any run errors out, violates a correctness
property, or regresses against the baseline — which makes the command usable
directly as a CI gate.  Exit codes: 0 success, 1 failures/regressions,
2 configuration errors, 3 empty slice (``report``/``compare`` found no
matching records).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Any, Dict, List, Optional, Sequence

from .aggregate import StreamingAggregator, check_baseline, results_to_json, summaries_to_payload, write_baseline
from .runner import DEFAULT_SEED, Runner, sweep_seeds
from .scenario import ADVERSARIES, DELAY_MODELS, PROTOCOLS, ScenarioSpec, default_matrix, find_scenarios


DEFAULT_VERDICT_BASELINE = pathlib.Path("benchmarks/baselines/analysis_verdicts.json")
"""The committed analysis-verdict baseline (``analyze --check-baseline`` default)."""

DEFAULT_MATRIX_BASELINE = pathlib.Path("benchmarks/baselines/scenario_matrix.json")
"""The committed scenario-matrix baseline the cross-check reads by default."""

DEFAULT_FUZZ_BASES = ("binary+none+partition", "quad+none+synchronous")
"""Default fuzz bases: one leaderless and one leader-based protocol, with
room for the mutation walk to move both toward their resilience bounds."""

EXIT_EMPTY_SLICE = 3
"""Exit code when ``report``/``compare`` match no (current-code) records —
distinct from 2 (configuration error) so CI can tell "you asked for nothing"
from "you asked wrongly"."""


def _positive_int(raw: str) -> int:
    """argparse type: a strictly positive integer (worker counts)."""
    try:
        value = int(raw)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected a positive integer, got {raw!r}") from None
    if value < 1:
        raise argparse.ArgumentTypeError(f"expected a positive integer, got {value}")
    return value


def _positive_float(raw: str) -> float:
    """argparse type: a strictly positive number (timeouts)."""
    try:
        value = float(raw)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected a positive number, got {raw!r}") from None
    if value <= 0:
        raise argparse.ArgumentTypeError(f"expected a positive number, got {value}")
    return value


def _add_slice_arguments(parser: argparse.ArgumentParser, with_scenario: bool = True) -> None:
    if with_scenario:
        parser.add_argument("--scenario", nargs="+", default=None, help="explicit scenario names")
    parser.add_argument("--protocol", nargs="+", default=None, choices=sorted(PROTOCOLS))
    parser.add_argument("--adversary", nargs="+", default=None, choices=sorted(ADVERSARIES))
    parser.add_argument("--delay", nargs="+", default=None, choices=sorted(DELAY_MODELS))


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Sweep the protocol x adversary x delay scenario matrix.",
    )
    parser.add_argument("--list", action="store_true", help="enumerate registered scenarios and exit")
    parser.add_argument(
        "--json",
        action="store_true",
        help="with --list: emit the matrix as machine-readable JSON (one record per "
        "scenario with its content fingerprint — the same source of truth the run store keys on)",
    )
    subparsers = parser.add_subparsers(dest="command")

    run = subparsers.add_parser("run", help="execute a sweep")
    _add_slice_arguments(run)
    run.add_argument(
        "--seeds",
        default=None,
        help=f"either a count (seeds {DEFAULT_SEED}, {DEFAULT_SEED + 1}, ...) or a comma list "
        "(default: 1 seed; with --spec: the seed recorded in the file)",
    )
    run.add_argument(
        "--spec",
        type=pathlib.Path,
        default=None,
        metavar="FILE",
        help="replay a single scenario from JSON — a fuzz counterexample file or a bare "
        "spec payload (as in --list --json); overrides any matrix slice selection",
    )
    run.add_argument(
        "--parallel", type=_positive_int, default=None, metavar="W", help="worker processes (default: serial)"
    )
    run.add_argument(
        "--timeout", type=_positive_float, default=None, help="per-run wall-clock timeout in seconds"
    )
    run.add_argument(
        "--store",
        type=pathlib.Path,
        default=None,
        help="persistent run store (SQLite): serve cache hits, execute+persist misses",
    )
    run.add_argument(
        "--rerun",
        action="store_true",
        help="with --store: recompute every requested run and refresh the store",
    )
    run.add_argument(
        "--require-cached",
        action="store_true",
        help="with --store: exit non-zero unless every run was served from the store "
        "(CI uses this to prove a warm sweep executes nothing)",
    )
    run.add_argument("--output", type=pathlib.Path, default=None, help="write raw RunResult records as JSON")
    run.add_argument("--write-baseline", type=pathlib.Path, default=None, help="store the sweep summary")
    run.add_argument("--check-baseline", type=pathlib.Path, default=None, help="diff against a stored summary")
    run.add_argument(
        "--diff-output",
        type=pathlib.Path,
        default=None,
        help="write the baseline diff (regressions + measured summary) as JSON, for CI artifacts",
    )
    run.add_argument("--tolerance", type=float, default=0.2, help="relative complexity tolerance for the diff")
    run.add_argument("--quiet", action="store_true", help="only print failures")

    report = subparsers.add_parser("report", help="aggregate a stored slice into summary tables")
    report.add_argument("--store", type=pathlib.Path, required=True, help="run store to read")
    _add_slice_arguments(report)
    report.add_argument(
        "--any-code",
        action="store_true",
        help="include records stored under other code fingerprints (default: current code only)",
    )
    report.add_argument("--markdown", type=pathlib.Path, default=None, help="write the table as markdown")
    report.add_argument("--json-output", type=pathlib.Path, default=None, help="write the summaries as JSON")
    report.add_argument("--quiet", action="store_true", help="do not print the table to stdout")

    analyze = subparsers.add_parser(
        "analyze",
        help="classify validity-property families and cross-check the scenario matrix",
    )
    analyze.add_argument(
        "--family",
        nargs="+",
        default=None,
        choices=["named", "enumerated", "sampled"],
        help="restrict the classified property families (default: all, plus the "
        "properties the scenario matrix targets)",
    )
    analyze.add_argument(
        "--parallel", type=_positive_int, default=None, metavar="W", help="worker processes (default: serial)"
    )
    analyze.add_argument(
        "--store",
        type=pathlib.Path,
        default=None,
        help="persistent run store (SQLite): serve cached verdicts, classify+persist misses",
    )
    analyze.add_argument(
        "--rerun", action="store_true", help="with --store: reclassify everything and refresh the store"
    )
    analyze.add_argument(
        "--require-cached",
        action="store_true",
        help="with --store: exit non-zero unless every verdict was served from the store",
    )
    analyze.add_argument(
        "--markdown", type=pathlib.Path, default=None, help="write the verdict table as markdown"
    )
    analyze.add_argument(
        "--json-output",
        type=pathlib.Path,
        default=None,
        help="write the verdicts as JSON (same shape as the verdict baseline)",
    )
    analyze.add_argument(
        "--write-baseline", type=pathlib.Path, default=None, help="store the verdicts as a baseline"
    )
    analyze.add_argument(
        "--check-baseline",
        type=pathlib.Path,
        nargs="?",
        const=DEFAULT_VERDICT_BASELINE,
        default=None,
        help=f"diff the verdicts against a stored baseline (default: {DEFAULT_VERDICT_BASELINE}); "
        "theory verdicts are exact, so any changed field is a regression",
    )
    analyze.add_argument(
        "--no-cross-check",
        action="store_true",
        help="skip checking the verdicts against the recorded scenario-matrix summaries",
    )
    analyze.add_argument(
        "--cross-check-against",
        type=pathlib.Path,
        default=DEFAULT_MATRIX_BASELINE,
        help="recorded summaries to cross-check: a run store or a baseline JSON "
        f"(default: {DEFAULT_MATRIX_BASELINE})",
    )
    analyze.add_argument("--quiet", action="store_true", help="only print failures")

    fuzz = subparsers.add_parser(
        "fuzz",
        help="coverage-guided adversarial fuzzing over scenario space",
        description="Mutate the base scenarios under a seeded walk, score executions by "
        "coverage novelty, persist the corpus in the run store, and shrink every "
        "violating input to a minimal replayable counterexample (run --spec replays it). "
        "Deterministic: same seed, budget and bases produce the same campaign, serial "
        "or parallel.",
    )
    fuzz.add_argument(
        "--budget", type=_positive_int, default=200, help="candidates to process (default: 200)"
    )
    fuzz.add_argument(
        "--seed",
        type=int,
        default=DEFAULT_SEED,
        help=f"fuzz seed driving the mutation walk (default: {DEFAULT_SEED})",
    )
    fuzz.add_argument(
        "--base",
        nargs="+",
        default=None,
        metavar="NAME",
        help="base scenarios to mutate from: default-matrix names or protocol+adversary+delay "
        f"combinations, extension keys included (default: {' '.join(DEFAULT_FUZZ_BASES)})",
    )
    fuzz.add_argument(
        "--store",
        type=pathlib.Path,
        default=None,
        help="persistent run store: results + corpus are content-addressed there, so a "
        "warm re-fuzz of the same campaign executes zero runs",
    )
    fuzz.add_argument(
        "--parallel", type=_positive_int, default=None, metavar="W", help="worker processes (default: serial)"
    )
    fuzz.add_argument(
        "--timeout", type=_positive_float, default=None, help="per-run wall-clock timeout in seconds"
    )
    fuzz.add_argument(
        "--counterexamples",
        type=pathlib.Path,
        default=None,
        metavar="DIR",
        help="write each shrunk counterexample as a replayable JSON file in DIR",
    )
    fuzz.add_argument(
        "--json-output", type=pathlib.Path, default=None, help="write the full campaign report as JSON"
    )
    fuzz.add_argument(
        "--require-cached",
        action="store_true",
        help="with --store: exit non-zero unless the whole campaign was served from the "
        "store (CI uses this to prove a warm re-fuzz executes nothing)",
    )
    fuzz.add_argument("--no-shrink", action="store_true", help="report violations unshrunk")
    fuzz.add_argument("--quiet", action="store_true", help="suppress per-round progress lines")

    compare = subparsers.add_parser(
        "compare", help="diff a store against another store or a JSON baseline"
    )
    compare.add_argument("--store", type=pathlib.Path, required=True, help="run store to measure")
    compare.add_argument(
        "--against",
        type=pathlib.Path,
        required=True,
        help="reference: another run store (SQLite) or a baseline JSON file",
    )
    compare.add_argument("--scenario", nargs="+", default=None, help="restrict both sides to these scenarios")
    compare.add_argument("--tolerance", type=float, default=0.2, help="relative complexity tolerance")
    compare.add_argument(
        "--any-code", action="store_true", help="include records from other code fingerprints"
    )
    return parser


def _parse_seeds(raw: str) -> List[int]:
    """Parse ``--seeds``: a positive count, or a comma list of distinct ints."""
    if "," in raw:
        tokens = [token.strip() for token in raw.split(",") if token.strip()]
        if not tokens:
            raise ValueError(f"--seeds list {raw!r} contains no seeds")
        try:
            seeds = [int(token) for token in tokens]
        except ValueError:
            raise ValueError(f"--seeds list {raw!r} must contain only integers") from None
        duplicates = sorted({seed for seed in seeds if seeds.count(seed) > 1})
        if duplicates:
            raise ValueError(
                f"--seeds list {raw!r} repeats {duplicates}: every (scenario, seed) pair is "
                "deterministic, so a repeated seed would just sweep the same runs twice"
            )
        return seeds
    try:
        count = int(raw)
    except ValueError:
        raise ValueError(f"--seeds expects a count or a comma list of integers, got {raw!r}") from None
    if count < 1:
        raise ValueError(f"--seeds count must be positive, got {count}")
    return list(sweep_seeds(count))


def _select_scenarios(args: argparse.Namespace):
    if args.scenario:
        return find_scenarios(args.scenario)
    matrix = default_matrix()
    return [
        spec
        for spec in matrix
        if (args.protocol is None or spec.protocol in args.protocol)
        and (args.adversary is None or spec.adversary in args.adversary)
        and (args.delay is None or spec.delay in args.delay)
    ]


def _scenario_record(spec: ScenarioSpec, fingerprint: str) -> Dict[str, Any]:
    from ..store.fingerprint import spec_payload

    record = spec_payload(spec)
    record["params"] = dict(record["params"]) if record["params"] else {}
    record["fingerprint"] = fingerprint
    return record


def _command_list(as_json: bool) -> int:
    matrix = default_matrix()
    if as_json:
        from ..store.fingerprint import FINGERPRINT_VERSION, code_fingerprint, scenario_fingerprint

        payload = {
            "fingerprint_version": FINGERPRINT_VERSION,
            "code_fingerprint": code_fingerprint(),
            "scenarios": [_scenario_record(spec, scenario_fingerprint(spec)) for spec in matrix],
        }
        print(json.dumps(payload, sort_keys=True, indent=2))
        return 0
    print(f"{len(matrix)} registered scenarios (protocol+adversary+delay):")
    for spec in matrix:
        print(f"  {spec.describe()}")
    print(
        f"registries: {len(PROTOCOLS)} protocols, {len(ADVERSARIES)} adversaries, "
        f"{len(DELAY_MODELS)} delay models"
    )
    return 0


def _fail(message: str) -> int:
    print(f"error: {message}", file=sys.stderr)
    return 2


def _fail_empty(message: str) -> int:
    print(f"empty slice: {message}", file=sys.stderr)
    return EXIT_EMPTY_SLICE


def _load_spec_file(path: pathlib.Path, seeds_arg: Optional[str]):
    """Load ``run --spec FILE``: a counterexample record or a bare spec payload.

    Returns ``(scenarios, seeds)``.  The file's recorded seed is the default
    seed list, so replaying a fuzz counterexample reproduces the exact run;
    an explicit ``--seeds`` still wins.
    """
    from ..store.fingerprint import spec_from_payload

    try:
        payload = json.loads(path.read_text())
    except OSError as exc:
        raise ValueError(f"cannot read spec file {path}: {exc}") from None
    except json.JSONDecodeError as exc:
        raise ValueError(f"spec file {path} is not valid JSON: {exc}") from None
    if not isinstance(payload, dict):
        raise ValueError(f"spec file {path} must contain a JSON object")
    record = payload.get("spec", payload)
    try:
        spec = spec_from_payload(record)
    except (KeyError, TypeError, ValueError) as exc:
        raise ValueError(f"spec file {path} has missing or invalid spec fields: {exc}") from None
    if seeds_arg is not None:
        seeds = _parse_seeds(seeds_arg)
    elif "seed" in payload:
        seeds = [int(payload["seed"])]
    else:
        seeds = [DEFAULT_SEED]
    return [spec], seeds


def _command_run(args: argparse.Namespace) -> int:
    try:
        if args.spec is not None:
            scenarios, seeds = _load_spec_file(args.spec, args.seeds)
        else:
            scenarios = _select_scenarios(args)
            seeds = _parse_seeds(args.seeds if args.seeds is not None else "1")
    except (KeyError, ValueError) as exc:
        return _fail(exc.args[0] if exc.args else str(exc))
    if not scenarios:
        return _fail("no scenarios selected")
    if args.diff_output is not None and args.check_baseline is None:
        return _fail("--diff-output requires --check-baseline")
    if (args.rerun or args.require_cached) and args.store is None:
        return _fail("--rerun/--require-cached only make sense with --store")
    if args.rerun and args.require_cached:
        return _fail("--rerun forces execution, which contradicts --require-cached")

    store = None
    if args.store is not None:
        from ..store import RunStore, StoreFormatError

        try:
            store = RunStore(args.store)
        except StoreFormatError as exc:
            return _fail(str(exc))

    # Stream the sweep: results are aggregated (and failures collected) as
    # the persistent pool produces them; the full record list is only
    # materialized when --output needs it.
    aggregator = StreamingAggregator()
    failures = []
    collected = [] if args.output is not None else None
    run_count = 0
    try:
        with Runner(parallel=args.parallel, timeout=args.timeout) as runner:
            for result in runner.iter_runs(scenarios, seeds, store=store, rerun=args.rerun):
                run_count += 1
                aggregator.add(result)
                if not result.ok:
                    failures.append(result)
                if collected is not None:
                    collected.append(result)
        summaries = aggregator.summaries()

        if not args.quiet:
            print(f"{run_count} runs over {len(scenarios)} scenarios x {len(seeds)} seeds")
            for name in sorted(summaries):
                summary = summaries[name]
                status = "ok" if summary.ok else "FAIL"
                print(
                    f"  [{status}] {name}: msgs mean={summary.messages.mean:.1f} "
                    f"words mean={summary.words.mean:.1f} latency mean={summary.latency.mean:.1f}"
                )
        for result in failures:
            reason = result.error or "; ".join(result.violations) or "incomplete"
            print(f"  FAILED {result.scenario} seed={result.seed}: {reason}", file=sys.stderr)

        if collected is not None:
            args.output.write_text(results_to_json(collected) + "\n")
            print(f"wrote {len(collected)} run records to {args.output}")

        exit_code = 1 if failures else 0
        if store is not None:
            stats = store.stats
            executed = run_count - stats.hits
            if args.rerun:
                print(f"store {args.store}: {executed} runs recomputed (--rerun), {stats.stored} stored")
            else:
                print(f"store {args.store}: {stats.hits} cached, {executed} executed, {stats.stored} stored")
            if args.require_cached and (stats.misses or stats.hits < run_count):
                print(
                    f"  REQUIRE-CACHED failed: {stats.misses} of {run_count} runs were not in the store",
                    file=sys.stderr,
                )
                exit_code = 1
        if args.check_baseline is not None:
            regressions = check_baseline(summaries, args.check_baseline, args.tolerance)
            for regression in regressions:
                print(f"  REGRESSION {regression}", file=sys.stderr)
            if args.diff_output is not None:
                payload = {
                    "baseline": str(args.check_baseline),
                    "regressions": regressions,
                    "failures": [result.to_dict() for result in failures],
                    "measured": summaries_to_payload(summaries),
                }
                args.diff_output.write_text(json.dumps(payload, sort_keys=True, indent=2) + "\n")
                print(f"wrote baseline diff to {args.diff_output}")
            if regressions:
                exit_code = 1
            elif not args.quiet:
                print(f"baseline {args.check_baseline}: no regressions")
        if args.write_baseline is not None:
            write_baseline(args.write_baseline, summaries)
            print(f"wrote baseline for {len(summaries)} scenarios to {args.write_baseline}")
        return exit_code
    finally:
        if store is not None:
            store.close()


def _command_report(args: argparse.Namespace) -> int:
    from ..store import RunStore, StoreFormatError, render_markdown, render_table, summarize_store
    from .aggregate import summaries_to_json

    if not args.store.exists():
        return _fail(f"store {args.store} does not exist")
    try:
        store = RunStore(args.store)
    except StoreFormatError as exc:
        return _fail(str(exc))
    with store:
        summaries = summarize_store(
            store,
            scenarios=args.scenario,
            protocols=args.protocol,
            adversaries=args.adversary,
            delays=args.delay,
            any_code=args.any_code,
        )
        stale = sum(
            count for code_fp, count in store.code_fingerprints() if code_fp != store.code_fp
        )
    if not summaries:
        hint = (
            " (records exist under other code fingerprints; pass --any-code or --rerun the sweep)"
            if stale and not args.any_code
            else ""
        )
        return _fail_empty(f"no stored records match the requested slice{hint}")
    if not args.quiet:
        print(render_table(summaries))
        if stale and not args.any_code:
            print(f"(+{stale} records under older code fingerprints; --any-code includes them)")
    if args.markdown is not None:
        args.markdown.write_text(render_markdown(summaries) + "\n")
        print(f"wrote markdown report for {len(summaries)} scenarios to {args.markdown}")
    if args.json_output is not None:
        args.json_output.write_text(summaries_to_json(summaries) + "\n")
        print(f"wrote JSON summaries for {len(summaries)} scenarios to {args.json_output}")
    return 0


def _command_analyze(args: argparse.Namespace) -> int:
    from ..analysis.pipeline import (
        cross_check_matrix,
        cross_check_tasks,
        dedupe_tasks,
        diff_verdicts,
        enumerated_tasks,
        load_verdict_baseline,
        named_tasks,
        render_verdict_markdown,
        render_verdict_table,
        run_analysis,
        sampled_tasks,
        verdicts_to_json,
    )

    if (args.rerun or args.require_cached) and args.store is None:
        return _fail("--rerun/--require-cached only make sense with --store")
    if args.rerun and args.require_cached:
        return _fail("--rerun forces reclassification, which contradicts --require-cached")

    families = args.family if args.family else ["named", "enumerated", "sampled"]
    tasks = []
    if "named" in families:
        tasks.extend(named_tasks())
    if "enumerated" in families:
        tasks.extend(enumerated_tasks())
    if "sampled" in families:
        tasks.extend(sampled_tasks())
    cross_check = not args.no_cross_check
    if cross_check:
        if not args.cross_check_against.exists():
            return _fail(
                f"cross-check reference {args.cross_check_against} does not exist "
                "(pass --no-cross-check or point --cross-check-against at a store/baseline)"
            )
        tasks.extend(cross_check_tasks())
    tasks = dedupe_tasks(tasks)
    if not tasks:
        return _fail("no property tasks selected")

    store = None
    if args.store is not None:
        from ..store import RunStore, StoreFormatError

        try:
            store = RunStore(args.store)
        except StoreFormatError as exc:
            return _fail(str(exc))

    try:
        with Runner(parallel=args.parallel) as runner:
            analysis = run_analysis(tasks, runner=runner, store=store, rerun=args.rerun)
        verdicts = analysis.verdicts
        counts = analysis.counts()

        exit_code = 0
        if not args.quiet:
            print(
                f"{counts['total']} validity properties classified "
                f"({analysis.cached} cached, {analysis.classified} classified)"
            )
            print(
                f"  solvable: {counts['solvable']} "
                f"(trivial: {counts['trivial']}, non-trivial via C_S: {counts['solvable_non_trivial']})  "
                f"unsolvable: {counts['unsolvable']}"
            )
        if store is not None:
            stats = store.stats
            if args.rerun and not args.quiet:
                print(
                    f"store {args.store}: {analysis.classified} verdicts reclassified (--rerun), "
                    f"{stats.verdicts_stored} stored"
                )
            elif not args.quiet:
                print(
                    f"store {args.store}: {analysis.cached} cached, {analysis.classified} "
                    f"classified, {stats.verdicts_stored} stored"
                )
            if args.require_cached and analysis.classified:
                print(
                    f"  REQUIRE-CACHED failed: {analysis.classified} of {counts['total']} "
                    "verdicts were not in the store",
                    file=sys.stderr,
                )
                exit_code = 1

        if cross_check:
            from ..store import load_reference_summaries

            try:
                summaries = load_reference_summaries(args.cross_check_against)
            except (ValueError, FileNotFoundError) as exc:
                return _fail(str(exc))
            result = cross_check_matrix(analysis.by_label(), summaries)
            for divergence in result.divergences:
                print(f"  DIVERGENCE {divergence}", file=sys.stderr)
            if result.divergences:
                print(
                    f"theory/simulation cross-check: {len(result.divergences)} divergences "
                    f"over {result.checked} scenarios",
                    file=sys.stderr,
                )
                exit_code = 1
            elif not args.quiet:
                print(
                    f"cross-check vs {args.cross_check_against}: {result.checked} scenarios "
                    f"consistent, {len(result.skipped)} without a property target — 0 divergences"
                )

        if args.markdown is not None:
            args.markdown.write_text(render_verdict_markdown(verdicts) + "\n")
            print(f"wrote markdown verdict table for {len(verdicts)} properties to {args.markdown}")
        if args.json_output is not None:
            args.json_output.write_text(verdicts_to_json(verdicts) + "\n")
            print(f"wrote {len(verdicts)} verdicts to {args.json_output}")
        if args.check_baseline is not None:
            try:
                baseline = load_verdict_baseline(args.check_baseline)
            except (OSError, ValueError) as exc:
                return _fail(str(exc))
            regressions = diff_verdicts(verdicts, baseline)
            for regression in regressions:
                print(f"  REGRESSION {regression}", file=sys.stderr)
            if regressions:
                exit_code = 1
            elif not args.quiet:
                print(f"verdict baseline {args.check_baseline}: no divergences")
        if args.write_baseline is not None:
            args.write_baseline.write_text(verdicts_to_json(verdicts) + "\n")
            print(f"wrote verdict baseline for {len(verdicts)} properties to {args.write_baseline}")
        if not args.quiet and args.markdown is None and exit_code == 0 and len(verdicts) <= 16:
            print(render_verdict_table(verdicts))
        return exit_code
    finally:
        if store is not None:
            store.close()


def _resolve_fuzz_bases(names: Sequence[str]) -> List[ScenarioSpec]:
    """Resolve ``--base`` names: default-matrix names, else registry keys.

    Extension-registered adversaries and delay models (``splitbrain``,
    ``stalled``) are not in the default matrix, so a ``protocol+adversary+delay``
    combination that names registered keys is built directly.
    """
    from .scenario import make_scenario

    by_name = {spec.name: spec for spec in default_matrix()}
    specs = []
    for name in names:
        if name in by_name:
            specs.append(by_name[name])
            continue
        parts = name.split("+")
        if len(parts) != 3:
            raise KeyError(
                f"unknown fuzz base {name!r}: not a default-matrix scenario and not a "
                "protocol+adversary+delay combination"
            )
        specs.append(make_scenario(parts[0], parts[1], parts[2]))
    return specs


def _command_fuzz(args: argparse.Namespace) -> int:
    from ..fuzz import run_fuzz

    try:
        bases = _resolve_fuzz_bases(args.base if args.base else DEFAULT_FUZZ_BASES)
    except KeyError as exc:
        return _fail(exc.args[0] if exc.args else str(exc))
    if args.require_cached and args.store is None:
        return _fail("--require-cached only makes sense with --store")

    store = None
    if args.store is not None:
        from ..store import RunStore, StoreFormatError

        try:
            store = RunStore(args.store)
        except StoreFormatError as exc:
            return _fail(str(exc))

    log = None if args.quiet else print
    try:
        with Runner(parallel=args.parallel, timeout=args.timeout) as runner:
            try:
                report = run_fuzz(
                    bases,
                    args.budget,
                    args.seed,
                    store=store,
                    runner=runner,
                    shrink=not args.no_shrink,
                    log=log,
                )
            except ValueError as exc:
                return _fail(str(exc))

        print(
            f"fuzz seed={report.fuzz_seed}: {report.candidates} candidates "
            f"({report.executed} executed, {report.cached} cached, "
            f"{report.skipped_invalid} invalid skipped)"
        )
        print(
            f"  coverage: {report.coverage_sites} sites, {report.novel} novel inputs, "
            f"pool {report.pool_size}"
        )
        print(
            f"  violations: {report.violating} inputs, "
            f"{len(report.counterexamples)} distinct counterexample(s)"
        )
        for counterexample in report.counterexamples:
            print(
                f"  counterexample {counterexample['scenario']} seed={counterexample['seed']} "
                f"({len(counterexample['mutations'])} mutation(s) from {counterexample['base']}): "
                + "; ".join(counterexample["violations"])
            )

        exit_code = 0
        if store is not None:
            stats = store.stats
            print(
                f"store {args.store}: {report.cached} cached, {report.executed} executed, "
                f"{stats.stored} runs + {stats.corpus_stored} corpus entries stored"
            )
            if args.require_cached and report.executed:
                print(
                    f"  REQUIRE-CACHED failed: {report.executed} of {report.candidates} "
                    "candidates were not in the store",
                    file=sys.stderr,
                )
                exit_code = 1
        if args.counterexamples is not None:
            args.counterexamples.mkdir(parents=True, exist_ok=True)
            for counterexample in report.counterexamples:
                path = args.counterexamples / f"counterexample-{counterexample['entry_fp'][:16]}.json"
                path.write_text(json.dumps(counterexample, sort_keys=True, indent=2) + "\n")
            print(
                f"wrote {len(report.counterexamples)} counterexample(s) to {args.counterexamples} "
                "(replay with: run --spec FILE)"
            )
        if args.json_output is not None:
            args.json_output.write_text(json.dumps(report.to_dict(), sort_keys=True, indent=2) + "\n")
            print(f"wrote campaign report to {args.json_output}")
        return exit_code
    finally:
        if store is not None:
            store.close()


def _command_compare(args: argparse.Namespace) -> int:
    from ..store import EmptySliceError, RunStore, StoreFormatError, compare_with_reference

    if not args.store.exists():
        return _fail(f"store {args.store} does not exist")
    if not args.against.exists():
        return _fail(f"reference {args.against} does not exist")
    try:
        with RunStore(args.store) as store:
            regressions = compare_with_reference(
                store,
                args.against,
                relative_tolerance=args.tolerance,
                scenarios=args.scenario,
                any_code=args.any_code,
            )
    except EmptySliceError as exc:
        return _fail_empty(str(exc))
    except (ValueError, StoreFormatError) as exc:
        return _fail(str(exc))
    for regression in regressions:
        print(f"  REGRESSION {regression}", file=sys.stderr)
    if regressions:
        print(f"{len(regressions)} regressions against {args.against}", file=sys.stderr)
        return 1
    print(f"{args.store} vs {args.against}: no regressions")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.list or args.command is None:
        return _command_list(args.json)
    if args.command == "run":
        return _command_run(args)
    if args.command == "report":
        return _command_report(args)
    if args.command == "analyze":
        return _command_analyze(args)
    if args.command == "fuzz":
        return _command_fuzz(args)
    if args.command == "compare":
        return _command_compare(args)
    parser.error(f"unknown command {args.command!r}")
    return 2  # pragma: no cover - parser.error raises
