"""Command-line interface for scenario sweeps: ``python -m repro.experiments``.

Examples::

    # Enumerate the registered scenario matrix
    python -m repro.experiments --list

    # Parallel smoke sweep over a slice of the matrix, 2 seeds per scenario
    python -m repro.experiments run --protocol binary universal-authenticated \
        --adversary silent crash --seeds 2 --parallel 4

    # Full matrix, write (or check) a regression baseline
    python -m repro.experiments run --seeds 3 --write-baseline baseline.json
    python -m repro.experiments run --seeds 3 --check-baseline baseline.json

The process exits non-zero when any run errors out, violates a correctness
property, or regresses against the baseline — which makes the command usable
directly as a CI gate.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import List, Optional, Sequence

from .aggregate import StreamingAggregator, check_baseline, results_to_json, summaries_to_payload, write_baseline
from .runner import DEFAULT_SEED, Runner, sweep_seeds
from .scenario import ADVERSARIES, DELAY_MODELS, PROTOCOLS, default_matrix, find_scenarios


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Sweep the protocol x adversary x delay scenario matrix.",
    )
    parser.add_argument("--list", action="store_true", help="enumerate registered scenarios and exit")
    subparsers = parser.add_subparsers(dest="command")

    run = subparsers.add_parser("run", help="execute a sweep")
    run.add_argument("--scenario", nargs="+", default=None, help="explicit scenario names")
    run.add_argument("--protocol", nargs="+", default=None, choices=sorted(PROTOCOLS))
    run.add_argument("--adversary", nargs="+", default=None, choices=sorted(ADVERSARIES))
    run.add_argument("--delay", nargs="+", default=None, choices=sorted(DELAY_MODELS))
    run.add_argument(
        "--seeds",
        default="1",
        help=f"either a count (seeds {DEFAULT_SEED}, {DEFAULT_SEED + 1}, ...) or a comma list",
    )
    run.add_argument("--parallel", type=int, default=None, metavar="W", help="worker processes (default: serial)")
    run.add_argument("--timeout", type=float, default=None, help="per-run wall-clock timeout in seconds")
    run.add_argument("--output", type=pathlib.Path, default=None, help="write raw RunResult records as JSON")
    run.add_argument("--write-baseline", type=pathlib.Path, default=None, help="store the sweep summary")
    run.add_argument("--check-baseline", type=pathlib.Path, default=None, help="diff against a stored summary")
    run.add_argument(
        "--diff-output",
        type=pathlib.Path,
        default=None,
        help="write the baseline diff (regressions + measured summary) as JSON, for CI artifacts",
    )
    run.add_argument("--tolerance", type=float, default=0.2, help="relative complexity tolerance for the diff")
    run.add_argument("--quiet", action="store_true", help="only print failures")
    return parser


def _parse_seeds(raw: str) -> List[int]:
    if "," in raw:
        return [int(token) for token in raw.split(",") if token.strip()]
    return list(sweep_seeds(int(raw)))


def _select_scenarios(args: argparse.Namespace):
    if args.scenario:
        return find_scenarios(args.scenario)
    matrix = default_matrix()
    return [
        spec
        for spec in matrix
        if (args.protocol is None or spec.protocol in args.protocol)
        and (args.adversary is None or spec.adversary in args.adversary)
        and (args.delay is None or spec.delay in args.delay)
    ]


def _command_list() -> int:
    matrix = default_matrix()
    print(f"{len(matrix)} registered scenarios (protocol+adversary+delay):")
    for spec in matrix:
        print(f"  {spec.describe()}")
    print(
        f"registries: {len(PROTOCOLS)} protocols, {len(ADVERSARIES)} adversaries, "
        f"{len(DELAY_MODELS)} delay models"
    )
    return 0


def _command_run(args: argparse.Namespace) -> int:
    try:
        scenarios = _select_scenarios(args)
        seeds = _parse_seeds(args.seeds)
    except (KeyError, ValueError) as exc:
        message = exc.args[0] if exc.args else str(exc)
        print(f"error: {message}", file=sys.stderr)
        return 2
    if not scenarios:
        print("no scenarios selected", file=sys.stderr)
        return 2
    if args.diff_output is not None and args.check_baseline is None:
        print("error: --diff-output requires --check-baseline", file=sys.stderr)
        return 2
    # Stream the sweep: results are aggregated (and failures collected) as
    # the persistent pool produces them; the full record list is only
    # materialized when --output needs it.
    aggregator = StreamingAggregator()
    failures = []
    collected = [] if args.output is not None else None
    run_count = 0
    with Runner(parallel=args.parallel, timeout=args.timeout) as runner:
        for result in runner.iter_runs(scenarios, seeds):
            run_count += 1
            aggregator.add(result)
            if not result.ok:
                failures.append(result)
            if collected is not None:
                collected.append(result)
    summaries = aggregator.summaries()

    if not args.quiet:
        print(f"{run_count} runs over {len(scenarios)} scenarios x {len(seeds)} seeds")
        for name in sorted(summaries):
            summary = summaries[name]
            status = "ok" if summary.ok else "FAIL"
            print(
                f"  [{status}] {name}: msgs mean={summary.messages.mean:.1f} "
                f"words mean={summary.words.mean:.1f} latency mean={summary.latency.mean:.1f}"
            )
    for result in failures:
        reason = result.error or "; ".join(result.violations) or "incomplete"
        print(f"  FAILED {result.scenario} seed={result.seed}: {reason}", file=sys.stderr)

    if collected is not None:
        args.output.write_text(results_to_json(collected) + "\n")
        print(f"wrote {len(collected)} run records to {args.output}")

    exit_code = 1 if failures else 0
    if args.check_baseline is not None:
        regressions = check_baseline(summaries, args.check_baseline, args.tolerance)
        for regression in regressions:
            print(f"  REGRESSION {regression}", file=sys.stderr)
        if args.diff_output is not None:
            payload = {
                "baseline": str(args.check_baseline),
                "regressions": regressions,
                "failures": [result.to_dict() for result in failures],
                "measured": summaries_to_payload(summaries),
            }
            args.diff_output.write_text(json.dumps(payload, sort_keys=True, indent=2) + "\n")
            print(f"wrote baseline diff to {args.diff_output}")
        if regressions:
            exit_code = 1
        elif not args.quiet:
            print(f"baseline {args.check_baseline}: no regressions")
    if args.write_baseline is not None:
        write_baseline(args.write_baseline, summaries)
        print(f"wrote baseline for {len(summaries)} scenarios to {args.write_baseline}")
    return exit_code


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.list or args.command is None:
        return _command_list()
    if args.command == "run":
        return _command_run(args)
    parser.error(f"unknown command {args.command!r}")
    return 2  # pragma: no cover - parser.error raises
