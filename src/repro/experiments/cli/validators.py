"""Shared argument validators for every ``repro.experiments`` subcommand.

One definition each for the numeric shapes the CLI accepts — worker
counts, retry budgets, timeouts, seed lists — applied uniformly across
``run``, ``analyze``, ``fuzz`` (``--budget`` and ``--max-retries``
included) and friends, so each flag rejects bad input with the same
message everywhere.
"""

from __future__ import annotations

import argparse
from typing import List

from ..runner import sweep_seeds


def positive_int(raw: str) -> int:
    """argparse type: a strictly positive integer (worker counts, budgets)."""
    try:
        value = int(raw)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected a positive integer, got {raw!r}") from None
    if value < 1:
        raise argparse.ArgumentTypeError(f"expected a positive integer, got {value}")
    return value


def non_negative_int(raw: str) -> int:
    """argparse type: zero or a positive integer (retry budgets)."""
    try:
        value = int(raw)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected a non-negative integer, got {raw!r}") from None
    if value < 0:
        raise argparse.ArgumentTypeError(f"expected a non-negative integer, got {value}")
    return value


def positive_float(raw: str) -> float:
    """argparse type: a strictly positive number (timeouts)."""
    try:
        value = float(raw)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected a positive number, got {raw!r}") from None
    if value <= 0:
        raise argparse.ArgumentTypeError(f"expected a positive number, got {value}")
    return value


def parse_seeds(raw: str) -> List[int]:
    """Parse ``--seeds``: a positive count, or a comma list of distinct ints."""
    if "," in raw:
        tokens = [token.strip() for token in raw.split(",") if token.strip()]
        if not tokens:
            raise ValueError(f"--seeds list {raw!r} contains no seeds")
        try:
            seeds = [int(token) for token in tokens]
        except ValueError:
            raise ValueError(f"--seeds list {raw!r} must contain only integers") from None
        duplicates = sorted({seed for seed in seeds if seeds.count(seed) > 1})
        if duplicates:
            raise ValueError(
                f"--seeds list {raw!r} repeats {duplicates}: every (scenario, seed) pair is "
                "deterministic, so a repeated seed would just sweep the same runs twice"
            )
        return seeds
    try:
        count = int(raw)
    except ValueError:
        raise ValueError(f"--seeds expects a count or a comma list of integers, got {raw!r}") from None
    if count < 1:
        raise ValueError(f"--seeds count must be positive, got {count}")
    return list(sweep_seeds(count))
