"""The ``compare`` command: diff a store against a reference as a job."""

from __future__ import annotations

import argparse
import pathlib
import sys

from ...jobs import CompareJob, ExecutionSession
from ...jobs.status import EXIT_FAILURE, EXIT_OK, STATUS_NO_SOLUTION
from ...store.store import StoreFormatError
from .common import fail, fail_empty


def add_parser(subparsers) -> None:
    compare = subparsers.add_parser(
        "compare", help="diff a store against another store or a JSON baseline"
    )
    compare.add_argument("--store", type=pathlib.Path, required=True, help="run store to measure")
    compare.add_argument(
        "--against",
        type=pathlib.Path,
        required=True,
        help="reference: another run store (SQLite) or a baseline JSON file",
    )
    compare.add_argument("--scenario", nargs="+", default=None, help="restrict both sides to these scenarios")
    compare.add_argument("--tolerance", type=float, default=0.2, help="relative complexity tolerance")
    compare.add_argument(
        "--any-code", action="store_true", help="include records from other code fingerprints"
    )


def command_compare(args: argparse.Namespace) -> int:
    if not args.store.exists():
        return fail(f"store {args.store} does not exist")
    if not args.against.exists():
        return fail(f"reference {args.against} does not exist")
    job = CompareJob(
        reference=str(args.against),
        scenarios=tuple(args.scenario) if args.scenario else (),
        tolerance=args.tolerance,
        any_code=args.any_code,
    )
    try:
        with ExecutionSession(store_path=args.store) as session:
            outcome = session.submit(job)
    except (ValueError, StoreFormatError) as exc:
        return fail(str(exc))
    if outcome.status == STATUS_NO_SOLUTION:
        return fail_empty(outcome.message)
    for regression in outcome.regressions:
        print(f"  REGRESSION {regression}", file=sys.stderr)
    if outcome.regressions:
        print(f"{len(outcome.regressions)} regressions against {args.against}", file=sys.stderr)
        return EXIT_FAILURE
    print(f"{args.store} vs {args.against}: no regressions")
    return EXIT_OK
