"""The ``stats`` command: render a telemetry snapshot.

Two sources, one renderer.  Without ``--store`` the command renders the
*live* process-local registry (:data:`repro.obs.registry.METRICS`) — useful
when embedding the CLI in a larger process or driving it from tests.  With
``--store DB`` it loads a persisted ``telemetry`` snapshot (the executor
writes one per successful job) and renders the registry state captured at
the end of that job, plus the job-attributable counter deltas and the
supervision stats that rode along.

Output modes mirror the rest of the CLI: human text (default),
``--markdown`` table, ``--json`` for machine consumers (`jq`-friendly: the
registry always lives under the top-level ``registry`` key), and
``--prometheus FILE`` for a node-exporter-style textfile export.
"""

from __future__ import annotations

import argparse
import datetime
import json
import pathlib

from ...jobs.status import EXIT_OK
from ...obs.registry import METRICS, render_markdown, render_prometheus, render_text
from ...store.store import StoreFormatError
from .common import fail, fail_empty


def add_parser(subparsers) -> None:
    stats = subparsers.add_parser(
        "stats",
        help="render a telemetry snapshot (live registry or persisted from a store)",
        description="Render dispatch/store/supervision counters and phase timings. "
        "Without --store: the live in-process metrics registry. With --store: the "
        "latest telemetry snapshot a job persisted there (or --snapshot ID). "
        "Telemetry is descriptive only; this command never changes anything.",
    )
    stats.add_argument(
        "--store",
        type=pathlib.Path,
        default=None,
        help="run store holding persisted telemetry snapshots (default: live registry)",
    )
    stats.add_argument(
        "--label",
        default=None,
        metavar="JOB",
        help="with --store: restrict to snapshots persisted by this job kind "
        "(sweep/analyze/fuzz)",
    )
    stats.add_argument(
        "--snapshot",
        type=int,
        default=None,
        metavar="ID",
        help="with --store: render this snapshot id instead of the latest",
    )
    stats.add_argument("--json", action="store_true", help="print the snapshot as JSON")
    stats.add_argument("--markdown", action="store_true", help="print the snapshot as a markdown table")
    stats.add_argument(
        "--prometheus",
        type=pathlib.Path,
        default=None,
        metavar="FILE",
        help="also write the snapshot in Prometheus textfile-exposition format to FILE",
    )


def _load_persisted(args: argparse.Namespace):
    """Load the requested :class:`TelemetrySnapshot`, or an exit code on failure."""
    from ...jobs import open_run_store

    if not args.store.exists():
        return fail(f"store {args.store} does not exist")
    try:
        with open_run_store(args.store) as store:
            record = store.get_telemetry(snapshot_id=args.snapshot, label=args.label)
    except StoreFormatError as exc:
        return fail(str(exc))
    if record is None:
        wanted = f"snapshot {args.snapshot}" if args.snapshot is not None else "telemetry snapshots"
        scope = f" for job {args.label!r}" if args.label else ""
        return fail_empty(f"store {args.store} holds no {wanted}{scope}")
    return record


def command_stats(args: argparse.Namespace) -> int:
    if args.snapshot is not None and args.store is None:
        return fail("--snapshot only makes sense with --store")
    if args.label is not None and args.store is None:
        return fail("--label only makes sense with --store")

    if args.store is not None:
        record = _load_persisted(args)
        if isinstance(record, int):  # an exit code from fail()/fail_empty()
            return record
        payload = dict(record.snapshot)
        payload.setdefault("registry", {})
        payload["source"] = "store"
        payload["store_path"] = str(args.store)
        payload["snapshot_id"] = record.snapshot_id
        payload["label"] = record.label
        payload["created"] = record.created
        registry_snapshot = payload["registry"]
        title = f"telemetry snapshot {record.snapshot_id} ({record.label})"
    else:
        registry_snapshot = METRICS.snapshot()
        payload = {"source": "live", "registry": registry_snapshot}
        title = "telemetry (live registry)"

    if args.json:
        print(json.dumps(payload, sort_keys=True, indent=2))
    elif args.markdown:
        print(render_markdown(registry_snapshot))
    else:
        if args.store is not None:
            created = datetime.datetime.fromtimestamp(
                record.created, tz=datetime.timezone.utc
            ).isoformat(timespec="seconds")
            status = payload.get("status")
            print(f"{title}: status={status} created={created}")
        print(render_text(registry_snapshot, title=title if args.store is None else "registry"))
        supervision = payload.get("supervision")
        if isinstance(supervision, dict) and supervision:
            pairs = ", ".join(f"{key}={value}" for key, value in sorted(supervision.items()))
            print(f"  supervision: {pairs}")
    if args.prometheus is not None:
        args.prometheus.write_text(render_prometheus(registry_snapshot))
        print(f"wrote Prometheus textfile export to {args.prometheus}")
    return EXIT_OK
