"""The ``run`` command: build a :class:`SweepJob`, submit it, render.

All execution policy lives behind :meth:`ExecutionSession.submit` — this
module only parses arguments into a job spec, runs it through a session,
and renders the typed outcome (including the baseline gate, which is a
CLI-level concern layered on the sweep summaries).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import List, Optional, Tuple

from ...jobs import ExecutionSession, SweepJob, select_scenarios, specs_to_payloads
from ...jobs.status import EXIT_FAILURE, exit_code_for, summary_status
from ...store.store import StoreFormatError
from ..aggregate import check_baseline, results_to_json, summaries_to_payload, write_baseline
from ..runner import DEFAULT_SEED
from ..scenario import ScenarioSpec
from .common import (
    add_observability_arguments,
    add_parallelism_arguments,
    add_resilience_arguments,
    add_slice_arguments,
    fail,
)
from .validators import parse_seeds, positive_float


def add_parser(subparsers) -> None:
    run = subparsers.add_parser("run", help="execute a sweep")
    add_slice_arguments(run)
    run.add_argument(
        "--seeds",
        default=None,
        help=f"either a count (seeds {DEFAULT_SEED}, {DEFAULT_SEED + 1}, ...) or a comma list "
        "(default: 1 seed; with --spec: the seed recorded in the file)",
    )
    run.add_argument(
        "--spec",
        type=pathlib.Path,
        default=None,
        metavar="FILE",
        help="replay a single scenario from JSON — a fuzz counterexample file or a bare "
        "spec payload (as in --list --json); overrides any matrix slice selection",
    )
    add_parallelism_arguments(run)
    run.add_argument(
        "--timeout", type=positive_float, default=None, help="per-run wall-clock timeout in seconds"
    )
    add_resilience_arguments(run)
    add_observability_arguments(run)
    run.add_argument(
        "--profile",
        type=pathlib.Path,
        default=None,
        metavar="DIR",
        help="cProfile every run in DIR (one .pstats file per worker process), "
        "then merge them into DIR/merged.pstats and print the hottest functions",
    )
    run.add_argument(
        "--store",
        type=pathlib.Path,
        default=None,
        help="persistent run store (SQLite): serve cache hits, execute+persist misses",
    )
    run.add_argument(
        "--rerun",
        action="store_true",
        help="with --store: recompute every requested run and refresh the store",
    )
    run.add_argument(
        "--require-cached",
        action="store_true",
        help="with --store: exit non-zero unless every run was served from the store "
        "(CI uses this to prove a warm sweep executes nothing)",
    )
    run.add_argument("--output", type=pathlib.Path, default=None, help="write raw RunResult records as JSON")
    run.add_argument("--write-baseline", type=pathlib.Path, default=None, help="store the sweep summary")
    run.add_argument("--check-baseline", type=pathlib.Path, default=None, help="diff against a stored summary")
    run.add_argument(
        "--diff-output",
        type=pathlib.Path,
        default=None,
        help="write the baseline diff (regressions + measured summary) as JSON, for CI artifacts",
    )
    run.add_argument("--tolerance", type=float, default=0.2, help="relative complexity tolerance for the diff")
    run.add_argument("--quiet", action="store_true", help="only print failures")


def load_spec_file(
    path: pathlib.Path, seeds_arg: Optional[str]
) -> Tuple[List[ScenarioSpec], List[int]]:
    """Load ``run --spec FILE``: a counterexample record or a bare spec payload.

    Returns ``(scenarios, seeds)``.  The file's recorded seed is the default
    seed list, so replaying a fuzz counterexample reproduces the exact run;
    an explicit ``--seeds`` still wins.
    """
    from ...store.fingerprint import spec_from_payload

    try:
        payload = json.loads(path.read_text())
    except OSError as exc:
        raise ValueError(f"cannot read spec file {path}: {exc}") from None
    except json.JSONDecodeError as exc:
        raise ValueError(f"spec file {path} is not valid JSON: {exc}") from None
    if not isinstance(payload, dict):
        raise ValueError(f"spec file {path} must contain a JSON object")
    record = payload.get("spec", payload)
    try:
        spec = spec_from_payload(record)
    except (KeyError, TypeError, ValueError) as exc:
        raise ValueError(f"spec file {path} has missing or invalid spec fields: {exc}") from None
    if seeds_arg is not None:
        seeds = parse_seeds(seeds_arg)
    elif "seed" in payload:
        seeds = [int(payload["seed"])]
    else:
        seeds = [DEFAULT_SEED]
    return [spec], seeds


def _maybe_profiled(profile_dir: Optional[pathlib.Path]):
    """``worker_profiling`` around the session when ``--profile`` is given."""
    import contextlib

    from ...obs.profiling import worker_profiling

    if profile_dir is None:
        return contextlib.nullcontext()
    return worker_profiling(profile_dir)


def _render_profile(profile_dir: pathlib.Path) -> None:
    """Merge the per-worker ``.pstats`` dumps and print the hottest functions."""
    from ...obs.profiling import merge_profiles, top_functions

    stats = merge_profiles(profile_dir, output=profile_dir / "merged.pstats")
    if stats is None:
        print(f"profile {profile_dir}: no worker profiles recorded (all runs cached?)")
        return
    print(f"profile {profile_dir}: merged worker profiles -> {profile_dir / 'merged.pstats'}")
    for line in top_functions(stats, limit=10):
        print(f"  {line}")


def command_run(args: argparse.Namespace) -> int:
    try:
        if args.spec is not None:
            scenarios, seeds = load_spec_file(args.spec, args.seeds)
        else:
            scenarios = select_scenarios(args.scenario, args.protocol, args.adversary, args.delay)
            seeds = parse_seeds(args.seeds if args.seeds is not None else "1")
    except (KeyError, ValueError) as exc:
        return fail(exc.args[0] if exc.args else str(exc))
    if not scenarios:
        return fail("no scenarios selected")
    if args.diff_output is not None and args.check_baseline is None:
        return fail("--diff-output requires --check-baseline")
    if (args.rerun or args.require_cached) and args.store is None:
        return fail("--rerun/--require-cached only make sense with --store")
    if args.rerun and args.require_cached:
        return fail("--rerun forces execution, which contradicts --require-cached")

    job = SweepJob(
        scenario_payloads=specs_to_payloads(scenarios),
        seeds=tuple(seeds),
        rerun=args.rerun,
        collect_records=args.output is not None,
    )
    try:
        with _maybe_profiled(args.profile):
            with ExecutionSession(
                parallel=args.parallel,
                batch_size=args.batch_size,
                timeout=args.timeout,
                store_path=args.store,
                max_retries=args.max_retries,
                fail_fast=args.fail_fast,
                trace_path=args.trace,
            ) as session:
                outcome = session.submit(job)
    except StoreFormatError as exc:
        return fail(str(exc))
    if args.profile is not None:
        _render_profile(args.profile)

    summaries = outcome.summaries
    if not args.quiet:
        print(f"{outcome.run_count} runs over {len(scenarios)} scenarios x {len(seeds)} seeds")
        for name in sorted(summaries):
            summary = summaries[name]
            status = summary_status(summary.ok)
            print(
                f"  [{status}] {name}: msgs mean={summary.messages.mean:.1f} "
                f"words mean={summary.words.mean:.1f} latency mean={summary.latency.mean:.1f}"
            )
    for result in outcome.failures:
        reason = result.error or "; ".join(result.violations) or "incomplete"
        print(f"  FAILED {result.scenario} seed={result.seed}: {reason}", file=sys.stderr)

    if outcome.records is not None:
        args.output.write_text(results_to_json(outcome.records) + "\n")
        print(f"wrote {len(outcome.records)} run records to {args.output}")

    exit_code = exit_code_for(outcome.status)
    if args.store is not None:
        stats = outcome.store_stats
        executed = outcome.run_count - stats["hits"]
        if args.rerun:
            print(f"store {args.store}: {executed} runs recomputed (--rerun), {stats['stored']} stored")
        else:
            print(f"store {args.store}: {stats['hits']} cached, {executed} executed, {stats['stored']} stored")
        if args.require_cached and (stats["misses"] or stats["hits"] < outcome.run_count):
            print(
                f"  REQUIRE-CACHED failed: {stats['misses']} of {outcome.run_count} runs were not in the store",
                file=sys.stderr,
            )
            exit_code = EXIT_FAILURE
    if args.check_baseline is not None:
        regressions = check_baseline(summaries, args.check_baseline, args.tolerance)
        for regression in regressions:
            print(f"  REGRESSION {regression}", file=sys.stderr)
        if args.diff_output is not None:
            payload = {
                "baseline": str(args.check_baseline),
                "regressions": regressions,
                "failures": [result.to_dict() for result in outcome.failures],
                "measured": summaries_to_payload(summaries),
            }
            args.diff_output.write_text(json.dumps(payload, sort_keys=True, indent=2) + "\n")
            print(f"wrote baseline diff to {args.diff_output}")
        if regressions:
            exit_code = EXIT_FAILURE
        elif not args.quiet:
            print(f"baseline {args.check_baseline}: no regressions")
    if args.write_baseline is not None:
        write_baseline(args.write_baseline, summaries)
        print(f"wrote baseline for {len(summaries)} scenarios to {args.write_baseline}")
    if args.stats:
        from ...obs.registry import METRICS, render_text

        print(render_text(METRICS.snapshot(), title="telemetry"))
    return exit_code
