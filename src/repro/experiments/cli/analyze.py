"""The ``analyze`` command: classify validity families, cross-check runs."""

from __future__ import annotations

import argparse
import pathlib
import sys

from ...jobs import AnalyzeJob, ExecutionSession, JobSpecError
from ...jobs.status import EXIT_FAILURE, EXIT_OK
from ...store.store import StoreFormatError
from .common import (
    DEFAULT_MATRIX_BASELINE,
    DEFAULT_VERDICT_BASELINE,
    add_observability_arguments,
    add_parallelism_arguments,
    add_resilience_arguments,
    fail,
)


def add_parser(subparsers) -> None:
    analyze = subparsers.add_parser(
        "analyze",
        help="classify validity-property families and cross-check the scenario matrix",
    )
    analyze.add_argument(
        "--family",
        nargs="+",
        default=None,
        choices=["named", "enumerated", "sampled"],
        help="restrict the classified property families (default: all, plus the "
        "properties the scenario matrix targets)",
    )
    add_parallelism_arguments(analyze)
    add_resilience_arguments(analyze)
    add_observability_arguments(analyze)
    analyze.add_argument(
        "--store",
        type=pathlib.Path,
        default=None,
        help="persistent run store (SQLite): serve cached verdicts, classify+persist misses",
    )
    analyze.add_argument(
        "--rerun", action="store_true", help="with --store: reclassify everything and refresh the store"
    )
    analyze.add_argument(
        "--require-cached",
        action="store_true",
        help="with --store: exit non-zero unless every verdict was served from the store",
    )
    analyze.add_argument(
        "--markdown", type=pathlib.Path, default=None, help="write the verdict table as markdown"
    )
    analyze.add_argument(
        "--json-output",
        type=pathlib.Path,
        default=None,
        help="write the verdicts as JSON (same shape as the verdict baseline)",
    )
    analyze.add_argument(
        "--write-baseline", type=pathlib.Path, default=None, help="store the verdicts as a baseline"
    )
    analyze.add_argument(
        "--check-baseline",
        type=pathlib.Path,
        nargs="?",
        const=DEFAULT_VERDICT_BASELINE,
        default=None,
        help=f"diff the verdicts against a stored baseline (default: {DEFAULT_VERDICT_BASELINE}); "
        "theory verdicts are exact, so any changed field is a regression",
    )
    analyze.add_argument(
        "--no-cross-check",
        action="store_true",
        help="skip checking the verdicts against the recorded scenario-matrix summaries",
    )
    analyze.add_argument(
        "--cross-check-against",
        type=pathlib.Path,
        default=DEFAULT_MATRIX_BASELINE,
        help="recorded summaries to cross-check: a run store or a baseline JSON "
        f"(default: {DEFAULT_MATRIX_BASELINE})",
    )
    analyze.add_argument("--quiet", action="store_true", help="only print failures")


def command_analyze(args: argparse.Namespace) -> int:
    from ...analysis.pipeline import (
        diff_verdicts,
        load_verdict_baseline,
        render_verdict_markdown,
        render_verdict_table,
        verdicts_to_json,
    )

    if (args.rerun or args.require_cached) and args.store is None:
        return fail("--rerun/--require-cached only make sense with --store")
    if args.rerun and args.require_cached:
        return fail("--rerun forces reclassification, which contradicts --require-cached")

    cross_check = not args.no_cross_check
    job = AnalyzeJob(
        families=tuple(args.family) if args.family else ("named", "enumerated", "sampled"),
        cross_check_reference=str(args.cross_check_against) if cross_check else None,
        rerun=args.rerun,
    )
    try:
        with ExecutionSession(
            parallel=args.parallel,
            batch_size=args.batch_size,
            store_path=args.store,
            max_retries=args.max_retries,
            fail_fast=args.fail_fast,
            trace_path=args.trace,
        ) as session:
            outcome = session.submit(job)
    except JobSpecError as exc:
        return fail(str(exc))
    except StoreFormatError as exc:
        return fail(str(exc))

    verdicts = outcome.verdicts
    counts = outcome.counts
    exit_code = EXIT_OK
    if not args.quiet:
        print(
            f"{counts['total']} validity properties classified "
            f"({outcome.cached} cached, {outcome.classified} classified)"
        )
        print(
            f"  solvable: {counts['solvable']} "
            f"(trivial: {counts['trivial']}, non-trivial via C_S: {counts['solvable_non_trivial']})  "
            f"unsolvable: {counts['unsolvable']}"
        )
    if args.store is not None:
        stats = outcome.store_stats
        if args.rerun and not args.quiet:
            print(
                f"store {args.store}: {outcome.classified} verdicts reclassified (--rerun), "
                f"{stats['verdicts_stored']} stored"
            )
        elif not args.quiet:
            print(
                f"store {args.store}: {outcome.cached} cached, {outcome.classified} "
                f"classified, {stats['verdicts_stored']} stored"
            )
        if args.require_cached and outcome.classified:
            print(
                f"  REQUIRE-CACHED failed: {outcome.classified} of {counts['total']} "
                "verdicts were not in the store",
                file=sys.stderr,
            )
            exit_code = EXIT_FAILURE

    if cross_check:
        if outcome.cross_check_error is not None:
            return fail(outcome.cross_check_error)
        result = outcome.cross_check
        for divergence in result.divergences:
            print(f"  DIVERGENCE {divergence}", file=sys.stderr)
        if result.divergences:
            print(
                f"theory/simulation cross-check: {len(result.divergences)} divergences "
                f"over {result.checked} scenarios",
                file=sys.stderr,
            )
            exit_code = EXIT_FAILURE
        elif not args.quiet:
            print(
                f"cross-check vs {args.cross_check_against}: {result.checked} scenarios "
                f"consistent, {len(result.skipped)} without a property target — 0 divergences"
            )

    if args.markdown is not None:
        args.markdown.write_text(render_verdict_markdown(verdicts) + "\n")
        print(f"wrote markdown verdict table for {len(verdicts)} properties to {args.markdown}")
    if args.json_output is not None:
        args.json_output.write_text(verdicts_to_json(verdicts) + "\n")
        print(f"wrote {len(verdicts)} verdicts to {args.json_output}")
    if args.check_baseline is not None:
        try:
            baseline = load_verdict_baseline(args.check_baseline)
        except (OSError, ValueError) as exc:
            return fail(str(exc))
        regressions = diff_verdicts(verdicts, baseline)
        for regression in regressions:
            print(f"  REGRESSION {regression}", file=sys.stderr)
        if regressions:
            exit_code = EXIT_FAILURE
        elif not args.quiet:
            print(f"verdict baseline {args.check_baseline}: no divergences")
    if args.write_baseline is not None:
        args.write_baseline.write_text(verdicts_to_json(verdicts) + "\n")
        print(f"wrote verdict baseline for {len(verdicts)} properties to {args.write_baseline}")
    if not args.quiet and args.markdown is None and exit_code == EXIT_OK and len(verdicts) <= 16:
        print(render_verdict_table(verdicts))
    if args.stats:
        from ...obs.registry import METRICS, render_text

        print(render_text(METRICS.snapshot(), title="telemetry"))
    return exit_code
