"""``--list``: enumerate the registered scenario matrix (text or JSON)."""

from __future__ import annotations

import json
from typing import Any, Dict

from ..scenario import ADVERSARIES, DELAY_MODELS, PROTOCOLS, ScenarioSpec, default_matrix


def _scenario_record(spec: ScenarioSpec, fingerprint: str) -> Dict[str, Any]:
    from ...store.fingerprint import spec_payload

    record = spec_payload(spec)
    record["params"] = dict(record["params"]) if record["params"] else {}
    record["fingerprint"] = fingerprint
    return record


def command_list(as_json: bool) -> int:
    matrix = default_matrix()
    if as_json:
        from ...store.fingerprint import FINGERPRINT_VERSION, code_fingerprint, scenario_fingerprint

        payload = {
            "fingerprint_version": FINGERPRINT_VERSION,
            "code_fingerprint": code_fingerprint(),
            "scenarios": [_scenario_record(spec, scenario_fingerprint(spec)) for spec in matrix],
        }
        print(json.dumps(payload, sort_keys=True, indent=2))
        return 0
    print(f"{len(matrix)} registered scenarios (protocol+adversary+delay):")
    for spec in matrix:
        print(f"  {spec.describe()}")
    print(
        f"registries: {len(PROTOCOLS)} protocols, {len(ADVERSARIES)} adversaries, "
        f"{len(DELAY_MODELS)} delay models"
    )
    return 0
