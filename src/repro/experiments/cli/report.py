"""The ``report`` command: aggregate a stored slice into summary tables."""

from __future__ import annotations

import argparse
import pathlib

from ...jobs import ExecutionSession, ReportJob
from ...jobs.status import EXIT_OK, STATUS_NO_SOLUTION
from ...store.store import StoreFormatError
from .common import add_slice_arguments, fail, fail_empty


def add_parser(subparsers) -> None:
    report = subparsers.add_parser("report", help="aggregate a stored slice into summary tables")
    report.add_argument("--store", type=pathlib.Path, required=True, help="run store to read")
    add_slice_arguments(report)
    report.add_argument(
        "--any-code",
        action="store_true",
        help="include records stored under other code fingerprints (default: current code only)",
    )
    report.add_argument("--markdown", type=pathlib.Path, default=None, help="write the table as markdown")
    report.add_argument("--json-output", type=pathlib.Path, default=None, help="write the summaries as JSON")
    report.add_argument("--quiet", action="store_true", help="do not print the table to stdout")


def command_report(args: argparse.Namespace) -> int:
    import json

    from ...store import render_markdown, render_table
    from ..aggregate import summaries_to_payload

    if not args.store.exists():
        return fail(f"store {args.store} does not exist")
    job = ReportJob(
        scenarios=tuple(args.scenario) if args.scenario else (),
        protocols=tuple(args.protocol) if args.protocol else (),
        adversaries=tuple(args.adversary) if args.adversary else (),
        delays=tuple(args.delay) if args.delay else (),
        any_code=args.any_code,
    )
    try:
        with ExecutionSession(store_path=args.store) as session:
            outcome = session.submit(job)
    except StoreFormatError as exc:
        return fail(str(exc))
    if outcome.status == STATUS_NO_SOLUTION:
        return fail_empty(outcome.message)
    summaries = outcome.summaries
    if not args.quiet:
        print(render_table(summaries))
        if outcome.stale and not args.any_code:
            print(f"(+{outcome.stale} records under older code fingerprints; --any-code includes them)")
        if outcome.poison:
            print(f"poison: {len(outcome.poison)} quarantined task(s) recorded in this store")
            for entry in outcome.poison:
                print(
                    f"  {entry.scenario} seed={entry.seed}: "
                    f"{entry.reason} ({entry.attempts} attempts)"
                )
        if outcome.supervision:
            pairs = ", ".join(f"{key}={value}" for key, value in sorted(outcome.supervision.items()))
            print(f"supervision (last sweep): {pairs}")
    if args.markdown is not None:
        args.markdown.write_text(render_markdown(summaries) + "\n")
        print(f"wrote markdown report for {len(summaries)} scenarios to {args.markdown}")
    if args.json_output is not None:
        payload = summaries_to_payload(summaries)
        payload["poison"] = [
            {
                "scenario": entry.scenario,
                "seed": entry.seed,
                "attempts": entry.attempts,
                "reason": entry.reason,
            }
            for entry in outcome.poison
        ]
        payload["supervision"] = outcome.supervision
        args.json_output.write_text(json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n")
        print(f"wrote JSON summaries for {len(summaries)} scenarios to {args.json_output}")
    return EXIT_OK
