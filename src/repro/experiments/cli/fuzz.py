"""The ``fuzz`` command: one coverage-guided mutation campaign as a job."""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from ...jobs import (
    DEFAULT_FUZZ_BASES,
    EVENT_LOG,
    ExecutionSession,
    FuzzJob,
    JobSpecError,
    resolve_fuzz_bases,
    specs_to_payloads,
)
from ...jobs.status import EXIT_FAILURE, exit_code_for
from ...store.store import StoreFormatError
from ..runner import DEFAULT_SEED
from .common import add_observability_arguments, add_parallelism_arguments, add_resilience_arguments, fail
from .validators import positive_float, positive_int


def add_parser(subparsers) -> None:
    fuzz = subparsers.add_parser(
        "fuzz",
        help="coverage-guided adversarial fuzzing over scenario space",
        description="Mutate the base scenarios under a seeded walk, score executions by "
        "coverage novelty, persist the corpus in the run store, and shrink every "
        "violating input to a minimal replayable counterexample (run --spec replays it). "
        "Deterministic: same seed, budget and bases produce the same campaign, serial "
        "or parallel.",
    )
    fuzz.add_argument(
        "--budget", type=positive_int, default=200, help="candidates to process (default: 200)"
    )
    fuzz.add_argument(
        "--seed",
        type=int,
        default=DEFAULT_SEED,
        help=f"fuzz seed driving the mutation walk (default: {DEFAULT_SEED})",
    )
    fuzz.add_argument(
        "--base",
        nargs="+",
        default=None,
        metavar="NAME",
        help="base scenarios to mutate from: default-matrix names or protocol+adversary+delay "
        f"combinations, extension keys included (default: {' '.join(DEFAULT_FUZZ_BASES)})",
    )
    fuzz.add_argument(
        "--store",
        type=pathlib.Path,
        default=None,
        help="persistent run store: results + corpus are content-addressed there, so a "
        "warm re-fuzz of the same campaign executes zero runs",
    )
    add_parallelism_arguments(fuzz)
    fuzz.add_argument(
        "--timeout", type=positive_float, default=None, help="per-run wall-clock timeout in seconds"
    )
    add_resilience_arguments(fuzz)
    add_observability_arguments(fuzz)
    fuzz.add_argument(
        "--counterexamples",
        type=pathlib.Path,
        default=None,
        metavar="DIR",
        help="write each shrunk counterexample as a replayable JSON file in DIR",
    )
    fuzz.add_argument(
        "--json-output", type=pathlib.Path, default=None, help="write the full campaign report as JSON"
    )
    fuzz.add_argument(
        "--require-cached",
        action="store_true",
        help="with --store: exit non-zero unless the whole campaign was served from the "
        "store (CI uses this to prove a warm re-fuzz executes nothing)",
    )
    fuzz.add_argument("--no-shrink", action="store_true", help="report violations unshrunk")
    fuzz.add_argument("--quiet", action="store_true", help="suppress per-round progress lines")


def command_fuzz(args: argparse.Namespace) -> int:
    try:
        bases = resolve_fuzz_bases(args.base if args.base else DEFAULT_FUZZ_BASES)
    except (KeyError, JobSpecError) as exc:
        return fail(exc.args[0] if exc.args else str(exc))
    if args.require_cached and args.store is None:
        return fail("--require-cached only makes sense with --store")

    job = FuzzJob(
        base_payloads=specs_to_payloads(bases),
        budget=args.budget,
        fuzz_seed=args.seed,
        shrink=not args.no_shrink,
    )
    on_event = None
    if not args.quiet:

        def on_event(event):
            if event.kind == EVENT_LOG:
                print(event.message)

    try:
        with ExecutionSession(
            parallel=args.parallel,
            batch_size=args.batch_size,
            timeout=args.timeout,
            store_path=args.store,
            max_retries=args.max_retries,
            fail_fast=args.fail_fast,
            trace_path=args.trace,
        ) as session:
            outcome = session.submit(job, on_event=on_event)
    except StoreFormatError as exc:
        return fail(str(exc))
    except ValueError as exc:
        return fail(str(exc))
    report = outcome.report

    print(
        f"fuzz seed={report.fuzz_seed}: {report.candidates} candidates "
        f"({report.executed} executed, {report.cached} cached, "
        f"{report.skipped_invalid} invalid skipped)"
    )
    print(
        f"  coverage: {report.coverage_sites} sites, {report.novel} novel inputs, "
        f"pool {report.pool_size}"
    )
    print(
        f"  violations: {report.violating} inputs, "
        f"{len(report.counterexamples)} distinct counterexample(s)"
    )
    for counterexample in report.counterexamples:
        print(
            f"  counterexample {counterexample['scenario']} seed={counterexample['seed']} "
            f"({len(counterexample['mutations'])} mutation(s) from {counterexample['base']}): "
            + "; ".join(counterexample["violations"])
        )

    exit_code = exit_code_for(outcome.status)
    if args.store is not None:
        stats = outcome.store_stats
        print(
            f"store {args.store}: {report.cached} cached, {report.executed} executed, "
            f"{stats['stored']} runs + {stats['corpus_stored']} corpus entries stored"
        )
        if args.require_cached and report.executed:
            print(
                f"  REQUIRE-CACHED failed: {report.executed} of {report.candidates} "
                "candidates were not in the store",
                file=sys.stderr,
            )
            exit_code = EXIT_FAILURE
    if args.counterexamples is not None:
        args.counterexamples.mkdir(parents=True, exist_ok=True)
        for counterexample in report.counterexamples:
            path = args.counterexamples / f"counterexample-{counterexample['entry_fp'][:16]}.json"
            path.write_text(json.dumps(counterexample, sort_keys=True, indent=2) + "\n")
        print(
            f"wrote {len(report.counterexamples)} counterexample(s) to {args.counterexamples} "
            "(replay with: run --spec FILE)"
        )
    if args.json_output is not None:
        args.json_output.write_text(json.dumps(report.to_dict(), sort_keys=True, indent=2) + "\n")
        print(f"wrote campaign report to {args.json_output}")
    if args.stats:
        from ...obs.registry import METRICS, render_text

        print(render_text(METRICS.snapshot(), title="telemetry"))
    return exit_code
