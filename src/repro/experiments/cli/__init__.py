"""Command-line interface for scenario sweeps: ``python -m repro.experiments``.

Examples::

    # Enumerate the registered scenario matrix (add --json for tooling)
    python -m repro.experiments --list
    python -m repro.experiments --list --json

    # Parallel smoke sweep over a slice of the matrix, 2 seeds per scenario
    python -m repro.experiments run --protocol binary universal-authenticated \
        --adversary silent crash --seeds 2 --parallel 4

    # Incremental sweep against a persistent run store: cache hits are
    # served from runs.db, misses are executed and persisted, so an
    # interrupted sweep resumes for free and a re-sweep executes nothing.
    python -m repro.experiments run --store runs.db --seeds 3 --parallel 4
    python -m repro.experiments run --store runs.db --seeds 3 --require-cached
    python -m repro.experiments run --store runs.db --seeds 3 --rerun

    # Aggregate and diff stored slices without re-running anything
    python -m repro.experiments report --store runs.db --protocol binary
    python -m repro.experiments compare --store runs.db \
        --against benchmarks/baselines/scenario_matrix.json

    # Full matrix, write (or check) a regression baseline
    python -m repro.experiments run --seeds 3 --write-baseline baseline.json
    python -m repro.experiments run --seeds 3 --check-baseline baseline.json

    # Classify the validity-property families (the paper's theory side) and
    # cross-check the verdicts against the recorded scenario matrix; verdicts
    # are cached in the same run store, so a re-analysis classifies nothing.
    python -m repro.experiments analyze --parallel 4 --store runs.db
    python -m repro.experiments analyze --check-baseline

    # Coverage-guided adversarial fuzzing over scenario space: mutate the
    # base scenarios, persist the corpus in the run store (a warm re-fuzz
    # executes nothing), shrink violations to minimal replayable specs.
    python -m repro.experiments fuzz --budget 200 --seed 2023 --store runs.db \
        --counterexamples out/counterexamples
    python -m repro.experiments run --spec out/counterexamples/counterexample-XYZ.json

    # Telemetry is descriptive, never load-bearing: traced runs are
    # byte-identical to untraced ones.  Render the live metrics registry or
    # the snapshot a job persisted into the store.
    python -m repro.experiments run --store runs.db --trace trace.jsonl --stats
    python -m repro.experiments stats --store runs.db --json

The process exits non-zero when any run errors out, violates a correctness
property, or regresses against the baseline — which makes the command usable
directly as a CI gate.  Exit codes: 0 success, 1 failures/regressions,
2 configuration errors, 3 empty slice (``report``/``compare`` found no
matching records), 130 interrupted (Ctrl-C; the pool is torn down and
completed records are flushed before exiting).

Each subcommand lives in its own module (``run``, ``report``, ``analyze``,
``fuzz``, ``compare``) and does exactly three things: parse arguments,
build a job spec (:mod:`repro.jobs.spec`), and render the outcome of
submitting it through an :class:`~repro.jobs.session.ExecutionSession`.
Resource ownership — worker pools, store connections — lives entirely in
the session layer.
"""

from __future__ import annotations

import argparse
from typing import Optional, Sequence

import sys

from ...jobs.spec import DEFAULT_FUZZ_BASES
from ...jobs.status import EXIT_EMPTY_SLICE, EXIT_INTERRUPTED
from . import analyze, compare, fuzz, report, run, stats
from .common import DEFAULT_MATRIX_BASELINE, DEFAULT_VERDICT_BASELINE
from .listing import command_list
from .validators import parse_seeds

# Compatibility aliases: tests and older callers import the monolith names.
_parse_seeds = parse_seeds

__all__ = [
    "main",
    "parse_seeds",
    "DEFAULT_FUZZ_BASES",
    "DEFAULT_MATRIX_BASELINE",
    "DEFAULT_VERDICT_BASELINE",
    "EXIT_EMPTY_SLICE",
    "EXIT_INTERRUPTED",
]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Sweep the protocol x adversary x delay scenario matrix.",
    )
    parser.add_argument("--list", action="store_true", help="enumerate registered scenarios and exit")
    parser.add_argument(
        "--json",
        action="store_true",
        help="with --list: emit the matrix as machine-readable JSON (one record per "
        "scenario with its content fingerprint — the same source of truth the run store keys on)",
    )
    subparsers = parser.add_subparsers(dest="command")
    run.add_parser(subparsers)
    report.add_parser(subparsers)
    analyze.add_parser(subparsers)
    fuzz.add_parser(subparsers)
    compare.add_parser(subparsers)
    stats.add_parser(subparsers)
    return parser


_COMMANDS = {
    "run": run.command_run,
    "report": report.command_report,
    "analyze": analyze.command_analyze,
    "fuzz": fuzz.command_fuzz,
    "compare": compare.command_compare,
    "stats": stats.command_stats,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.list or args.command is None:
        return command_list(args.json)
    command = _COMMANDS.get(args.command)
    if command is not None:
        try:
            return command(args)
        except KeyboardInterrupt:
            # The session's context manager already tore down the pool and
            # flushed completed records on the way out; all that is left is
            # to report the interruption with the conventional SIGINT code.
            print(f"interrupted: {args.command} stopped by SIGINT", file=sys.stderr)
            return EXIT_INTERRUPTED
    parser.error(f"unknown command {args.command!r}")
    return 2  # pragma: no cover - parser.error raises
