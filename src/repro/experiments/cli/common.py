"""Shared CLI plumbing: failure rendering, slice arguments, default paths.

Every command module renders configuration errors and empty slices through
:func:`fail` / :func:`fail_empty`, so the ``error:`` / ``empty slice:``
prefixes and the exit codes (from :mod:`repro.jobs.status`) are defined in
exactly one place.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from ...jobs.status import EXIT_CONFIG, EXIT_EMPTY_SLICE
from ..scenario import ADVERSARIES, DELAY_MODELS, PROTOCOLS

DEFAULT_VERDICT_BASELINE = pathlib.Path("benchmarks/baselines/analysis_verdicts.json")
"""The committed analysis-verdict baseline (``analyze --check-baseline`` default)."""

DEFAULT_MATRIX_BASELINE = pathlib.Path("benchmarks/baselines/scenario_matrix.json")
"""The committed scenario-matrix baseline the cross-check reads by default."""


def fail(message: str) -> int:
    """Render a configuration error; returns :data:`EXIT_CONFIG`."""
    print(f"error: {message}", file=sys.stderr)
    return EXIT_CONFIG


def fail_empty(message: str) -> int:
    """Render an empty report/compare slice; returns :data:`EXIT_EMPTY_SLICE`."""
    print(f"empty slice: {message}", file=sys.stderr)
    return EXIT_EMPTY_SLICE


def add_slice_arguments(parser: argparse.ArgumentParser, with_scenario: bool = True) -> None:
    """The matrix-slice selectors shared by ``run`` and ``report``."""
    if with_scenario:
        parser.add_argument("--scenario", nargs="+", default=None, help="explicit scenario names")
    parser.add_argument("--protocol", nargs="+", default=None, choices=sorted(PROTOCOLS))
    parser.add_argument("--adversary", nargs="+", default=None, choices=sorted(ADVERSARIES))
    parser.add_argument("--delay", nargs="+", default=None, choices=sorted(DELAY_MODELS))


def add_parallelism_arguments(parser: argparse.ArgumentParser) -> None:
    """The pool-shape knobs shared by ``run``, ``analyze`` and ``fuzz``.

    ``--parallel`` sizes the worker pool; ``--batch-size`` sizes the
    microbatch each worker dispatch carries.  Both are pure throughput
    knobs: any combination (including serial) produces byte-identical
    records.
    """
    from .validators import positive_int

    parser.add_argument(
        "--parallel", type=positive_int, default=None, metavar="W", help="worker processes (default: serial)"
    )
    parser.add_argument(
        "--batch-size",
        type=positive_int,
        default=None,
        metavar="B",
        help="tasks per parallel worker dispatch; amortizes dispatch overhead "
        "while keeping results, caching and retries per-task (default: sized "
        "automatically from the sweep and worker counts)",
    )


def add_resilience_arguments(parser: argparse.ArgumentParser) -> None:
    """The fault-tolerance knobs shared by ``run``, ``analyze`` and ``fuzz``.

    Validated at parse time through :func:`.validators.non_negative_int`, so
    a bad retry budget dies with the same argparse error in every command.
    """
    from .validators import non_negative_int

    parser.add_argument(
        "--max-retries",
        type=non_negative_int,
        default=None,
        metavar="N",
        help="retries granted to a task whose worker crashes and to failing store "
        "flushes, before the task is quarantined / the flush error surfaces "
        "(default: the retry policy's built-in budget)",
    )
    parser.add_argument(
        "--fail-fast",
        action="store_true",
        help="stop at the first failed unit of work (first failed run, first "
        "divergent verdict, first violating fuzz batch) instead of completing "
        "the whole matrix",
    )


def add_observability_arguments(parser: argparse.ArgumentParser) -> None:
    """The telemetry knobs shared by ``run``, ``analyze`` and ``fuzz``.

    Telemetry is descriptive, never load-bearing: enabling any of these
    changes no record, baseline or exit code.
    """
    parser.add_argument(
        "--trace",
        type=pathlib.Path,
        default=None,
        metavar="FILE",
        help="write a structured JSONL trace (job/phase spans, per-run events) "
        "to FILE; traced runs produce byte-identical records to untraced ones",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print a metrics snapshot (dispatch/store/supervision counters and "
        "timings) after the job finishes — the same numbers the `stats` "
        "subcommand renders",
    )
