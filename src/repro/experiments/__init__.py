"""Parallel experiment runner and scenario matrix.

This package turns the one-off ``Simulation`` drivers of the early repo into
an experiment subsystem:

* :mod:`repro.experiments.scenario` — :class:`ScenarioSpec` plus registries
  that compose consensus protocols, adversary behaviours and network delay
  models into a named cartesian scenario matrix;
* :mod:`repro.experiments.runner` — :class:`Runner`, which sweeps
  ``scenarios × seeds`` serially or with ``multiprocessing`` fan-out and
  per-run timeouts, producing deterministic :class:`RunResult` records
  (byte-identical between serial and parallel execution for the same pairs);
* :mod:`repro.experiments.aggregate` — per-scenario summary statistics and
  JSON regression baselines;
* :mod:`repro.experiments.cli` — the ``python -m repro.experiments`` entry
  point (``--list [--json]``, ``run`` with optional ``--store``/``--rerun``
  persistence via :mod:`repro.store`, plus the store-backed ``report`` and
  ``compare`` subcommands; baseline write/check).

Seeds: every run is fully determined by its ``(scenario, seed)`` pair.
:data:`DEFAULT_SEED` and :func:`sweep_seeds` are the single seeding path
shared with the benchmark suite, so BENCH numbers reproduce run-to-run.
"""

from .aggregate import (
    Distribution,
    ScenarioSummary,
    StreamingAggregator,
    aggregate,
    check_baseline,
    diff_against_baseline,
    growth_exponent,
    load_baseline,
    results_to_json,
    summaries_to_json,
    summaries_to_payload,
    write_baseline,
)
from .runner import DEFAULT_SEED, RunResult, Runner, canonical_value, execute_run, run_matrix, sweep_seeds
from .scenario import (
    ADVERSARIES,
    DELAY_MODELS,
    EQUIVOCATION_ATTACKS,
    PROTOCOLS,
    ProtocolSetup,
    ScenarioSpec,
    default_matrix,
    find_scenarios,
    large_n_presets,
    make_params,
    make_scenario,
    scenario_matrix,
    scenario_name,
)

__all__ = [
    "ScenarioSpec",
    "ProtocolSetup",
    "PROTOCOLS",
    "ADVERSARIES",
    "DELAY_MODELS",
    "make_scenario",
    "make_params",
    "scenario_matrix",
    "scenario_name",
    "default_matrix",
    "large_n_presets",
    "EQUIVOCATION_ATTACKS",
    "find_scenarios",
    "Runner",
    "RunResult",
    "run_matrix",
    "execute_run",
    "canonical_value",
    "DEFAULT_SEED",
    "sweep_seeds",
    "aggregate",
    "StreamingAggregator",
    "Distribution",
    "ScenarioSummary",
    "write_baseline",
    "load_baseline",
    "check_baseline",
    "diff_against_baseline",
    "summaries_to_json",
    "summaries_to_payload",
    "results_to_json",
    "growth_exponent",
]
