"""Scenario specifications and the protocol × adversary × delay registry.

The paper's claims are quantified over *executions*: a protocol (one of the
consensus stacks in :mod:`repro.consensus`), an adversary behaviour (one of
the fault injectors in :mod:`repro.sim.adversary`) and a network delay model
(:mod:`repro.sim.network`).  A :class:`ScenarioSpec` names one point of that
space as plain, picklable data; the three registries below map the spec's
string keys to builder functions, and :func:`default_matrix` composes every
registered combination into the named cartesian scenario matrix that the
runner sweeps.

Design rules that make sweeps reproducible:

* a spec carries **no live objects** — only strings, numbers and tuples — so
  it crosses process boundaries unchanged and two equal specs always build
  the same execution;
* every source of randomness (delay jitter, key generation, message
  dropping, proposal assignment) is derived from the single per-run ``seed``,
  so ``(scenario, seed)`` fully determines the execution.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, NamedTuple, Optional, Sequence, Tuple

from ..consensus.binary import BinaryConsensus
from ..consensus.quad import Quad
from ..consensus.universal_protocol import universal_process_factory
from ..consensus.vector_authenticated import SignedProposal
from ..core.input_config import InputConfiguration
from ..core.system import SystemConfig
from ..core.universal import UniversalSpec
from ..sim.adversary import (
    QuadSplitBrainLeader,
    crash_factory,
    dropping_factory,
    equivocating_factory,
    silent_factory,
)
from ..sim.network import (
    DelayModel,
    JitteredDelayModel,
    PartitionDelayModel,
    StalledDelayModel,
    SynchronousDelayModel,
)
from ..sim.process import Process
from ..sim.simulation import Simulation


@dataclass(frozen=True)
class ScenarioSpec:
    """One named point of the protocol × adversary × delay scenario space.

    Attributes:
        name: Unique scenario identifier (``protocol+adversary+delay`` by
            convention, see :func:`scenario_name`).
        protocol: Key into :data:`PROTOCOLS`.
        adversary: Key into :data:`ADVERSARIES`.
        delay: Key into :data:`DELAY_MODELS`.
        n: System size.
        t: Fault threshold (the adversary corrupts the last ``t`` indices).
        property_key: Validity property for the Universal-based protocols.
        params: Extra knobs as a sorted ``(key, value)`` tuple so the spec
            stays hashable and picklable (see :meth:`param`).
        time_limit: Simulated-time horizon for one run.
        max_events: Safety bound on processed events for one run.
    """

    name: str
    protocol: str
    adversary: str = "none"
    delay: str = "synchronous"
    n: int = 4
    t: int = 1
    property_key: str = "strong"
    params: Tuple[Tuple[str, Any], ...] = ()
    time_limit: float = 10_000.0
    max_events: int = 500_000

    def param(self, key: str, default: Any = None) -> Any:
        """Look up an extra parameter by name."""
        for item_key, value in self.params:
            if item_key == key:
                return value
        return default

    def with_(self, **changes: Any) -> "ScenarioSpec":
        """A copy of the spec with some fields replaced."""
        return dataclasses.replace(self, **changes)

    def system(self) -> SystemConfig:
        return SystemConfig(self.n, self.t)

    def describe(self) -> str:
        return (
            f"{self.name}: protocol={self.protocol} adversary={self.adversary} "
            f"delay={self.delay} n={self.n} t={self.t} property={self.property_key}"
        )


def make_params(mapping: Optional[Dict[str, Any]] = None) -> Tuple[Tuple[str, Any], ...]:
    """Normalise a parameter mapping into the canonical sorted tuple form."""
    if not mapping:
        return ()
    return tuple(sorted(mapping.items()))


class ProtocolSetup(NamedTuple):
    """What a protocol builder hands to the runner for one execution."""

    factory: Callable[[int, Simulation], Process]
    proposals: Dict[int, Any]
    check: Callable[[Simulation, Dict[int, Any]], List[str]]


ProtocolBuilder = Callable[[ScenarioSpec, SystemConfig, int], ProtocolSetup]
AdversaryBuilder = Callable[
    [ScenarioSpec, SystemConfig, Callable[[int, Simulation], Process], int],
    Tuple[Tuple[int, ...], Optional[Callable[[int, Simulation], Process]]],
]
DelayBuilder = Callable[[ScenarioSpec, int], DelayModel]

PROTOCOLS: Dict[str, ProtocolBuilder] = {}
ADVERSARIES: Dict[str, AdversaryBuilder] = {}
DELAY_MODELS: Dict[str, DelayBuilder] = {}

# Keys registered with ``extension=True`` are resolvable by name everywhere
# (make_scenario, the fuzzer, explicit CLI selections) but are *excluded* from
# the cartesian defaults of :func:`scenario_matrix`, so adding an attack
# surface never silently grows the default sweep or invalidates committed
# baselines.
EXTENSION_ADVERSARIES: set = set()
EXTENSION_DELAY_MODELS: set = set()


def register_protocol(key: str) -> Callable[[ProtocolBuilder], ProtocolBuilder]:
    def decorate(builder: ProtocolBuilder) -> ProtocolBuilder:
        if key in PROTOCOLS:
            raise ValueError(f"protocol {key!r} already registered")
        PROTOCOLS[key] = builder
        return builder

    return decorate


def register_adversary(key: str, extension: bool = False) -> Callable[[AdversaryBuilder], AdversaryBuilder]:
    def decorate(builder: AdversaryBuilder) -> AdversaryBuilder:
        if key in ADVERSARIES:
            raise ValueError(f"adversary {key!r} already registered")
        ADVERSARIES[key] = builder
        if extension:
            EXTENSION_ADVERSARIES.add(key)
        return builder

    return decorate


def register_delay_model(key: str, extension: bool = False) -> Callable[[DelayBuilder], DelayBuilder]:
    def decorate(builder: DelayBuilder) -> DelayBuilder:
        if key in DELAY_MODELS:
            raise ValueError(f"delay model {key!r} already registered")
        DELAY_MODELS[key] = builder
        if extension:
            EXTENSION_DELAY_MODELS.add(key)
        return builder

    return decorate


# ----------------------------------------------------------------------
# Proposal assignments (deterministic functions of scenario and seed)
# ----------------------------------------------------------------------
def _proposals(spec: ScenarioSpec, seed: int, spread: int) -> Dict[int, Any]:
    override = spec.param("proposals")
    if override is not None:
        return dict(override)
    return {pid: (pid + seed) % spread for pid in range(spec.n)}


# ----------------------------------------------------------------------
# Protocols
# ----------------------------------------------------------------------
class _BinaryProcess(Process):
    def __init__(self, pid: int, simulation: Simulation, proposal: int):
        super().__init__(pid, simulation)
        self.proposal = proposal

    def on_start(self) -> None:
        self.consensus = BinaryConsensus(self, on_decide=self.decide)
        self.consensus.propose(self.proposal)


@register_protocol("binary")
def _build_binary(spec: ScenarioSpec, system: SystemConfig, seed: int) -> ProtocolSetup:
    proposals = {pid: value % 2 for pid, value in _proposals(spec, seed, 2).items()}

    def check(simulation: Simulation, props: Dict[int, Any]) -> List[str]:
        violations = _common_violations(simulation)
        correct_proposals = {props[pid] for pid in simulation.correct_processes}
        for pid, value in simulation.decisions().items():
            if value not in (0, 1):
                violations.append(f"validity violated: process {pid} decided non-binary value {value!r}")
            elif len(correct_proposals) == 1 and value not in correct_proposals:
                violations.append(
                    f"validity violated: unanimous proposal {correct_proposals} "
                    f"but process {pid} decided {value!r}"
                )
        return violations

    return ProtocolSetup(
        factory=lambda pid, simulation: _BinaryProcess(pid, simulation, proposals[pid]),
        proposals=proposals,
        check=check,
    )


class _QuadProcess(Process):
    """Runs Quad directly with a trivially verifiable proof scheme."""

    def __init__(self, pid: int, simulation: Simulation, value: Any):
        super().__init__(pid, simulation)
        self.value = value

    def on_start(self) -> None:
        self.quad = Quad(self, verify=_quad_verify, on_decide=self.decide)
        self.quad.propose((self.value, ("ok", self.value)))


def _quad_verify(value: Any, proof: Any) -> bool:
    return proof == ("ok", value)


@register_protocol("quad")
def _build_quad(spec: ScenarioSpec, system: SystemConfig, seed: int) -> ProtocolSetup:
    proposals = {pid: f"v{value}" for pid, value in _proposals(spec, seed, 3).items()}

    def check(simulation: Simulation, props: Dict[int, Any]) -> List[str]:
        violations = _common_violations(simulation)
        for pid, decided in simulation.decisions().items():
            value, proof = decided
            if not _quad_verify(value, proof):
                violations.append(f"validity violated: process {pid} decided unverifiable pair {decided!r}")
        return violations

    return ProtocolSetup(
        factory=lambda pid, simulation: _QuadProcess(pid, simulation, proposals[pid]),
        proposals=proposals,
        check=check,
    )


def _build_universal(spec: ScenarioSpec, system: SystemConfig, seed: int, backend: str) -> ProtocolSetup:
    proposals = _proposals(spec, seed, 3)
    universal_spec = UniversalSpec.for_standard_property(system, spec.property_key)

    def check(simulation: Simulation, props: Dict[int, Any]) -> List[str]:
        violations = _common_violations(simulation)
        configuration = InputConfiguration.from_mapping(
            {pid: props[pid] for pid in simulation.correct_processes}
        )
        for pid, value in simulation.decisions().items():
            if not universal_spec.validity.is_admissible(configuration, value):
                violations.append(
                    f"validity violated: process {pid} decided {value!r}, inadmissible for "
                    f"{spec.property_key!r} given the correct proposals"
                )
        return violations

    return ProtocolSetup(
        factory=universal_process_factory(universal_spec, proposals, backend=backend),
        proposals=proposals,
        check=check,
    )


@register_protocol("universal-authenticated")
def _build_universal_authenticated(spec: ScenarioSpec, system: SystemConfig, seed: int) -> ProtocolSetup:
    return _build_universal(spec, system, seed, "authenticated")


@register_protocol("universal-non-authenticated")
def _build_universal_non_authenticated(spec: ScenarioSpec, system: SystemConfig, seed: int) -> ProtocolSetup:
    return _build_universal(spec, system, seed, "non-authenticated")


@register_protocol("universal-compact")
def _build_universal_compact(spec: ScenarioSpec, system: SystemConfig, seed: int) -> ProtocolSetup:
    return _build_universal(spec, system, seed, "compact")


def _common_violations(simulation: Simulation) -> List[str]:
    violations: List[str] = []
    if not simulation.all_correct_decided():
        undecided = sorted(
            pid for pid in simulation.correct_processes if not simulation.processes[pid].has_decided()
        )
        violations.append(f"termination violated: correct processes {undecided} never decided")
    if not simulation.agreement_holds():
        violations.append(f"agreement violated: decisions {simulation.decisions()!r}")
    return violations


# ----------------------------------------------------------------------
# Adversaries (all corrupt the last ``t`` process indices)
# ----------------------------------------------------------------------
def _faulty_indices(system: SystemConfig) -> Tuple[int, ...]:
    return tuple(range(system.n - system.t, system.n))


@register_adversary("none")
def _build_no_adversary(spec, system, correct_factory, seed):
    return (), None


@register_adversary("silent")
def _build_silent(spec, system, correct_factory, seed):
    return _faulty_indices(system), silent_factory


@register_adversary("crash")
def _build_crash(spec, system, correct_factory, seed):
    crash_time = spec.param("crash_time", 2.0)
    return _faulty_indices(system), crash_factory(correct_factory, crash_time=crash_time)


@register_adversary("dropping")
def _build_dropping(spec, system, correct_factory, seed):
    drop_probability = spec.param("drop_probability", 0.3)
    return _faulty_indices(system), dropping_factory(correct_factory, drop_probability, seed=seed)


# ----------------------------------------------------------------------
# Equivocation: Byzantine proposers sending a different, well-formed
# proposal-phase message to every receiver.  The target module path and the
# wire format depend on the protocol, so each protocol key registers its
# attack surface here.
# ----------------------------------------------------------------------
def _signed_equivocation(process, receiver, value):
    """A properly self-signed proposal (the PKI is never violated)."""
    signature = process.authority.sign(process.pid, ("proposal", value))
    return SignedProposal(sender=process.pid, value=value, signature=signature)


def _equivocation_value(seed: int) -> Callable[[int, int], int]:
    return lambda pid, receiver: 100 + receiver + 10 * pid + seed % 10


EQUIVOCATION_ATTACKS: Dict[str, Callable[[ScenarioSpec, int], Callable[[int, Simulation], Process]]] = {
    # Split bval votes in round 1 of binary consensus.
    "binary": lambda spec, seed: equivocating_factory(
        ("binary",), lambda pid, receiver: ("bval", 1, (pid + receiver + seed) % 2)
    ),
    # Conflicting leader proposals for the view this proposer would lead.
    "quad": lambda spec, seed: equivocating_factory(
        ("quad",),
        lambda pid, receiver: f"eq{pid}.{receiver}.{seed % 10}",
        lambda process, receiver, value: ("propose", process.pid + 1, value, ("ok", value), None),
    ),
    # A different self-signed proposal per receiver (the textbook attack on
    # the dissemination layer of Algorithm 1).
    "universal-authenticated": lambda spec, seed: equivocating_factory(
        ("universal", "vec_cons"), _equivocation_value(seed), _signed_equivocation
    ),
    # Same attack against Algorithm 6's best-effort proposal broadcast.
    "universal-compact": lambda spec, seed: equivocating_factory(
        ("universal", "vec_cons", "beb"), _equivocation_value(seed), _signed_equivocation
    ),
    # Equivocate inside Bracha broadcast (Algorithm 3's proposal phase).
    "universal-non-authenticated": lambda spec, seed: equivocating_factory(
        ("universal", "vec_cons", "brb"),
        _equivocation_value(seed),
        lambda process, receiver, value: ("send", ("proposal", value)),
    ),
}


@register_adversary("equivocation")
def _build_equivocation(spec, system, correct_factory, seed):
    attack = EQUIVOCATION_ATTACKS.get(spec.protocol)
    if attack is None:
        raise KeyError(
            f"protocol {spec.protocol!r} has no registered equivocation attack; "
            f"add it to EQUIVOCATION_ATTACKS (known: {sorted(EQUIVOCATION_ATTACKS)})"
        )
    return _faulty_indices(system), attack(spec, seed)


@register_adversary("splitbrain", extension=True)
def _build_splitbrain(spec, system, correct_factory, seed):
    """Colluding split-brain leader for Quad (succeeds exactly when n <= 3t).

    An *extension* adversary: it targets Quad's leader/certificate structure
    specifically, so it is reachable by name (and by the fuzzer) without
    joining the cartesian default matrix.
    """
    if spec.protocol != "quad":
        raise KeyError(
            f"adversary 'splitbrain' targets the 'quad' protocol, not {spec.protocol!r}"
        )

    def build(pid: int, simulation: Simulation) -> Process:
        return QuadSplitBrainLeader(pid, simulation, proof_for=lambda value: ("ok", value))

    return _faulty_indices(system), build


# ----------------------------------------------------------------------
# Delay models
# ----------------------------------------------------------------------
@register_delay_model("synchronous")
def _build_synchronous(spec: ScenarioSpec, seed: int) -> DelayModel:
    return SynchronousDelayModel(delta=spec.param("delta", 1.0), seed=seed)


@register_delay_model("eventual")
def _build_eventual(spec: ScenarioSpec, seed: int) -> DelayModel:
    return DelayModel(gst=spec.param("gst", 5.0), delta=spec.param("delta", 1.0), seed=seed)


@register_delay_model("partition")
def _build_partition(spec: ScenarioSpec, seed: int) -> DelayModel:
    """Split all process indices into two halves, partitioned until release.

    The release time doubles as the GST (the base-class clamp would cut the
    partition short for correct senders otherwise), so the scenario exercises
    the regime where the network heals exactly when partial synchrony kicks in.
    """
    half = spec.n // 2
    return PartitionDelayModel(
        group_a=set(range(half)),
        group_c=set(range(half, spec.n)),
        release_time=spec.param("release_time", 5.0),
        delta=spec.param("delta", 1.0),
        seed=seed,
        gst=spec.param("gst"),
    )


@register_delay_model("jittered")
def _build_jittered(spec: ScenarioSpec, seed: int) -> DelayModel:
    return JitteredDelayModel(
        gst=spec.param("gst", 5.0),
        delta=spec.param("delta", 1.0),
        alpha=spec.param("alpha", 1.5),
        seed=seed,
    )


@register_delay_model("stalled", extension=True)
def _build_stalled(spec: ScenarioSpec, seed: int) -> DelayModel:
    """Favour the corrupted (last ``t``) indices until ``stall_until`` (= GST).

    The scheduling companion of the split-brain adversary: correct-to-correct
    traffic stalls while the Byzantine leader talks to everyone promptly.
    """
    return StalledDelayModel(
        favoured=set(range(spec.n - spec.t, spec.n)),
        stall_until=spec.param("stall_until", 120.0),
        delta=spec.param("delta", 1.0),
        seed=seed,
    )


# ----------------------------------------------------------------------
# Matrix composition
# ----------------------------------------------------------------------
def scenario_name(protocol: str, adversary: str, delay: str) -> str:
    return f"{protocol}+{adversary}+{delay}"


def make_scenario(
    protocol: str,
    adversary: str = "none",
    delay: str = "synchronous",
    n: int = 4,
    t: int = 1,
    property_key: str = "strong",
    name: Optional[str] = None,
    params: Optional[Dict[str, Any]] = None,
    time_limit: float = 10_000.0,
    max_events: int = 500_000,
) -> ScenarioSpec:
    """Build a validated :class:`ScenarioSpec` from registry keys."""
    for key, registry, label in (
        (protocol, PROTOCOLS, "protocol"),
        (adversary, ADVERSARIES, "adversary"),
        (delay, DELAY_MODELS, "delay model"),
    ):
        if key not in registry:
            raise KeyError(f"unknown {label} {key!r}; registered: {sorted(registry)}")
    return ScenarioSpec(
        name=name or scenario_name(protocol, adversary, delay),
        protocol=protocol,
        adversary=adversary,
        delay=delay,
        n=n,
        t=t,
        property_key=property_key,
        params=make_params(params),
        time_limit=time_limit,
        max_events=max_events,
    )


def scenario_matrix(
    protocols: Optional[Sequence[str]] = None,
    adversaries: Optional[Sequence[str]] = None,
    delays: Optional[Sequence[str]] = None,
    n: int = 4,
    t: int = 1,
    property_key: str = "strong",
) -> List[ScenarioSpec]:
    """The named cartesian matrix over the given keys.

    Defaults cover every registered non-extension key; extension adversaries
    and delay models (see :func:`register_adversary`) participate only when
    named explicitly, so the default matrix is stable across attack-surface
    additions.
    """
    specs = [
        make_scenario(protocol, adversary, delay, n=n, t=t, property_key=property_key)
        for protocol in (protocols if protocols is not None else sorted(PROTOCOLS))
        for adversary in (
            adversaries
            if adversaries is not None
            else sorted(set(ADVERSARIES) - EXTENSION_ADVERSARIES)
        )
        for delay in (
            delays if delays is not None else sorted(set(DELAY_MODELS) - EXTENSION_DELAY_MODELS)
        )
    ]
    names = [spec.name for spec in specs]
    if len(set(names)) != len(names):
        raise ValueError("scenario matrix contains duplicate names")
    return specs


LARGE_N_PRESETS: Tuple[Tuple[str, str, str, int, int], ...] = (
    # (protocol, adversary, delay, n, t) — larger-system presets appended to
    # the cartesian matrix, biased toward the newly opened adversarial region.
    ("binary", "silent", "synchronous", 7, 2),
    ("binary", "equivocation", "partition", 7, 2),
    ("binary", "dropping", "jittered", 10, 3),
    ("quad", "silent", "jittered", 7, 2),
    ("quad", "equivocation", "eventual", 7, 2),
    ("universal-authenticated", "silent", "eventual", 7, 2),
    ("universal-authenticated", "equivocation", "partition", 7, 2),
    ("universal-authenticated", "silent", "synchronous", 10, 3),
    ("universal-compact", "crash", "synchronous", 7, 2),
    ("universal-compact", "equivocation", "jittered", 7, 2),
    ("universal-non-authenticated", "silent", "synchronous", 7, 2),
    ("universal-non-authenticated", "equivocation", "eventual", 7, 2),
)


def large_n_presets() -> List[ScenarioSpec]:
    """Named larger-system scenarios (``<protocol>+<adversary>+<delay>@n<n>``)."""
    return [
        make_scenario(
            protocol,
            adversary,
            delay,
            n=n,
            t=t,
            name=f"{scenario_name(protocol, adversary, delay)}@n{n}",
        )
        for protocol, adversary, delay, n, t in LARGE_N_PRESETS
    ]


def default_matrix() -> List[ScenarioSpec]:
    """Every registered protocol × adversary × delay-model combination (n=4, t=1),
    plus the larger-system presets."""
    return scenario_matrix() + large_n_presets()


def find_scenarios(names: Sequence[str]) -> List[ScenarioSpec]:
    """Resolve scenario names against the default matrix."""
    by_name = {spec.name: spec for spec in default_matrix()}
    missing = [name for name in names if name not in by_name]
    if missing:
        raise KeyError(f"unknown scenarios {missing}; use --list to enumerate")
    return [by_name[name] for name in names]
