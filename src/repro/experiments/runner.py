"""Deterministic sweep execution: serial or ``multiprocessing`` fan-out.

:func:`execute_run` turns one ``(scenario, seed)`` pair into a
:class:`RunResult`.  The result is **pure data derived only from the pair**:
no wall-clock timestamps, no host-dependent fields, and canonically ordered
containers, so a serial sweep and a parallel sweep over the same pairs
produce byte-identical :meth:`RunResult.canonical_json` — the guarantee the
determinism test suite pins down and every regression baseline relies on.

:class:`Runner` fans a sweep out over a **persistent** ``multiprocessing``
pool (or runs it in-process): the pool is created once, lazily, and reused
by every subsequent :meth:`Runner.run` / :meth:`Runner.iter_runs` call, so
repeated sweeps pay worker startup once instead of per batch.  Work is
dispatched through the supervised dispatcher in **microbatches** (see
``batch_size``): each worker round-trip carries a chunk of consecutive
tasks, amortizing pickle/pool overhead, while faults, retries, quarantine
and store caching stay per-task and a small reorder buffer still yields
results in deterministic ``scenarios × seeds`` order.  An
optional per-run wall-clock timeout is enforced with ``SIGALRM`` inside the
worker, so a hung run is reported as an ``error`` record instead of stalling
the sweep.  Close the pool with :meth:`Runner.close`, use the runner as a
context manager, or let it fall out of scope (garbage collection closes it).
"""

from __future__ import annotations

import contextlib
import functools
import json
import logging
import multiprocessing
import os
import signal
import time
from dataclasses import asdict, dataclass
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..obs.profiling import profile_directory, profiled_call
from ..obs.registry import METRICS
from ..resilience.faults import FaultPlan, FaultState
from ..resilience.retry import RetryPolicy, TaskQuarantinedError
from ..resilience.supervisor import (
    SUPERVISION_GRACE,
    PoisonRecord,
    SupervisionStats,
    Supervisor,
)
from ..sim.simulation import Simulation, SimulationError
from .scenario import ADVERSARIES, DELAY_MODELS, PROTOCOLS, ScenarioSpec

_LOG = logging.getLogger("repro.experiments.runner")

DEFAULT_SEED = 2023
"""The shared seed used by benchmarks and smoke sweeps (one seeding path)."""

# Telemetry instruments (descriptive only — see repro.obs).  Cached at import
# so the steady-state cost of an increment never includes a registry lookup.
# All sites run in the parent process: dispatched counts every task execution
# the parent paid for (serial executions and parallel dispatches, retries
# included), cached counts store hits served without execution, and the wall
# timer buckets per-task wall-clock as observed from the dispatch loop.
_OBS_TASKS_DISPATCHED = METRICS.counter("runner.tasks.dispatched")
_OBS_TASKS_CACHED = METRICS.counter("runner.tasks.cached")
_OBS_TASK_WALL = METRICS.timer("runner.task.wall")


def sweep_seeds(count: int, base: int = DEFAULT_SEED) -> Tuple[int, ...]:
    """The canonical seed sequence for a sweep of ``count`` runs per scenario."""
    if count < 1:
        raise ValueError("a sweep needs at least one seed")
    return tuple(base + offset for offset in range(count))


@dataclass(frozen=True)
class RunResult:
    """Outcome of one ``(scenario, seed)`` execution.

    Every field is a deterministic function of the pair; containers are
    canonically ordered, which makes the record safe to hash, diff and store
    as a regression baseline.

    ``agreement``, ``validity_ok`` and ``decision_latency`` are ``None`` when
    the run never finished (e.g. a wall-clock timeout): an unfinished run has
    no verdict on those properties, and reporting ``True``/``0.0`` would let
    it masquerade as a clean fast run in the aggregates.
    """

    scenario: str
    seed: int
    completed: bool
    agreement: Optional[bool]
    validity_ok: Optional[bool]
    violations: Tuple[str, ...]
    decisions: Tuple[Tuple[int, str], ...]
    message_complexity: int
    communication_complexity: int
    total_messages: int
    total_words: int
    byzantine_messages: int
    decision_latency: Optional[float]
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        """True when the run terminated correctly with no violations."""
        return self.error is None and self.completed and not self.violations

    def to_dict(self) -> Dict[str, Any]:
        data = asdict(self)
        data["violations"] = list(self.violations)
        data["decisions"] = [list(pair) for pair in self.decisions]
        return data

    def canonical_json(self) -> str:
        """A canonical serialisation: byte-identical for identical runs."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunResult":
        """Rebuild a record from its :meth:`to_dict` / JSON form.

        The inverse the persistent run store relies on:
        ``RunResult.from_dict(json.loads(r.canonical_json())) == r`` exactly,
        so a cached record is byte-for-byte the run it stands in for.
        """
        return cls(
            scenario=data["scenario"],
            seed=data["seed"],
            completed=data["completed"],
            agreement=data["agreement"],
            validity_ok=data["validity_ok"],
            violations=tuple(data["violations"]),
            decisions=tuple((pid, value) for pid, value in data["decisions"]),
            message_complexity=data["message_complexity"],
            communication_complexity=data["communication_complexity"],
            total_messages=data["total_messages"],
            total_words=data["total_words"],
            byzantine_messages=data["byzantine_messages"],
            decision_latency=data["decision_latency"],
            error=data.get("error"),
        )


def canonical_value(value: Any) -> str:
    """Render a decision value as a stable string (repr for exotic types)."""
    if isinstance(value, (bool, int, float, str)) or value is None:
        return repr(value)
    if isinstance(value, (list, tuple)):
        return "(" + ", ".join(canonical_value(item) for item in value) + ")"
    stable_fields = getattr(value, "stable_fields", None)
    if callable(stable_fields):
        return canonical_value(stable_fields())
    pairs = getattr(value, "pairs", None)
    if pairs is not None:
        return canonical_value([(pair.process, pair.proposal) for pair in pairs])
    return repr(value)


def execute_run(spec: ScenarioSpec, seed: int) -> RunResult:
    """Execute one scenario with one seed and return its deterministic record."""
    system = spec.system()
    setup = PROTOCOLS[spec.protocol](spec, system, seed)
    faulty, faulty_factory = ADVERSARIES[spec.adversary](spec, system, setup.factory, seed)
    delay_model = DELAY_MODELS[spec.delay](spec, seed)
    simulation = Simulation(system, delay_model=delay_model, seed=seed)
    simulation.populate(setup.factory, faulty=faulty, faulty_factory=faulty_factory)

    error: Optional[str] = None
    try:
        simulation.run_until_all_correct_decide(until=spec.time_limit, max_events=spec.max_events)
    except SimulationError as exc:
        error = f"SimulationError: {exc}"
    except _RunTimeout:
        raise
    except Exception as exc:  # a protocol bug is a result, not a sweep abort
        error = f"{type(exc).__name__}: {exc}"

    violations: Tuple[str, ...] = ()
    if error is None:
        try:
            violations = tuple(setup.check(simulation, setup.proposals))
        except _RunTimeout:
            raise
        except Exception as exc:  # a checker crash on a malformed decision is a result too
            error = f"checker {type(exc).__name__}: {exc}"
    try:
        decisions = tuple(
            (pid, canonical_value(value)) for pid, value in sorted(simulation.decisions().items())
        )
    except _RunTimeout:
        raise
    except Exception as exc:
        decisions = ()
        error = error or f"decision canonicalisation {type(exc).__name__}: {exc}"
    metrics = simulation.metrics
    return RunResult(
        scenario=spec.name,
        seed=seed,
        completed=simulation.all_correct_decided(),
        agreement=simulation.agreement_holds(),
        validity_ok=not any("validity" in violation for violation in violations),
        violations=violations,
        decisions=decisions,
        message_complexity=metrics.message_complexity,
        communication_complexity=metrics.communication_complexity,
        total_messages=metrics.total_messages,
        total_words=metrics.total_words,
        byzantine_messages=metrics.byzantine_messages,
        decision_latency=metrics.decision_latency(),
        error=error,
    )


# ----------------------------------------------------------------------
# Per-run wall-clock timeout (SIGALRM inside the executing process)
# ----------------------------------------------------------------------
class _RunTimeout(Exception):
    pass


TIMEOUT_ERROR_PREFIX = "timeout:"
"""Marks a wall-clock timeout record.  A timeout is a *host* condition, not a
function of the ``(scenario, seed, code)`` content key, so the run store uses
this prefix to refuse to persist such records — keep the two in sync through
this constant, never a literal."""

POISON_ERROR_PREFIX = "poison:"
"""Marks a quarantined-task record: the task repeatedly killed its worker
and supervision gave up on it.  Like a timeout, that is a host condition —
a healthier host might complete the run — so the run store refuses to
persist such records in the ``runs`` table (they go to the ``poison``
quarantine table instead, via :meth:`repro.store.RunStore.put_poison`)."""


_ALARM_ARMED = False
# Guards against a late SIGALRM delivered after the run already finished: the
# handler only raises while a run is armed, so a stray alarm during cleanup
# can never escape _execute_with_timeout and abort the sweep.


def _raise_timeout(signum, frame):  # pragma: no cover - signal handler
    if _ALARM_ARMED:
        raise _RunTimeout()


def _timeout_result(spec: ScenarioSpec, seed: int, timeout: float) -> RunResult:
    # A timed-out run has no verdict: agreement/validity/latency are unknown,
    # not clean, so they are None and the aggregates skip them.
    return RunResult(
        scenario=spec.name,
        seed=seed,
        completed=False,
        agreement=None,
        validity_ok=None,
        violations=(),
        decisions=(),
        message_complexity=0,
        communication_complexity=0,
        total_messages=0,
        total_words=0,
        byzantine_messages=0,
        decision_latency=None,
        error=f"{TIMEOUT_ERROR_PREFIX} run exceeded {timeout}s wall clock",
    )


def _poison_result(spec: ScenarioSpec, seed: int, record: PoisonRecord) -> RunResult:
    # A quarantined run, like a timed-out one, has no verdict: the task
    # never produced a result, so agreement/validity/latency are unknown.
    return RunResult(
        scenario=spec.name,
        seed=seed,
        completed=False,
        agreement=None,
        validity_ok=None,
        violations=(),
        decisions=(),
        message_complexity=0,
        communication_complexity=0,
        total_messages=0,
        total_words=0,
        byzantine_messages=0,
        decision_latency=None,
        error=(
            f"{POISON_ERROR_PREFIX} task quarantined after {record.attempts} "
            f"attempt(s): {record.reason}"
        ),
    )


def _execute_with_timeout(item: Tuple[ScenarioSpec, int, Optional[float]]) -> RunResult:
    """Execute one run under the per-run timeout, profiling when requested.

    This is the worker entry point for sweeps *and* fuzz campaigns, so the
    opt-in cProfile hook lives here: when ``REPRO_PROFILE_DIR`` names a
    directory (exported before the pool was created, hence inherited by
    every worker), the run executes under this process's accumulating
    profiler.  Profiled and unprofiled runs return identical records.
    """
    if profile_directory() is not None:
        return profiled_call(_execute_bounded, item)
    return _execute_bounded(item)


def _execute_bounded(item: Tuple[ScenarioSpec, int, Optional[float]]) -> RunResult:
    global _ALARM_ARMED
    spec, seed, timeout = item
    if timeout is None or not hasattr(signal, "SIGALRM"):
        return execute_run(spec, seed)
    previous = signal.signal(signal.SIGALRM, _raise_timeout)
    _ALARM_ARMED = True
    signal.setitimer(signal.ITIMER_REAL, timeout)
    try:
        result = execute_run(spec, seed)
        _ALARM_ARMED = False
        if signal.getitimer(signal.ITIMER_REAL)[0] == 0.0:
            # The interval timer has expired, so the deadline passed while
            # execute_run was still working — if it returned anyway, a broad
            # ``except Exception`` somewhere inside protocol or checker code
            # swallowed _RunTimeout and fabricated an ordinary record.  The
            # deadline is authoritative: report the timeout, never the
            # fabricated result (which would otherwise be persisted).
            return _timeout_result(spec, seed, timeout)
        return result
    except _RunTimeout:
        return _timeout_result(spec, seed, timeout)
    finally:
        _ALARM_ARMED = False
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _execute_indexed(
    indexed_item: Tuple[int, Tuple[ScenarioSpec, int, Optional[float]]]
) -> Tuple[int, RunResult]:
    """Worker entry for unordered dispatch: tag each result with its slot."""
    index, item = indexed_item
    return index, _execute_with_timeout(item)


def _invoke_indexed(func: Any, indexed_item: Tuple[int, Any]) -> Tuple[int, Any]:
    """Generic worker entry for :meth:`Runner.iter_tasks`: apply ``func``, keep the slot.

    ``func`` travels inside the dispatched payload (via ``functools.partial``),
    so any picklable top-level callable can ride the same persistent pool the
    scenario sweeps use.
    """
    index, item = indexed_item
    return index, func(item)


def _effective_hash_seed() -> str:
    """The ``PYTHONHASHSEED`` value to pin for spawned workers.

    Spawned workers boot a fresh interpreter, which randomises its string
    hash seed unless ``PYTHONHASHSEED`` is set — two workers could then
    disagree on any hash-order-dependent iteration.  Pinning every worker to
    one value keeps the whole pool (and reruns of it) consistent; the
    parent's explicit setting wins when present.  (RunResult fields are
    canonically ordered, so results never depend on the parent's own hash
    seed — the pin only has to make the workers agree with each other.)
    """
    value = os.environ.get("PYTHONHASHSEED", "")
    if value and value != "random":
        return value
    return "0"


@contextlib.contextmanager
def _pinned_hash_seed() -> Iterator[None]:
    """Temporarily pin ``PYTHONHASHSEED`` in the environment for child processes."""
    previous = os.environ.get("PYTHONHASHSEED")
    os.environ["PYTHONHASHSEED"] = _effective_hash_seed()
    try:
        yield
    finally:
        if previous is None:
            del os.environ["PYTHONHASHSEED"]
        else:
            os.environ["PYTHONHASHSEED"] = previous


class Runner:
    """Executes scenario sweeps, serially or across worker processes.

    The worker pool is **persistent**: it is created lazily on the first
    parallel sweep and reused by every later one, so callers that sweep in
    phases (the CLI, benchmarks, parameter scans) pay pool startup exactly
    once.  Use the runner as a context manager (or call :meth:`close`) to
    release the workers deterministically; an unreferenced runner closes its
    pool when garbage-collected.  Because workers snapshot the interpreter
    at pool creation, anything registered in the scenario registries *after*
    the first parallel sweep is invisible to them — register protocols /
    adversaries / delay models before sweeping, or :meth:`close` the runner
    to pick the additions up in a fresh pool.

    Args:
        parallel: Number of worker processes; ``None`` or ``0``/``1`` runs
            serially in-process.  Results are identical either way.
        timeout: Optional per-run wall-clock timeout in seconds; a run that
            exceeds it yields an ``error`` record instead of hanging the
            sweep.  Enforced via ``SIGALRM``, so on platforms without it
            (Windows) the timeout is ignored with a warning.
        start_method: Optional ``multiprocessing`` start method override
            (``"fork"``/``"spawn"``/``"forkserver"``).  Defaults to fork when
            available, else spawn.  Spawned workers get ``PYTHONHASHSEED``
            pinned so the serial == parallel byte-identical guarantee holds
            on spawn-only platforms too.  (Caveat: a ``forkserver`` master
            started *before* this call captured its environment then, so the
            pin cannot reach its workers; only fork and spawn carry the
            guarantee.)
        retry_policy: Retry budget and backoff for supervised dispatch:
            an in-flight task whose worker dies is re-dispatched up to
            ``max_attempts`` times before being quarantined as poison.
            Defaults to :class:`~repro.resilience.retry.RetryPolicy`'s
            defaults (seeded from the fault plan when one is active).
        fault_plan: Deterministic fault injection for chaos tests; defaults
            to the plan in the ``REPRO_FAULT_PLAN`` environment variable,
            else none.  The serial path never injects faults.
        supervision_deadline: Per-task wall-clock ceiling (seconds from
            dispatch) after which supervision presumes the worker hung and
            reclaims it.  Defaults to ``timeout`` plus a grace period when
            a per-run timeout is set (the worker's own ``SIGALRM`` should
            fire first), else no deadline (worker *death* is still caught
            via pool pid churn).
        batch_size: Tasks per parallel worker dispatch.  ``None`` sizes the
            microbatch automatically from the miss count and worker count
            (see :meth:`_effective_batch_size`); ``1`` restores one dispatch
            per task.  Batching amortizes pickle/pool overhead only — result
            order, store caching and crash/retry/poison supervision are
            per-task at every size, and serial execution ignores it.
        on_log: Optional sink for supervision/teardown log lines; defaults
            to the module logger.
    """

    MAX_AUTO_BATCH = 16
    """Ceiling for automatically sized microbatches: large enough to make
    dispatch overhead invisible, small enough that one straggler cannot
    serialise a meaningful fraction of a sweep behind it."""

    def __init__(
        self,
        parallel: Optional[int] = None,
        timeout: Optional[float] = None,
        start_method: Optional[str] = None,
        retry_policy: Optional[RetryPolicy] = None,
        fault_plan: Optional[FaultPlan] = None,
        supervision_deadline: Optional[float] = None,
        batch_size: Optional[int] = None,
        on_log: Optional[Callable[[str], None]] = None,
    ):
        if parallel is not None and parallel < 0:
            raise ValueError("parallel must be a non-negative worker count")
        if batch_size is not None and batch_size < 1:
            raise ValueError("batch_size must be a positive task count (or None for auto)")
        if start_method is not None and start_method not in multiprocessing.get_all_start_methods():
            raise ValueError(
                f"start method {start_method!r} not available; "
                f"this platform offers {multiprocessing.get_all_start_methods()}"
            )
        if timeout is not None and not hasattr(signal, "SIGALRM"):
            import warnings

            warnings.warn(
                "per-run timeouts need signal.SIGALRM, which this platform lacks; "
                "runs will not be time-limited",
                RuntimeWarning,
                stacklevel=2,
            )
        self.parallel = parallel
        self.timeout = timeout
        self.start_method = start_method
        if fault_plan is None:
            fault_plan = FaultPlan.from_env()
        if retry_policy is None:
            retry_policy = RetryPolicy(seed=fault_plan.seed if fault_plan is not None else 0)
        self.retry_policy = retry_policy
        self.fault_plan = fault_plan
        if supervision_deadline is None and timeout is not None:
            supervision_deadline = timeout + SUPERVISION_GRACE
        self.supervision_deadline = supervision_deadline
        self.batch_size = batch_size
        self.supervision = SupervisionStats()
        self.on_log = on_log
        self._fault_state = FaultState(plan=fault_plan)
        self._pool = None

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------
    def _ensure_pool(self):
        """Create the persistent worker pool on first use, then reuse it.

        ``self._pool`` is only assigned once the pool constructor returned,
        so a failure mid-setup leaves the runner poolless (and a subsequent
        :meth:`close` a clean no-op) instead of holding a half-built pool.
        """
        if self._pool is None:
            method = self.start_method or (
                "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
            )
            context = multiprocessing.get_context(method)
            if method == "fork":
                # Fork keeps the parent's interpreter state (including the
                # hash seed), which makes parallel results byte-identical to
                # serial ones.
                pool = context.Pool(processes=self.parallel)
            else:
                # Spawn/forkserver boot fresh interpreters: pin their hash
                # seed so every worker hashes identically and the guarantee
                # still holds.
                with _pinned_hash_seed():
                    pool = context.Pool(processes=self.parallel)
            self._pool = pool
        return self._pool

    def _log(self, message: str) -> None:
        """Route a supervision/teardown log line to the configured sink."""
        if self.on_log is not None:
            self.on_log(message)
        else:
            _LOG.warning(message)

    def close(self) -> None:
        """Shut the persistent pool down (a later sweep recreates it).

        Idempotent and exception-safe: the pool reference is dropped before
        teardown, so a second ``close`` (or a ``close`` after ``_ensure_pool``
        failed and left no pool) is a no-op, and a worker that refuses to
        terminate cleanly cannot leave the runner pointing at a dead pool.
        Teardown suppresses only the errors a dying pool legitimately
        raises (``OSError`` from dead pipes, pool-state ``ValueError``/
        ``AssertionError``/``RuntimeError``); anything else is logged so a
        real bug in teardown stops being silently swallowed.
        """
        pool, self._pool = self._pool, None
        if pool is None:
            return
        for teardown in (pool.terminate, pool.join):
            try:
                teardown()
            except (OSError, ValueError, AssertionError, RuntimeError):
                pass  # a dying pool's expected complaints
            except Exception as exc:  # noqa: BLE001 - logged, never raised from teardown
                self._log(
                    f"runner: unexpected {type(exc).__name__} during pool "
                    f"{teardown.__name__}: {exc}"
                )

    def __enter__(self) -> "Runner":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - interpreter shutdown is untestable
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------
    # Generic task execution (shared by sweeps and the analysis pipeline)
    # ------------------------------------------------------------------
    def _effective_batch_size(self, miss_count: int) -> int:
        """Tasks per worker dispatch for a parallel sweep of ``miss_count`` misses.

        An explicit :attr:`batch_size` wins.  Auto aims for roughly two
        batches per worker — enough slack that a straggler batch cannot idle
        the pool while the per-dispatch overhead (pickling the payload, pool
        plumbing, supervision polls) is amortized over the batch — capped at
        :data:`MAX_AUTO_BATCH` so huge sweeps still stream results steadily.
        """
        if self.batch_size is not None:
            return self.batch_size
        workers = self.parallel or 1
        return max(1, min(self.MAX_AUTO_BATCH, miss_count // (workers * 2) or 1))

    def iter_tasks(
        self,
        func: Any,
        items: Sequence[Any],
        *,
        cached: Optional[Dict[int, Any]] = None,
        on_result: Optional[Any] = None,
        indexed_func: Optional[Any] = None,
        on_poison: Optional[Any] = None,
    ) -> Iterator[Any]:
        """Yield ``func(item)`` for every item, in item order, through the pool.

        This is the engine under :meth:`iter_runs`, exposed so other
        deterministic workloads (the :mod:`repro.analysis.pipeline` property
        classifier, the fuzz engine) can ride the same persistent worker
        pool.  Parallel dispatch is *supervised* (see
        :class:`repro.resilience.Supervisor`): a worker that dies or hangs
        mid-task is detected parent-side, the pool is respawned, and the
        lost tasks are re-dispatched under :attr:`retry_policy` — while a
        small reorder buffer still restores deterministic item order, so
        serial and parallel invocations yield byte-identical sequences for
        pure ``func`` even across worker crashes.

        Args:
            func: Picklable top-level callable applied to each item.
            items: The work items (picklable when running in parallel).
            cached: Optional ``{index: result}`` of pre-computed results;
                those indices are served from the mapping without executing
                ``func`` (the cache-hit path of an incremental sweep).
            on_result: Optional ``on_result(index, result)`` callback invoked
                in the parent for every *executed* (non-cached) result before
                it is yielded — the persistence hook.
            indexed_func: Optional picklable ``f((index, item)) -> (index,
                result)`` override for parallel dispatch; defaults to a
                generic wrapper around ``func``.
            on_poison: Optional ``on_poison(index, PoisonRecord) -> result``
                substitution for a task quarantined after exhausting its
                retry budget; the returned value is yielded (and passed to
                ``on_result``) in the task's slot.  Without it, quarantine
                raises :class:`~repro.resilience.retry.TaskQuarantinedError`.

        Abandoning the iterator early terminates the worker pool, exactly
        like :meth:`iter_runs` (dispatched work cannot be un-sent).
        """
        pending: Dict[int, Any] = dict(cached) if cached else {}
        misses = [index for index in range(len(items)) if index not in pending]
        if not items:
            return
        if not misses:
            for index in range(len(items)):
                yield pending[index]
            return
        if not self.parallel or self.parallel <= 1 or len(misses) == 1:
            for index in range(len(items)):
                result = pending.get(index)
                if result is None:
                    started = time.perf_counter()
                    result = func(items[index])
                    _OBS_TASK_WALL.observe(time.perf_counter() - started)
                    _OBS_TASKS_DISPATCHED.inc()
                    if on_result is not None:
                        on_result(index, result)
                else:
                    _OBS_TASKS_CACHED.inc()
                yield result
            return
        worker = indexed_func if indexed_func is not None else functools.partial(_invoke_indexed, func)
        indexed = [(index, items[index]) for index in misses]
        _OBS_TASKS_CACHED.inc(len(pending))  # dispatches are counted by the supervisor
        supervisor = Supervisor(
            self,
            self.retry_policy,
            self._fault_state,
            deadline=self.supervision_deadline,
            stats=self.supervision,
            on_log=self._log,
        )
        next_index = 0
        try:
            while next_index in pending:  # cached results before the first miss: serve now
                yield pending.pop(next_index)
                next_index += 1
            batch_size = self._effective_batch_size(len(misses))
            for index, result in supervisor.map_unordered(worker, indexed, batch_size=batch_size):
                if isinstance(result, PoisonRecord):
                    if on_poison is None:
                        raise TaskQuarantinedError(result.index, result.attempts, result.reason)
                    result = on_poison(index, result)
                if on_result is not None:
                    on_result(index, result)
                pending[index] = result
                while next_index in pending:
                    yield pending.pop(next_index)
                    next_index += 1
            while next_index in pending:  # cached results after the last miss
                yield pending.pop(next_index)
                next_index += 1
        except GeneratorExit:
            # The consumer walked away mid-sweep; release the workers so
            # the undispatched remainder cannot stall a later sweep.
            self.close()
            raise

    # ------------------------------------------------------------------
    # Sweep execution
    # ------------------------------------------------------------------
    def iter_runs(
        self,
        scenarios: Sequence[ScenarioSpec],
        seeds: Iterable[int] = (DEFAULT_SEED,),
        *,
        store: Optional[Any] = None,
        rerun: bool = False,
    ) -> Iterator[RunResult]:
        """Yield results in ``scenarios × seeds`` order as they become available.

        Parallel sweeps dispatch with ``imap_unordered`` (no worker ever
        waits on another chunk's straggler) and reorder through a small
        buffer, so the yielded sequence is deterministic while early results
        can be aggregated before the sweep finishes.

        With a ``store`` (a :class:`repro.store.RunStore`), the sweep is
        **incremental**: requested runs are partitioned into cache hits —
        served straight from the store, no execution — and misses, which are
        executed and then persisted, so an interrupted sweep resumes for
        free and an identical re-sweep executes zero runs.  ``rerun=True``
        skips the lookup and recomputes (and re-stores) everything.  Only
        this parent process touches the store; workers just compute.

        Abandoning the iterator early (``generator.close()``, a ``break``
        that drops the last reference) terminates the worker pool: work
        already dispatched cannot be un-sent, so letting it run would block
        the next sweep behind results nobody will read.  The pending store
        writes are flushed either way; a later call recreates the pool.
        """
        seed_list = list(seeds)
        items = [(spec, seed, self.timeout) for spec in scenarios for seed in seed_list]
        if not items:
            return
        cached: Dict[int, RunResult] = {}
        if store is not None and not rerun:
            for index, (spec, seed, _timeout) in enumerate(items):
                hit = store.get(spec, seed)
                if hit is not None:
                    cached[index] = hit

        def persist(index: int, result: RunResult) -> None:
            store.put(items[index][0], result)

        def quarantine(index: int, record: Any) -> RunResult:
            # A task that kept killing its worker becomes a typed poison
            # record in the result stream (and the store's quarantine
            # table) instead of aborting the sweep.
            spec, seed, _timeout = items[index]
            result = _poison_result(spec, seed, record)
            if store is not None:
                store.put_poison(spec, seed, attempts=record.attempts, reason=record.reason)
            return result

        try:
            yield from self.iter_tasks(
                _execute_with_timeout,
                items,
                cached=cached,
                on_result=persist if store is not None else None,
                indexed_func=_execute_indexed,
                on_poison=quarantine,
            )
        finally:
            if store is not None:
                # Best-effort with retry: a failing flush here must not
                # discard an otherwise-complete sweep — close() is the
                # deadline that raises (or spills to the journal).
                store.flush_retrying(raise_on_failure=False)

    def run(
        self,
        scenarios: Sequence[ScenarioSpec],
        seeds: Iterable[int] = (DEFAULT_SEED,),
        *,
        store: Optional[Any] = None,
        rerun: bool = False,
    ) -> List[RunResult]:
        """Run every scenario with every seed, in ``scenarios × seeds`` order."""
        return list(self.iter_runs(scenarios, seeds, store=store, rerun=rerun))


def run_matrix(
    scenarios: Sequence[ScenarioSpec],
    seeds: Iterable[int] = (DEFAULT_SEED,),
    parallel: Optional[int] = None,
    timeout: Optional[float] = None,
) -> List[RunResult]:
    """Convenience wrapper: one call, one sweep, pool released on return."""
    from ..jobs.session import ExecutionSession

    with ExecutionSession(parallel=parallel, timeout=timeout) as session:
        return session.runner.run(scenarios, seeds)
