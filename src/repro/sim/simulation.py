"""The discrete-event simulation driver.

:class:`Simulation` owns the event queue, the clock, the network delay
model, the (simulated) PKI, the fault assignment, and the complexity
metrics.  A run is fully deterministic given the system parameters, the
delay model (including its seed) and the process implementations, which is
what makes the complexity experiments reproducible.

The event loop is the hottest code in the repository — every message and
timer of every sweep run passes through it — so it is written tuple-first:
queue entries are plain ``(time, sequence, kind, target, data)`` tuples
(see :mod:`repro.sim.events`), dispatch is inlined into the loop, and the
"all correct processes decided" stop condition is a counter maintained by
:meth:`record_decision` instead of an O(n) scan after every event.  None of
this changes the event order: regression baselines are byte-identical to
the pre-optimization driver.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..core.system import SystemConfig
from ..crypto.signatures import KeyAuthority
from . import instrument
from .events import Envelope, Event, MessageDelivery, TimerExpiry
from .metrics import MetricsCollector
from .network import DelayModel
from .process import Process

_MESSAGE = Event.MESSAGE
_TIMER = Event.TIMER
_START_PATH = ("__start__",)
_heappush = heapq.heappush


class SimulationError(RuntimeError):
    """Raised when a simulation run exceeds its safety limits."""


class Simulation:
    """A single execution of the simulated distributed system."""

    def __init__(
        self,
        system: SystemConfig,
        delay_model: Optional[DelayModel] = None,
        seed: int = 0,
        authority: Optional[KeyAuthority] = None,
    ):
        self.system = system
        self.delay_model = delay_model if delay_model is not None else DelayModel(seed=seed)
        self.authority = authority if authority is not None else KeyAuthority(system.n, seed=seed)
        self.metrics = MetricsCollector(gst=self.delay_model.gst)
        self.time = 0.0
        self.events_processed = 0
        self.processes: Dict[int, Process] = {}
        self._correct: Set[int] = set()
        self._correct_view: Optional[FrozenSet[int]] = None
        self._decided_correct = 0
        self._queue: List[tuple] = []
        self._sequence = 0
        self._started = False
        self._start_times: Dict[int, float] = {}

    # ------------------------------------------------------------------
    # Topology construction
    # ------------------------------------------------------------------
    def add_process(self, process: Process, correct: bool = True, start_time: float = 0.0) -> Process:
        """Register a process implementation for one process index.

        Args:
            process: The process object (its ``pid`` selects the slot).
            correct: Whether the process counts as correct for the metrics
                and the correctness checks.  Byzantine behaviours are added
                with ``correct=False``.
            start_time: When the process begins executing.  The paper assumes
                correct processes start at or before GST; this is asserted.
        """
        if process.pid in self.processes:
            raise ValueError(f"process {process.pid} already added")
        if correct and start_time > self.delay_model.gst:
            raise ValueError(
                f"correct process {process.pid} would start at {start_time}, after GST="
                f"{self.delay_model.gst}; the model requires correct processes to start by GST"
            )
        self.processes[process.pid] = process
        if correct:
            self._correct.add(process.pid)
            self._correct_view = None
        self._start_times[process.pid] = start_time
        return process

    def populate(
        self,
        process_factory: Callable[[int, "Simulation"], Process],
        faulty: Iterable[int] = (),
        faulty_factory: Optional[Callable[[int, "Simulation"], Process]] = None,
        start_times: Optional[Dict[int, float]] = None,
    ) -> None:
        """Build the whole system from factories.

        Correct processes are created with ``process_factory``.  Faulty
        indices either get a Byzantine process from ``faulty_factory`` or are
        left silent (crashed from the start) when no factory is given.
        """
        faulty_set = set(faulty)
        if len(faulty_set) > self.system.t:
            raise ValueError(
                f"{len(faulty_set)} faulty processes exceed the threshold t={self.system.t}"
            )
        times = start_times or {}
        for pid in range(self.system.n):
            start = times.get(pid, 0.0)
            if pid in faulty_set:
                if faulty_factory is not None:
                    self.add_process(faulty_factory(pid, self), correct=False, start_time=start)
                continue
            self.add_process(process_factory(pid, self), correct=True, start_time=start)

    def is_correct(self, pid: int) -> bool:
        return pid in self._correct

    @property
    def correct_processes(self) -> FrozenSet[int]:
        """The correct process indices, as a cached immutable view.

        This is read inside hot predicates, so it must not copy: the view is
        built once per topology change and shared between calls.
        """
        view = self._correct_view
        if view is None:
            view = self._correct_view = frozenset(self._correct)
        return view

    @property
    def faulty_processes(self) -> Set[int]:
        return set(range(self.system.n)) - self._correct

    # ------------------------------------------------------------------
    # Event scheduling
    # ------------------------------------------------------------------
    def _push(self, time: float, kind: str, target: int, data: Any) -> None:
        self._sequence += 1
        _heappush(self._queue, (time, self._sequence, kind, target, data))

    def transmit(self, sender: int, receiver: int, envelope: Envelope) -> None:
        """Send a message from ``sender`` to ``receiver`` (called by processes)."""
        self.system.validate_process(receiver)
        send_time = self.time
        sender_correct = sender in self._correct
        self.metrics.record_message(
            sender=sender,
            send_time=send_time,
            payload=envelope.payload,
            protocol=envelope.path,
            sender_correct=sender_correct,
        )
        if instrument.SINK is not None:
            payload = envelope.payload
            kind = payload[0] if type(payload) is tuple and payload else type(payload).__name__
            instrument.SINK.add(
                ("transmit", envelope.path[0] if envelope.path else "?", kind, sender_correct)
            )
        # DelayModel.delivery_time is final and already enforces the
        # min_delay causality floor and the GST + delta contract.
        delivery_time = self.delay_model.delivery_time(sender, receiver, send_time, sender_correct)
        sequence = self._sequence + 1
        self._sequence = sequence
        _heappush(
            self._queue,
            (
                delivery_time,
                sequence,
                _MESSAGE,
                receiver,
                MessageDelivery(sender, receiver, envelope, send_time),
            ),
        )

    def schedule_timer(self, pid: int, delay: float, path: Tuple[str, ...], tag: Any) -> None:
        """Schedule a timer for a process (called by processes)."""
        if delay < 0:
            raise ValueError("timer delay must be non-negative")
        sequence = self._sequence + 1
        self._sequence = sequence
        _heappush(self._queue, (self.time + delay, sequence, _TIMER, pid, TimerExpiry(path, tag)))

    def record_decision(self, pid: int, value: Any) -> None:
        if pid in self._correct:
            if pid not in self.metrics.decisions:
                self._decided_correct += 1
            self.metrics.record_decision(pid, self.time, value)
            if instrument.SINK is not None:
                instrument.SINK.add(
                    ("decide", type(value).__name__, instrument.bucket(self._decided_correct))
                )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _start_processes(self) -> None:
        for pid, process in self.processes.items():
            self._push(self._start_times[pid], _TIMER, pid, TimerExpiry(path=_START_PATH, tag=None))
        self._started = True

    def run(
        self,
        until: Optional[float] = None,
        max_events: int = 2_000_000,
        stop_when: Optional[Callable[["Simulation"], bool]] = None,
    ) -> MetricsCollector:
        """Run the event loop.

        Args:
            until: Optional simulated-time horizon.
            max_events: Safety bound on processed events.
            stop_when: Optional predicate evaluated after every event; the
                run stops as soon as it returns ``True`` (used e.g. to stop
                once all correct processes have decided).

        Returns:
            The metrics collector (also available as ``self.metrics``).
        """
        if not self._started:
            self._start_processes()
        processed = 0
        queue = self._queue
        processes = self.processes
        heappop = heapq.heappop
        while queue:
            if processed >= max_events:
                raise SimulationError(
                    f"simulation exceeded {max_events} events; the protocol is likely not terminating"
                )
            event = heappop(queue)
            event_time = event[0]
            if until is not None and event_time > until:
                # Leave the event unprocessed and stop: the horizon is reached.
                heapq.heappush(queue, event)
                break
            if event_time > self.time:
                self.time = event_time
            # Dispatch, inlined (this is the per-event hot path).
            process = processes.get(event[3])
            if process is not None:
                if event[2] == _MESSAGE:
                    process.deliver_message(event[4])
                else:
                    expiry = event[4]
                    if expiry.path == _START_PATH:
                        process.on_start()
                    else:
                        process.deliver_timer(expiry)
            processed += 1
            self.events_processed += 1
            if stop_when is not None and stop_when(self):
                break
        return self.metrics

    def run_until_all_correct_decide(
        self, until: Optional[float] = None, max_events: int = 2_000_000
    ) -> MetricsCollector:
        """Run until every correct process has decided (or the queue drains).

        The stop condition costs O(1) per event: :meth:`record_decision`
        maintains a counter of distinct decided correct processes, so no
        per-event scan over all processes (and no per-call closure) is
        needed.
        """
        return self.run(until=until, max_events=max_events, stop_when=self._all_correct_decided_probe)

    def _all_correct_decided_probe(self, _simulation: Optional["Simulation"] = None) -> bool:
        return self._decided_correct >= len(self._correct)

    # ------------------------------------------------------------------
    # Correctness checks used by tests and experiments
    # ------------------------------------------------------------------
    def all_correct_decided(self) -> bool:
        return all(self.processes[pid].has_decided() for pid in self._correct if pid in self.processes)

    def agreement_holds(self) -> bool:
        """No two correct processes decided different values."""
        decided = [
            self.processes[pid].decision
            for pid in self._correct
            if pid in self.processes and self.processes[pid].has_decided()
        ]
        return all(value == decided[0] for value in decided) if decided else True

    def decisions(self) -> Dict[int, Any]:
        """Decisions of correct processes (process -> value)."""
        return {
            pid: self.processes[pid].decision
            for pid in self._correct
            if pid in self.processes and self.processes[pid].has_decided()
        }
