"""The discrete-event simulation driver.

:class:`Simulation` owns the event queue, the clock, the network delay
model, the (simulated) PKI, the fault assignment, and the complexity
metrics.  A run is fully deterministic given the system parameters, the
delay model (including its seed) and the process implementations, which is
what makes the complexity experiments reproducible.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Dict, Iterable, List, Optional, Set, Tuple, Type

from ..core.system import SystemConfig
from ..crypto.signatures import KeyAuthority
from .events import Envelope, Event, MessageDelivery, TimerExpiry
from .metrics import MetricsCollector
from .network import DelayModel
from .process import Process


class SimulationError(RuntimeError):
    """Raised when a simulation run exceeds its safety limits."""


class Simulation:
    """A single execution of the simulated distributed system."""

    def __init__(
        self,
        system: SystemConfig,
        delay_model: Optional[DelayModel] = None,
        seed: int = 0,
        authority: Optional[KeyAuthority] = None,
    ):
        self.system = system
        self.delay_model = delay_model if delay_model is not None else DelayModel(seed=seed)
        self.authority = authority if authority is not None else KeyAuthority(system.n, seed=seed)
        self.metrics = MetricsCollector(gst=self.delay_model.gst)
        self.time = 0.0
        self.processes: Dict[int, Process] = {}
        self._correct: Set[int] = set()
        self._queue: List[Event] = []
        self._sequence = 0
        self._started = False
        self._start_times: Dict[int, float] = {}

    # ------------------------------------------------------------------
    # Topology construction
    # ------------------------------------------------------------------
    def add_process(self, process: Process, correct: bool = True, start_time: float = 0.0) -> Process:
        """Register a process implementation for one process index.

        Args:
            process: The process object (its ``pid`` selects the slot).
            correct: Whether the process counts as correct for the metrics
                and the correctness checks.  Byzantine behaviours are added
                with ``correct=False``.
            start_time: When the process begins executing.  The paper assumes
                correct processes start at or before GST; this is asserted.
        """
        if process.pid in self.processes:
            raise ValueError(f"process {process.pid} already added")
        if correct and start_time > self.delay_model.gst:
            raise ValueError(
                f"correct process {process.pid} would start at {start_time}, after GST="
                f"{self.delay_model.gst}; the model requires correct processes to start by GST"
            )
        self.processes[process.pid] = process
        if correct:
            self._correct.add(process.pid)
        self._start_times[process.pid] = start_time
        return process

    def populate(
        self,
        process_factory: Callable[[int, "Simulation"], Process],
        faulty: Iterable[int] = (),
        faulty_factory: Optional[Callable[[int, "Simulation"], Process]] = None,
        start_times: Optional[Dict[int, float]] = None,
    ) -> None:
        """Build the whole system from factories.

        Correct processes are created with ``process_factory``.  Faulty
        indices either get a Byzantine process from ``faulty_factory`` or are
        left silent (crashed from the start) when no factory is given.
        """
        faulty_set = set(faulty)
        if len(faulty_set) > self.system.t:
            raise ValueError(
                f"{len(faulty_set)} faulty processes exceed the threshold t={self.system.t}"
            )
        times = start_times or {}
        for pid in range(self.system.n):
            start = times.get(pid, 0.0)
            if pid in faulty_set:
                if faulty_factory is not None:
                    self.add_process(faulty_factory(pid, self), correct=False, start_time=start)
                continue
            self.add_process(process_factory(pid, self), correct=True, start_time=start)

    def is_correct(self, pid: int) -> bool:
        return pid in self._correct

    @property
    def correct_processes(self) -> Set[int]:
        return set(self._correct)

    @property
    def faulty_processes(self) -> Set[int]:
        return set(range(self.system.n)) - self._correct

    # ------------------------------------------------------------------
    # Event scheduling
    # ------------------------------------------------------------------
    def _push(self, time: float, kind: str, target: int, data: Any) -> None:
        self._sequence += 1
        heapq.heappush(self._queue, Event(time=time, sequence=self._sequence, kind=kind, target=target, data=data))

    def transmit(self, sender: int, receiver: int, envelope: Envelope) -> None:
        """Send a message from ``sender`` to ``receiver`` (called by processes)."""
        self.system.validate_process(receiver)
        sender_correct = self.is_correct(sender)
        self.metrics.record_message(
            sender=sender,
            send_time=self.time,
            payload=envelope.payload,
            protocol=envelope.path,
            sender_correct=sender_correct,
        )
        # DelayModel.delivery_time is final and already enforces the
        # min_delay causality floor and the GST + delta contract.
        delivery_time = self.delay_model.delivery_time(sender, receiver, self.time, sender_correct)
        self._push(
            delivery_time,
            Event.MESSAGE,
            receiver,
            MessageDelivery(sender=sender, receiver=receiver, envelope=envelope, send_time=self.time),
        )

    def schedule_timer(self, pid: int, delay: float, path: Tuple[str, ...], tag: Any) -> None:
        """Schedule a timer for a process (called by processes)."""
        if delay < 0:
            raise ValueError("timer delay must be non-negative")
        self._push(self.time + delay, Event.TIMER, pid, TimerExpiry(path=path, tag=tag))

    def record_decision(self, pid: int, value: Any) -> None:
        if self.is_correct(pid):
            self.metrics.record_decision(pid, self.time, value)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _start_processes(self) -> None:
        for pid, process in self.processes.items():
            self._push(self._start_times[pid], Event.TIMER, pid, TimerExpiry(path=("__start__",), tag=None))
        self._started = True

    def run(
        self,
        until: Optional[float] = None,
        max_events: int = 2_000_000,
        stop_when: Optional[Callable[["Simulation"], bool]] = None,
    ) -> MetricsCollector:
        """Run the event loop.

        Args:
            until: Optional simulated-time horizon.
            max_events: Safety bound on processed events.
            stop_when: Optional predicate evaluated after every event; the
                run stops as soon as it returns ``True`` (used e.g. to stop
                once all correct processes have decided).

        Returns:
            The metrics collector (also available as ``self.metrics``).
        """
        if not self._started:
            self._start_processes()
        processed = 0
        while self._queue:
            if processed >= max_events:
                raise SimulationError(
                    f"simulation exceeded {max_events} events; the protocol is likely not terminating"
                )
            event = heapq.heappop(self._queue)
            if until is not None and event.time > until:
                # Leave the event unprocessed and stop: the horizon is reached.
                heapq.heappush(self._queue, event)
                break
            self.time = max(self.time, event.time)
            self._dispatch(event)
            processed += 1
            if stop_when is not None and stop_when(self):
                break
        return self.metrics

    def run_until_all_correct_decide(
        self, until: Optional[float] = None, max_events: int = 2_000_000
    ) -> MetricsCollector:
        """Run until every correct process has decided (or the queue drains)."""
        return self.run(
            until=until,
            max_events=max_events,
            stop_when=lambda sim: all(
                sim.processes[pid].has_decided() for pid in sim.correct_processes
            ),
        )

    def _dispatch(self, event: Event) -> None:
        process = self.processes.get(event.target)
        if process is None:
            return
        if event.kind == Event.MESSAGE:
            process.deliver_message(event.data)
        elif event.kind == Event.TIMER:
            expiry: TimerExpiry = event.data
            if expiry.path == ("__start__",):
                process.on_start()
            else:
                process.deliver_timer(expiry)

    # ------------------------------------------------------------------
    # Correctness checks used by tests and experiments
    # ------------------------------------------------------------------
    def all_correct_decided(self) -> bool:
        return all(self.processes[pid].has_decided() for pid in self._correct if pid in self.processes)

    def agreement_holds(self) -> bool:
        """No two correct processes decided different values."""
        decided = [
            self.processes[pid].decision
            for pid in self._correct
            if pid in self.processes and self.processes[pid].has_decided()
        ]
        return all(value == decided[0] for value in decided) if decided else True

    def decisions(self) -> Dict[int, Any]:
        """Decisions of correct processes (process -> value)."""
        return {
            pid: self.processes[pid].decision
            for pid in self._correct
            if pid in self.processes and self.processes[pid].has_decided()
        }
