"""Byzantine behaviours and fault-injection helpers.

The paper's model allows up to ``t`` processes to behave arbitrarily.  This
module collects the behaviours used by the tests and experiments:

* :class:`SilentProcess` — crashed from the very beginning (takes no step);
  this is the behaviour of faulty processes in the paper's *canonical*
  executions.
* :class:`CrashProcess` — behaves correctly until a configurable time, then
  stops (crash failure).
* :class:`EquivocatingProposer` — sends different (properly signed by itself)
  proposals to different processes in the vector-consensus proposal phase,
  the textbook equivocation attack against the dissemination layer.
* :class:`MessageDroppingProcess` — wraps a correct implementation but drops
  a configurable fraction of its outgoing messages (used for robustness and
  failure-injection tests).
* :class:`QuadSplitBrainLeader` — a colluding Byzantine leader for the Quad
  protocol that drives two disjoint halves of the correct processes to
  conflicting decisions; it succeeds exactly when ``n <= 3t`` (two
  ``n - t`` quorums need not intersect in a correct process), which is the
  resilience bound of the paper's Theorem 1 made executable.

The individual-fault behaviours only ever use their own signing key, so the
simulated PKI's unforgeability assumption is never violated.  The split-brain
leader additionally produces threshold shares for its *fellow corrupted*
processes: in the paper's model all ``t`` corruptions are controlled by a
single adversary entity that knows every corrupted key, so colluding shares
are model-faithful — no correct process's key is ever used.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, Optional

from .events import Envelope, MessageDelivery
from .process import Process
from .simulation import Simulation


class SilentProcess(Process):
    """A faulty process that never takes any computational step."""

    def on_start(self) -> None:  # pragma: no cover - intentionally empty
        pass

    def on_unrouted_message(self, delivery: MessageDelivery) -> None:  # pragma: no cover
        pass


class CrashProcess(Process):
    """Behaves like a wrapped correct process until ``crash_time``, then goes silent."""

    def __init__(self, pid: int, simulation: Simulation, inner_factory: Callable[[int, Simulation], Process], crash_time: float):
        super().__init__(pid, simulation)
        self.crash_time = crash_time
        self._crashed = False
        self._inner = inner_factory(pid, _ForwardingShim(self, simulation))

    def on_start(self) -> None:
        if self.now >= self.crash_time:
            self._crashed = True
            return
        self._inner.on_start()

    def deliver_message(self, delivery: MessageDelivery) -> None:
        if self._check_crashed():
            return
        self._inner.deliver_message(delivery)

    def deliver_timer(self, expiry) -> None:
        if self._check_crashed():
            return
        self._inner.deliver_timer(expiry)

    def _check_crashed(self) -> bool:
        if not self._crashed and self.now >= self.crash_time:
            self._crashed = True
        return self._crashed


class _ForwardingShim:
    """Presents a :class:`Simulation`-like facade to a wrapped inner process.

    Outgoing traffic from the inner process is attributed to the outer
    (faulty) process and suppressed once it has crashed.
    """

    def __init__(self, outer: Process, simulation: Simulation):
        self._outer = outer
        self._simulation = simulation
        self.system = simulation.system
        self.authority = simulation.authority
        self.delay_model = simulation.delay_model

    @property
    def time(self) -> float:
        return self._simulation.time

    def is_correct(self, pid: int) -> bool:
        return self._simulation.is_correct(pid)

    def transmit(self, sender: int, receiver: int, envelope: Envelope) -> None:
        if isinstance(self._outer, CrashProcess) and self._outer._check_crashed():
            return
        self._simulation.transmit(self._outer.pid, receiver, envelope)

    def schedule_timer(self, pid: int, delay: float, path, tag) -> None:
        self._simulation.schedule_timer(self._outer.pid, delay, path, tag)

    def record_decision(self, pid: int, value: Any) -> None:
        # Decisions of faulty processes are not part of the correctness metrics.
        pass


class MessageDroppingProcess(Process):
    """Wraps a correct implementation but silently drops some outgoing messages."""

    def __init__(
        self,
        pid: int,
        simulation: Simulation,
        inner_factory: Callable[[int, Simulation], Process],
        drop_probability: float = 0.5,
        seed: int = 0,
    ):
        super().__init__(pid, simulation)
        if not 0.0 <= drop_probability <= 1.0:
            raise ValueError("drop_probability must be in [0, 1]")
        self.drop_probability = drop_probability
        self._rng = random.Random(seed * 1_000_003 + pid)
        shim = _DroppingShim(self, simulation, self.drop_probability, self._rng)
        self._inner = inner_factory(pid, shim)

    def on_start(self) -> None:
        self._inner.on_start()

    def deliver_message(self, delivery: MessageDelivery) -> None:
        self._inner.deliver_message(delivery)

    def deliver_timer(self, expiry) -> None:
        self._inner.deliver_timer(expiry)


class _DroppingShim(_ForwardingShim):
    def __init__(self, outer: Process, simulation: Simulation, drop_probability: float, rng: random.Random):
        super().__init__(outer, simulation)
        self._drop_probability = drop_probability
        self._rng = rng

    def transmit(self, sender: int, receiver: int, envelope: Envelope) -> None:
        if self._rng.random() < self._drop_probability:
            return
        self._simulation.transmit(self._outer.pid, receiver, envelope)


class EquivocatingProposer(Process):
    """Byzantine proposer that equivocates in the proposal/dissemination phase.

    It sends a different, properly self-signed proposal to every other
    process under a configurable module path (by default the proposal phase
    of the authenticated vector consensus).  It then stays silent, which
    stresses the protocol's handling of inconsistent Byzantine input without
    ever forging another process's signature.
    """

    def __init__(
        self,
        pid: int,
        simulation: Simulation,
        target_path: tuple,
        value_for_receiver: Optional[Callable[[int], Any]] = None,
        message_builder: Optional[Callable[["EquivocatingProposer", int, Any], Any]] = None,
    ):
        super().__init__(pid, simulation)
        self.target_path = tuple(target_path)
        self.value_for_receiver = value_for_receiver or (lambda receiver: ("equivocation", receiver))
        self.message_builder = message_builder

    def on_start(self) -> None:
        for receiver in range(self.n):
            value = self.value_for_receiver(receiver)
            if self.message_builder is not None:
                payload = self.message_builder(self, receiver, value)
            else:
                payload = value
            self.send_raw(receiver, Envelope(self.target_path, payload))


class QuadSplitBrainLeader(Process):
    """Colluding Byzantine leader that splits Quad into two decision brains.

    The attack (executable form of the paper's ``n > 3t`` necessity
    argument): the first corrupted process leads view ``n - t + 1`` under
    Quad's round-robin assignment.  Correct replicas advance views on
    synchronized local timers, so they all sit in that view during a known
    window.  Under a :class:`~repro.sim.network.StalledDelayModel` that
    favours the corrupted processes, the leader

    1. sends *conflicting* ``PROPOSE`` messages to two disjoint halves of the
       correct processes (each value carries a proof the protocol's
       ``verify`` accepts);
    2. collects each half's ``PREPARE_VOTE`` threshold shares promptly
       (replica-to-leader traffic is favoured);
    3. tops each half's votes up with shares minted for its *fellow
       corrupted* processes — the single adversary entity controls all ``t``
       corrupted keys, so this never touches a correct process's key — and
       combines two valid :class:`~repro.consensus.quad.PrepareCertificate`
       objects;
    4. repeats the same trick for the commit phase and sends each half its
       own valid ``DECIDE`` certificate.

    Each half needs ``quorum - t = n - 2t`` correct votes, so with the
    correct processes split ``floor((n-t)/2)`` / the rest the attack closes
    both certificates iff ``n <= 3t``; at ``n > 3t`` one half falls short,
    agreement survives, and the run degrades to a liveness hiccup that heals
    at GST.  Decisions are sticky (first one wins), so the split persists
    when the stall lifts and the halves' decision relays finally cross.

    Only the first corrupted index runs the attack; the remaining corrupted
    processes stay silent (their keys are what the leader mints shares for).
    """

    def __init__(
        self,
        pid: int,
        simulation: Simulation,
        values: tuple = ("splitA", "splitB"),
        proof_for: Optional[Callable[[Any], Any]] = None,
        view_duration: float = 8.0,
        attack_offset: float = 0.2,
    ):
        super().__init__(pid, simulation)
        from ..crypto.threshold import ThresholdScheme

        system = simulation.system
        delta = simulation.delay_model.delta
        self.colluders = tuple(range(system.n - system.t, system.n))
        self.attack_view = system.n - system.t + 1
        self.view_duration = view_duration * delta
        self.attack_offset = attack_offset * delta
        self.values = tuple(values)
        # Quad's external validity predicate is scenario-defined; the attack
        # needs proofs that predicate accepts, so the proof builder is a knob.
        self.proof_for = proof_for if proof_for is not None else (lambda value: ("ok", value))
        self._scheme = ThresholdScheme(simulation.authority, threshold=system.quorum)
        self._sides: Dict[str, tuple] = {}  # value digest -> (value, half members)
        self._prepare_votes: Dict[str, Dict[int, Any]] = {}
        self._commit_votes: Dict[str, Dict[int, Any]] = {}
        self._precommitted: set = set()
        self._decided: set = set()

    def on_start(self) -> None:
        if self.pid != self.colluders[0]:
            return  # fellow corrupted processes take no step of their own
        from ..crypto.hashing import digest

        correct = sorted(set(range(self.n)) - set(self.colluders))
        half = len(correct) // 2
        if half == 0:
            return  # no two non-empty halves to split
        value_a, value_b = self.values[0], self.values[1]
        self._sides = {
            digest(value_a): (value_a, tuple(correct[:half])),
            digest(value_b): (value_b, tuple(correct[half:])),
        }
        # Fire just after every correct replica has entered the attack view.
        at = (self.attack_view - 1) * self.view_duration + self.attack_offset
        self.set_timer_raw(max(at - self.now, 0.0), (), "splitbrain")

    def on_timer(self, tag: Any) -> None:
        if tag != "splitbrain":
            return
        view = self.attack_view
        for value, members in self._sides.values():
            payload = ("propose", view, value, self.proof_for(value), None)
            for receiver in members:
                self.send_raw(receiver, Envelope(("quad",), payload))

    def deliver_message(self, delivery: MessageDelivery) -> None:
        payload = delivery.envelope.payload
        if not isinstance(payload, tuple) or len(payload) != 4:
            return
        kind, view, value_digest, share = payload
        if view != self.attack_view or value_digest not in self._sides:
            return
        if kind == "prepare_vote":
            self._collect(delivery.sender, value_digest, share, phase="prepare")
        elif kind == "commit_vote":
            self._collect(delivery.sender, value_digest, share, phase="commit")

    def _collect(self, sender: int, value_digest: str, share: Any, phase: str) -> None:
        from ..consensus.quad import PrepareCertificate

        votes = (self._prepare_votes if phase == "prepare" else self._commit_votes).setdefault(
            value_digest, {}
        )
        votes[sender] = share
        closed = self._precommitted if phase == "prepare" else self._decided
        needed_correct = max(self.system.quorum - len(self.colluders), 1)
        if len(votes) < needed_correct or value_digest in closed:
            return
        closed.add(value_digest)
        view = self.attack_view
        message = (phase, view, value_digest)
        shares = list(votes.values()) + [
            self._scheme.partial_sign(colluder, message) for colluder in self.colluders
        ]
        signature = self._scheme.combine(shares, message)
        value, members = self._sides[value_digest]
        proof = self.proof_for(value)
        if phase == "prepare":
            certificate = PrepareCertificate(view=view, value_digest=value_digest, signature=signature)
            payload = ("precommit", view, value, proof, certificate)
        else:
            payload = ("decide", view, value, proof, signature)
        for receiver in members:
            self.send_raw(receiver, Envelope(("quad",), payload))


def silent_factory(pid: int, simulation: Simulation) -> Process:
    """Factory for silent faulty processes (canonical-execution adversary)."""
    return SilentProcess(pid, simulation)


def crash_factory(
    inner_factory: Callable[[int, Simulation], Process], crash_time: float
) -> Callable[[int, Simulation], Process]:
    """Factory building processes that crash at ``crash_time``."""

    def build(pid: int, simulation: Simulation) -> Process:
        return CrashProcess(pid, simulation, inner_factory, crash_time)

    return build


def dropping_factory(
    inner_factory: Callable[[int, Simulation], Process], drop_probability: float, seed: int = 0
) -> Callable[[int, Simulation], Process]:
    """Factory building processes that drop a fraction of their outgoing messages."""

    def build(pid: int, simulation: Simulation) -> Process:
        return MessageDroppingProcess(pid, simulation, inner_factory, drop_probability, seed)

    return build


def equivocating_factory(
    target_path: tuple,
    value_for_receiver: Callable[[int, int], Any],
    message_builder: Optional[Callable[[EquivocatingProposer, int, Any], Any]] = None,
) -> Callable[[int, Simulation], Process]:
    """Factory building equivocating proposers for :meth:`Simulation.populate`.

    Unlike :class:`EquivocatingProposer`'s own ``value_for_receiver`` (which
    sees only the receiver), the callable here receives ``(pid, receiver)``
    so that several Byzantine proposers built from one factory equivocate
    with distinct value families.
    """

    def build(pid: int, simulation: Simulation) -> Process:
        return EquivocatingProposer(
            pid,
            simulation,
            target_path=target_path,
            value_for_receiver=lambda receiver: value_for_receiver(pid, receiver),
            message_builder=message_builder,
        )

    return build
