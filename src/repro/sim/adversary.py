"""Byzantine behaviours and fault-injection helpers.

The paper's model allows up to ``t`` processes to behave arbitrarily.  This
module collects the behaviours used by the tests and experiments:

* :class:`SilentProcess` — crashed from the very beginning (takes no step);
  this is the behaviour of faulty processes in the paper's *canonical*
  executions.
* :class:`CrashProcess` — behaves correctly until a configurable time, then
  stops (crash failure).
* :class:`EquivocatingProposer` — sends different (properly signed by itself)
  proposals to different processes in the vector-consensus proposal phase,
  the textbook equivocation attack against the dissemination layer.
* :class:`MessageDroppingProcess` — wraps a correct implementation but drops
  a configurable fraction of its outgoing messages (used for robustness and
  failure-injection tests).

All behaviours only use their own signing key: the simulated PKI's
unforgeability assumption is never violated.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, Optional

from .events import Envelope, MessageDelivery
from .process import Process
from .simulation import Simulation


class SilentProcess(Process):
    """A faulty process that never takes any computational step."""

    def on_start(self) -> None:  # pragma: no cover - intentionally empty
        pass

    def on_unrouted_message(self, delivery: MessageDelivery) -> None:  # pragma: no cover
        pass


class CrashProcess(Process):
    """Behaves like a wrapped correct process until ``crash_time``, then goes silent."""

    def __init__(self, pid: int, simulation: Simulation, inner_factory: Callable[[int, Simulation], Process], crash_time: float):
        super().__init__(pid, simulation)
        self.crash_time = crash_time
        self._crashed = False
        self._inner = inner_factory(pid, _ForwardingShim(self, simulation))

    def on_start(self) -> None:
        if self.now >= self.crash_time:
            self._crashed = True
            return
        self._inner.on_start()

    def deliver_message(self, delivery: MessageDelivery) -> None:
        if self._check_crashed():
            return
        self._inner.deliver_message(delivery)

    def deliver_timer(self, expiry) -> None:
        if self._check_crashed():
            return
        self._inner.deliver_timer(expiry)

    def _check_crashed(self) -> bool:
        if not self._crashed and self.now >= self.crash_time:
            self._crashed = True
        return self._crashed


class _ForwardingShim:
    """Presents a :class:`Simulation`-like facade to a wrapped inner process.

    Outgoing traffic from the inner process is attributed to the outer
    (faulty) process and suppressed once it has crashed.
    """

    def __init__(self, outer: Process, simulation: Simulation):
        self._outer = outer
        self._simulation = simulation
        self.system = simulation.system
        self.authority = simulation.authority
        self.delay_model = simulation.delay_model

    @property
    def time(self) -> float:
        return self._simulation.time

    def is_correct(self, pid: int) -> bool:
        return self._simulation.is_correct(pid)

    def transmit(self, sender: int, receiver: int, envelope: Envelope) -> None:
        if isinstance(self._outer, CrashProcess) and self._outer._check_crashed():
            return
        self._simulation.transmit(self._outer.pid, receiver, envelope)

    def schedule_timer(self, pid: int, delay: float, path, tag) -> None:
        self._simulation.schedule_timer(self._outer.pid, delay, path, tag)

    def record_decision(self, pid: int, value: Any) -> None:
        # Decisions of faulty processes are not part of the correctness metrics.
        pass


class MessageDroppingProcess(Process):
    """Wraps a correct implementation but silently drops some outgoing messages."""

    def __init__(
        self,
        pid: int,
        simulation: Simulation,
        inner_factory: Callable[[int, Simulation], Process],
        drop_probability: float = 0.5,
        seed: int = 0,
    ):
        super().__init__(pid, simulation)
        if not 0.0 <= drop_probability <= 1.0:
            raise ValueError("drop_probability must be in [0, 1]")
        self.drop_probability = drop_probability
        self._rng = random.Random(seed * 1_000_003 + pid)
        shim = _DroppingShim(self, simulation, self.drop_probability, self._rng)
        self._inner = inner_factory(pid, shim)

    def on_start(self) -> None:
        self._inner.on_start()

    def deliver_message(self, delivery: MessageDelivery) -> None:
        self._inner.deliver_message(delivery)

    def deliver_timer(self, expiry) -> None:
        self._inner.deliver_timer(expiry)


class _DroppingShim(_ForwardingShim):
    def __init__(self, outer: Process, simulation: Simulation, drop_probability: float, rng: random.Random):
        super().__init__(outer, simulation)
        self._drop_probability = drop_probability
        self._rng = rng

    def transmit(self, sender: int, receiver: int, envelope: Envelope) -> None:
        if self._rng.random() < self._drop_probability:
            return
        self._simulation.transmit(self._outer.pid, receiver, envelope)


class EquivocatingProposer(Process):
    """Byzantine proposer that equivocates in the proposal/dissemination phase.

    It sends a different, properly self-signed proposal to every other
    process under a configurable module path (by default the proposal phase
    of the authenticated vector consensus).  It then stays silent, which
    stresses the protocol's handling of inconsistent Byzantine input without
    ever forging another process's signature.
    """

    def __init__(
        self,
        pid: int,
        simulation: Simulation,
        target_path: tuple,
        value_for_receiver: Optional[Callable[[int], Any]] = None,
        message_builder: Optional[Callable[["EquivocatingProposer", int, Any], Any]] = None,
    ):
        super().__init__(pid, simulation)
        self.target_path = tuple(target_path)
        self.value_for_receiver = value_for_receiver or (lambda receiver: ("equivocation", receiver))
        self.message_builder = message_builder

    def on_start(self) -> None:
        for receiver in range(self.n):
            value = self.value_for_receiver(receiver)
            if self.message_builder is not None:
                payload = self.message_builder(self, receiver, value)
            else:
                payload = value
            self.send_raw(receiver, Envelope(self.target_path, payload))


def silent_factory(pid: int, simulation: Simulation) -> Process:
    """Factory for silent faulty processes (canonical-execution adversary)."""
    return SilentProcess(pid, simulation)


def crash_factory(
    inner_factory: Callable[[int, Simulation], Process], crash_time: float
) -> Callable[[int, Simulation], Process]:
    """Factory building processes that crash at ``crash_time``."""

    def build(pid: int, simulation: Simulation) -> Process:
        return CrashProcess(pid, simulation, inner_factory, crash_time)

    return build


def dropping_factory(
    inner_factory: Callable[[int, Simulation], Process], drop_probability: float, seed: int = 0
) -> Callable[[int, Simulation], Process]:
    """Factory building processes that drop a fraction of their outgoing messages."""

    def build(pid: int, simulation: Simulation) -> Process:
        return MessageDroppingProcess(pid, simulation, inner_factory, drop_probability, seed)

    return build


def equivocating_factory(
    target_path: tuple,
    value_for_receiver: Callable[[int, int], Any],
    message_builder: Optional[Callable[[EquivocatingProposer, int, Any], Any]] = None,
) -> Callable[[int, Simulation], Process]:
    """Factory building equivocating proposers for :meth:`Simulation.populate`.

    Unlike :class:`EquivocatingProposer`'s own ``value_for_receiver`` (which
    sees only the receiver), the callable here receives ``(pid, receiver)``
    so that several Byzantine proposers built from one factory equivocate
    with distinct value families.
    """

    def build(pid: int, simulation: Simulation) -> Process:
        return EquivocatingProposer(
            pid,
            simulation,
            target_path=target_path,
            value_for_receiver=lambda receiver: value_for_receiver(pid, receiver),
            message_builder=message_builder,
        )

    return build
