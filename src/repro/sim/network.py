"""Partially synchronous network model (GST and delta) with adversarial scheduling.

The paper uses the standard partially synchronous model of Dwork, Lynch and
Stockmeyer: every execution has an unknown Global Stabilization Time (GST)
and a known bound ``delta`` such that messages sent by correct processes are
delivered within ``delta`` after GST (and messages sent before GST are
delivered by ``GST + delta`` at the latest).  Before GST the adversary fully
controls delays.

The delay-model contract
========================

For every message from a **correct** sender, the delivery time satisfies::

    send_time + min_delay  <=  delivery  <=  max(send_time, gst) + delta

Messages from Byzantine senders carry no upper bound in the model (only the
``min_delay`` causality floor), which is the freedom the lower-bound and
partitioning adversaries exploit.

The contract is enforced in exactly one place — :meth:`DelayModel.delivery_time`,
which is final (subclasses attempting to override it are rejected at class
definition time).  Concrete network behaviours are *candidate-only*: they
override the :meth:`DelayModel._candidate_delay` hook, which proposes a
delivery time that the base class then clamps to the contract.  The optional
``schedule_hook`` gives per-message adversarial control on top of any
candidate distribution (it too is clamped for correct senders); both the
lower-bound and triviality experiments rely on it to delay specific link
groups until after a chosen time.

Shipped candidate models:

* :class:`DelayModel` — uniform jitter in ``[min_delay, delta]`` after GST and
  uniform in the full contract window before GST;
* :class:`SynchronousDelayModel` — GST = 0 (synchronous from the start);
* :class:`PartitionDelayModel` — two process groups do not hear from each
  other until a release time (the Lemma 2 partitioning argument);
* :class:`JitteredDelayModel` — heavy-tailed (Pareto) jitter before GST,
  modelling an unstable network that calms down at GST;
* :class:`StalledDelayModel` — traffic among non-favoured processes stalls
  until a release time while the favoured (Byzantine) processes communicate
  promptly in both directions — the scheduling behind the split-brain attack
  at ``n <= 3t``.
"""

from __future__ import annotations

import random
from typing import Callable, Optional

ScheduleHook = Callable[[int, int, float, float], Optional[float]]
"""Adversarial override: ``(sender, receiver, send_time, candidate_delivery) -> delivery or None``."""


class DelayModel:
    """Computes delivery times under partial synchrony.

    ``delivery_time`` is **final**: it asks :meth:`_candidate_delay` (and then
    the ``schedule_hook``, if any) for a candidate delivery time and clamps
    the result to the partial-synchrony contract for correct senders, so no
    subclass or hook can accidentally violate the model.  Subclasses express
    network behaviours by overriding :meth:`_candidate_delay` only.

    Args:
        gst: The Global Stabilization Time of the execution.
        delta: The known post-GST delay bound.
        min_delay: Minimum link latency (must be positive so that causality
            is preserved and the event loop always makes progress).
        seed: Seed for the deterministic pseudo-random delays.
        schedule_hook: Optional adversarial override consulted for every
            message; it may return an explicit delivery time, which is then
            clamped to the partial-synchrony contract for correct senders.
    """

    def __init__(
        self,
        gst: float = 0.0,
        delta: float = 1.0,
        min_delay: float = 0.1,
        seed: int = 0,
        schedule_hook: Optional[ScheduleHook] = None,
    ):
        if delta <= 0:
            raise ValueError("delta must be positive")
        if min_delay <= 0 or min_delay > delta:
            raise ValueError("min_delay must satisfy 0 < min_delay <= delta")
        if gst < 0:
            raise ValueError("GST must be non-negative")
        self.gst = gst
        self.delta = delta
        self.min_delay = min_delay
        self.schedule_hook = schedule_hook
        self._rng = random.Random(seed)

    def __init_subclass__(cls, **kwargs):
        super().__init_subclass__(**kwargs)
        for final in ("delivery_time", "latest_delivery"):
            if final in cls.__dict__:
                raise TypeError(
                    f"{cls.__name__} must not override {final}(); the partial-synchrony "
                    "contract is enforced there — override _candidate_delay() instead"
                )

    # ------------------------------------------------------------------
    def latest_delivery(self, send_time: float) -> float:
        """The latest time the partial-synchrony contract allows for delivery."""
        return max(send_time, self.gst) + self.delta

    def delivery_time(self, sender: int, receiver: int, send_time: float, sender_correct: bool) -> float:
        """Return the delivery time for a message (final; see module docstring).

        Messages from correct senders always respect the partial-synchrony
        contract; messages from Byzantine senders may be delayed arbitrarily
        by the candidate model or the hook (they carry no guarantee in the
        model) but never below the ``min_delay`` causality floor.
        """
        earliest = send_time + self.min_delay
        candidate = self._candidate_delay(sender, receiver, send_time)
        if self.schedule_hook is not None:
            override = self.schedule_hook(sender, receiver, send_time, candidate)
            if override is not None:
                candidate = override
        chosen = candidate if candidate > earliest else earliest
        if sender_correct:
            # Inline latest_delivery(): this method is final, runs once per
            # message, and the bound is two comparisons.
            gst = self.gst
            latest = (send_time if send_time > gst else gst) + self.delta
            if chosen > latest:
                chosen = latest
        return chosen

    def _candidate_delay(self, sender: int, receiver: int, send_time: float) -> float:
        """Propose a delivery time (the extension point for network behaviours).

        The returned candidate may fall outside the contract window; the base
        class clamps it.  The default draws uniform jitter from
        ``[min_delay, delta]`` after GST, and uniformly over the full allowed
        window before GST.
        """
        min_delay = self.min_delay
        earliest = send_time + min_delay
        if send_time >= self.gst:
            return earliest + self._rng.random() * (self.delta - min_delay)
        return earliest + self._rng.random() * (self.latest_delivery(send_time) - earliest)


class SynchronousDelayModel(DelayModel):
    """A network that is synchronous from the very beginning (GST = 0).

    Used by the lower-bound experiment (the adversary of Theorem 4 operates
    in a fully synchronous execution) and as the fast path for complexity
    sweeps.
    """

    def __init__(self, delta: float = 1.0, min_delay: float = 0.1, seed: int = 0,
                 schedule_hook: Optional[ScheduleHook] = None):
        super().__init__(gst=0.0, delta=delta, min_delay=min_delay, seed=seed, schedule_hook=schedule_hook)


class PartitionDelayModel(DelayModel):
    """Delays all communication between two process groups until a release time.

    This is the scheduling used by the classical partitioning argument
    (Lemma 2 of the paper): groups ``A`` and ``C`` do not hear from each
    other until after both sides have decided.  The release time is also used
    as the GST unless an explicit one is given.  Either way the base class
    clamps correct-sender deliveries to the contract, so passing an explicit
    ``gst < release_time`` shortens the partition for correct senders instead
    of silently violating partial synchrony (Byzantine cross-group messages
    stay delayed until release).
    """

    def __init__(
        self,
        group_a: set,
        group_c: set,
        release_time: float,
        delta: float = 1.0,
        min_delay: float = 0.1,
        seed: int = 0,
        gst: Optional[float] = None,
        schedule_hook: Optional[ScheduleHook] = None,
    ):
        self.group_a = frozenset(group_a)
        self.group_c = frozenset(group_c)
        if self.group_a & self.group_c:
            raise ValueError("partitioned groups must be disjoint")
        self.release_time = release_time
        super().__init__(
            gst=release_time if gst is None else gst,
            delta=delta,
            min_delay=min_delay,
            seed=seed,
            schedule_hook=schedule_hook,
        )

    def _candidate_delay(self, sender: int, receiver: int, send_time: float) -> float:
        crosses = (sender in self.group_a and receiver in self.group_c) or (
            sender in self.group_c and receiver in self.group_a
        )
        if crosses and send_time < self.release_time:
            return self.release_time + self.min_delay + self._rng.random() * (self.delta - self.min_delay)
        # Within a group (or involving processes outside both groups) the
        # adversary chooses prompt, synchronous-looking delays even before
        # GST: this is exactly the scheduling freedom the partitioning
        # argument exploits.
        return send_time + self.min_delay + self._rng.random() * (self.delta - self.min_delay)


class StalledDelayModel(DelayModel):
    """Stalls traffic among non-favoured processes until ``stall_until``.

    The adversarial scheduling behind the split-brain attack on leader-based
    consensus at ``n <= 3t``: messages between *non-favoured* processes
    (typically the correct ones) are held back until ``stall_until``, while
    any message with a favoured sender **or** receiver — the adversary's own
    traffic in both directions — is delivered promptly.  A Byzantine leader
    can therefore run private vote-collection conversations with disjoint
    groups of correct processes faster than those groups can compare notes.

    ``stall_until`` doubles as the GST, so the stall is exactly the pre-GST
    scheduling freedom the partial-synchrony model grants: the base-class
    clamp still bounds every correct-sender delivery by
    ``max(send, gst) + delta``, and after ``stall_until`` the network behaves
    like the default prompt model.
    """

    def __init__(
        self,
        favoured: set,
        stall_until: float,
        delta: float = 1.0,
        min_delay: float = 0.1,
        seed: int = 0,
        schedule_hook: Optional[ScheduleHook] = None,
    ):
        self.favoured = frozenset(favoured)
        self.stall_until = stall_until
        super().__init__(
            gst=stall_until,
            delta=delta,
            min_delay=min_delay,
            seed=seed,
            schedule_hook=schedule_hook,
        )

    def _candidate_delay(self, sender: int, receiver: int, send_time: float) -> float:
        prompt = send_time + self.min_delay + self._rng.random() * (self.delta - self.min_delay)
        if send_time >= self.stall_until or sender in self.favoured or receiver in self.favoured:
            return prompt
        return self.stall_until + self.min_delay + self._rng.random() * (self.delta - self.min_delay)


class JitteredDelayModel(DelayModel):
    """Heavy-tailed (Pareto) message jitter before GST, calm after it.

    Before GST every message draws an extra Pareto-distributed delay on top
    of ``min_delay`` — most messages arrive promptly, a heavy tail straggles
    (and is clamped to ``GST + delta`` by the base class for correct
    senders).  After GST the network behaves like the default uniform model.
    This models the "unstable network that eventually stabilises" reading of
    partial synchrony, in between the benign ``eventual`` model and the fully
    adversarial partition schedules.

    Args:
        alpha: Pareto tail exponent (smaller = heavier tail; must be > 0).
        jitter_scale: Scale of the pre-GST jitter, in time units (defaults
            to ``delta``).
    """

    def __init__(
        self,
        gst: float = 5.0,
        delta: float = 1.0,
        min_delay: float = 0.1,
        seed: int = 0,
        alpha: float = 1.5,
        jitter_scale: Optional[float] = None,
        schedule_hook: Optional[ScheduleHook] = None,
    ):
        if alpha <= 0:
            raise ValueError("alpha must be positive")
        super().__init__(gst=gst, delta=delta, min_delay=min_delay, seed=seed, schedule_hook=schedule_hook)
        self.alpha = alpha
        self.jitter_scale = delta if jitter_scale is None else jitter_scale

    def _candidate_delay(self, sender: int, receiver: int, send_time: float) -> float:
        earliest = send_time + self.min_delay
        if send_time >= self.gst:
            return earliest + self._rng.random() * (self.delta - self.min_delay)
        # paretovariate() >= 1, so the extra jitter starts at 0 and has a
        # heavy right tail; stragglers are clamped to GST + delta by the base.
        return earliest + (self._rng.paretovariate(self.alpha) - 1.0) * self.jitter_scale
