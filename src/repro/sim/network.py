"""Partially synchronous network model (GST and delta) with adversarial scheduling.

The paper uses the standard partially synchronous model of Dwork, Lynch and
Stockmeyer: every execution has an unknown Global Stabilization Time (GST)
and a known bound ``delta`` such that messages sent by correct processes are
delivered within ``delta`` after GST (and messages sent before GST are
delivered by ``GST + delta`` at the latest).  Before GST the adversary fully
controls delays.

:class:`DelayModel` implements that contract; subclasses and the
``schedule_hook`` give the lower-bound and triviality experiments the
fine-grained adversarial control the proofs rely on (delaying specific link
groups until after a chosen time).
"""

from __future__ import annotations

import random
from typing import Callable, Optional

ScheduleHook = Callable[[int, int, float, float], Optional[float]]
"""Adversarial override: ``(sender, receiver, send_time, default_delivery) -> delivery or None``."""


class DelayModel:
    """Computes delivery times under partial synchrony.

    Args:
        gst: The Global Stabilization Time of the execution.
        delta: The known post-GST delay bound.
        min_delay: Minimum link latency (must be positive so that causality
            is preserved and the event loop always makes progress).
        seed: Seed for the deterministic pseudo-random pre-GST delays.
        schedule_hook: Optional adversarial override consulted for every
            message; it may return an explicit delivery time, which is then
            clamped to the partial-synchrony contract for correct senders.
    """

    def __init__(
        self,
        gst: float = 0.0,
        delta: float = 1.0,
        min_delay: float = 0.1,
        seed: int = 0,
        schedule_hook: Optional[ScheduleHook] = None,
    ):
        if delta <= 0:
            raise ValueError("delta must be positive")
        if min_delay <= 0 or min_delay > delta:
            raise ValueError("min_delay must satisfy 0 < min_delay <= delta")
        if gst < 0:
            raise ValueError("GST must be non-negative")
        self.gst = gst
        self.delta = delta
        self.min_delay = min_delay
        self.schedule_hook = schedule_hook
        self._rng = random.Random(seed)

    # ------------------------------------------------------------------
    def latest_delivery(self, send_time: float) -> float:
        """The latest time the partial-synchrony contract allows for delivery."""
        return max(send_time, self.gst) + self.delta

    def delivery_time(self, sender: int, receiver: int, send_time: float, sender_correct: bool) -> float:
        """Return the delivery time for a message.

        Messages from correct senders always respect the partial-synchrony
        contract; messages from Byzantine senders may be delayed arbitrarily
        by the hook (they carry no guarantee in the model), but default to
        the same distribution.
        """
        earliest = send_time + self.min_delay
        latest = self.latest_delivery(send_time)
        default = self._default_delay(send_time, earliest, latest)
        if self.schedule_hook is not None:
            override = self.schedule_hook(sender, receiver, send_time, default)
            if override is not None:
                chosen = max(override, earliest)
                if sender_correct:
                    chosen = min(chosen, latest)
                return chosen
        return default

    def _default_delay(self, send_time: float, earliest: float, latest: float) -> float:
        if send_time >= self.gst:
            return min(earliest + self._rng.random() * (self.delta - self.min_delay), latest)
        return earliest + self._rng.random() * (latest - earliest)


class SynchronousDelayModel(DelayModel):
    """A network that is synchronous from the very beginning (GST = 0).

    Used by the lower-bound experiment (the adversary of Theorem 4 operates
    in a fully synchronous execution) and as the fast path for complexity
    sweeps.
    """

    def __init__(self, delta: float = 1.0, min_delay: float = 0.1, seed: int = 0,
                 schedule_hook: Optional[ScheduleHook] = None):
        super().__init__(gst=0.0, delta=delta, min_delay=min_delay, seed=seed, schedule_hook=schedule_hook)


class PartitionDelayModel(DelayModel):
    """Delays all communication between two process groups until a release time.

    This is the scheduling used by the classical partitioning argument
    (Lemma 2 of the paper): groups ``A`` and ``C`` do not hear from each
    other until after both sides have decided.  The release time is also used
    as the GST unless an explicit one is given, so the partial-synchrony
    contract is respected.
    """

    def __init__(
        self,
        group_a: set,
        group_c: set,
        release_time: float,
        delta: float = 1.0,
        min_delay: float = 0.1,
        seed: int = 0,
        gst: Optional[float] = None,
    ):
        self.group_a = frozenset(group_a)
        self.group_c = frozenset(group_c)
        if self.group_a & self.group_c:
            raise ValueError("partitioned groups must be disjoint")
        self.release_time = release_time
        super().__init__(
            gst=release_time if gst is None else gst,
            delta=delta,
            min_delay=min_delay,
            seed=seed,
        )

    def delivery_time(self, sender: int, receiver: int, send_time: float, sender_correct: bool) -> float:
        crosses = (sender in self.group_a and receiver in self.group_c) or (
            sender in self.group_c and receiver in self.group_a
        )
        if crosses and send_time < self.release_time:
            return self.release_time + self.min_delay + self._rng.random() * (self.delta - self.min_delay)
        # Within a group (or involving the Byzantine processes) the adversary
        # chooses prompt, synchronous-looking delays even before GST: this is
        # exactly the scheduling freedom the partitioning argument exploits.
        return send_time + self.min_delay + self._rng.random() * (self.delta - self.min_delay)
