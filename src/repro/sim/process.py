"""Processes and composable protocol modules.

A :class:`Process` is one node of the simulated system.  Protocol logic is
written as :class:`ProtocolModule` subclasses organised in a tree inside the
process — for example Universal owns a vector-consensus module, which owns a
Quad module, which owns a best-effort broadcast module.  Messages carry the
destination module's path so that each module only ever sees its own
messages, which keeps every protocol implementation self-contained and lets
them be stacked exactly the way the paper's pseudocode stacks its building
blocks ("Uses: ...").
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Iterable, Optional, Tuple

from .events import Envelope, MessageDelivery, TimerExpiry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.system import SystemConfig
    from ..crypto.signatures import KeyAuthority
    from .simulation import Simulation


class Process:
    """A simulated process hosting a tree of protocol modules.

    Subclasses (or users composing modules directly) override :meth:`on_start`
    to build their protocol stack and kick it off, and may override
    :meth:`on_decide` to observe decisions.
    """

    def __init__(self, pid: int, simulation: "Simulation"):
        simulation.system.validate_process(pid)
        self.pid = pid
        self.simulation = simulation
        self.decision: Optional[Any] = None
        self.decision_time: Optional[float] = None
        self._modules: Dict[Tuple[str, ...], ProtocolModule] = {}

    # ------------------------------------------------------------------
    # Environment accessors
    # ------------------------------------------------------------------
    @property
    def system(self) -> "SystemConfig":
        return self.simulation.system

    @property
    def n(self) -> int:
        return self.simulation.system.n

    @property
    def now(self) -> float:
        return self.simulation.time

    @property
    def authority(self) -> "KeyAuthority":
        return self.simulation.authority

    @property
    def is_correct(self) -> bool:
        return self.simulation.is_correct(self.pid)

    def has_decided(self) -> bool:
        return self.decision is not None

    # ------------------------------------------------------------------
    # Module management and routing
    # ------------------------------------------------------------------
    def register_module(self, module: "ProtocolModule") -> None:
        if module.path in self._modules:
            raise ValueError(f"module path {module.path} already registered on process {self.pid}")
        self._modules[module.path] = module

    def module_at(self, path: Tuple[str, ...]) -> Optional["ProtocolModule"]:
        return self._modules.get(path)

    def deliver_message(self, delivery: MessageDelivery) -> None:
        """Route an incoming message to the addressed module (harness callback)."""
        module = self._modules.get(delivery.envelope.path)
        if module is None:
            self.on_unrouted_message(delivery)
            return
        module.on_message(delivery.sender, delivery.envelope.payload)

    def deliver_timer(self, expiry: TimerExpiry) -> None:
        """Route a timer expiry to the addressed module (harness callback)."""
        if expiry.path == ():
            self.on_timer(expiry.tag)
            return
        module = self._modules.get(expiry.path)
        if module is not None:
            module.on_timer(expiry.tag)

    # ------------------------------------------------------------------
    # Raw communication primitives (used by modules)
    # ------------------------------------------------------------------
    def send_raw(self, receiver: int, envelope: Envelope) -> None:
        self.simulation.transmit(self.pid, receiver, envelope)

    def set_timer_raw(self, delay: float, path: Tuple[str, ...], tag: Any) -> None:
        self.simulation.schedule_timer(self.pid, delay, path, tag)

    def decide(self, value: Any) -> None:
        """Record this process's (first) decision."""
        if self.decision is None:
            self.decision = value
            self.decision_time = self.now
            self.simulation.record_decision(self.pid, value)
            self.on_decide(value)

    # ------------------------------------------------------------------
    # Hooks for subclasses
    # ------------------------------------------------------------------
    def on_start(self) -> None:
        """Called once when the process starts executing (build the stack here)."""

    def on_decide(self, value: Any) -> None:
        """Called when the process decides (after the decision is recorded)."""

    def on_timer(self, tag: Any) -> None:
        """Called for process-level timers (path ``()``)."""

    def on_unrouted_message(self, delivery: MessageDelivery) -> None:
        """Called for messages addressed to a module this process never built.

        The default ignores them, which is the right behaviour for Byzantine
        or crashed processes and for protocol messages arriving after the
        local stack was torn down.
        """


class ProtocolModule:
    """Base class for protocol building blocks.

    Each module owns a unique path in its process and communicates only with
    the module at the same path on other processes.  Submodules are created
    by passing ``parent``; their names must be unique among siblings.
    """

    def __init__(self, process: Process, name: str, parent: Optional["ProtocolModule"] = None):
        self.process = process
        self.name = name
        self.parent = parent
        self.path: Tuple[str, ...] = (parent.path + (name,)) if parent is not None else (name,)
        process.register_module(self)

    # ------------------------------------------------------------------
    # Environment accessors
    # ------------------------------------------------------------------
    @property
    def pid(self) -> int:
        return self.process.pid

    @property
    def n(self) -> int:
        return self.process.n

    @property
    def system(self) -> "SystemConfig":
        return self.process.system

    @property
    def now(self) -> float:
        return self.process.now

    @property
    def authority(self) -> "KeyAuthority":
        return self.process.authority

    # ------------------------------------------------------------------
    # Communication
    # ------------------------------------------------------------------
    def send(self, receiver: int, payload: Any) -> None:
        """Send a point-to-point message to the peer module on ``receiver``."""
        self.process.send_raw(receiver, Envelope(self.path, payload))

    def broadcast(self, payload: Any, include_self: bool = True) -> None:
        """Send ``payload`` to the peer module on every process.

        The broadcast costs ``n`` messages (or ``n - 1`` without self), which
        matches the accounting used by the paper's complexity statements.
        """
        send = self.send
        own_pid = self.pid
        for receiver in range(self.n):
            if not include_self and receiver == own_pid:
                continue
            send(receiver, payload)

    def send_to_all(self, receivers: Iterable[int], payload: Any) -> None:
        """Send the same payload to an explicit set of receivers."""
        for receiver in receivers:
            self.send(receiver, payload)

    def set_timer(self, delay: float, tag: Any) -> None:
        """Schedule :meth:`on_timer` to fire after ``delay`` time units."""
        self.process.set_timer_raw(delay, self.path, tag)

    # ------------------------------------------------------------------
    # Handlers to override
    # ------------------------------------------------------------------
    def on_message(self, sender: int, payload: Any) -> None:
        """Handle a message from the peer module on process ``sender``."""

    def on_timer(self, tag: Any) -> None:
        """Handle a timer scheduled with :meth:`set_timer`."""
