"""Message and communication (word) complexity accounting.

The paper defines the message complexity of an execution as the number of
messages sent by *correct* processes during ``[GST, infinity)``, and the
communication complexity as the number of *words* sent in the same window,
where a word contains a constant number of values, hashes and signatures.

:class:`MetricsCollector` implements exactly that accounting, and also keeps
auxiliary counters (total messages including pre-GST and Byzantine traffic,
per-protocol breakdowns) used by the experiment reports.

:func:`word_size` is called once per sent message, which makes it hot in
every sweep.  It therefore dispatches on exact payload type first (the
common shapes — tuples, scalars, envelopes — never reach a ``getattr``),
and the collector memoizes the size of the most recent payload *object*: a
broadcast hands the identical payload object to all ``n`` receivers, so
``n - 1`` of those lookups are one identity check.  The estimates
themselves are unchanged from the original recursive implementation.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Dict, Tuple

from .events import Envelope


def word_size(payload: Any) -> int:
    """Estimate the size of a protocol payload in words.

    The convention follows the paper's: a value, hash, signature or other
    atomic field costs one word; containers cost the sum of their elements;
    objects may override the estimate by exposing a ``words`` property (the
    signature and threshold-signature classes do).
    """
    # Exact-type fast paths.  Only exact builtins are safe to shortcut: a
    # subclass could expose a ``words`` override, which the generic path
    # below honours first, exactly like the original implementation.
    kind = type(payload)
    if kind is tuple or kind is list:
        total = 0
        for item in payload:
            total += word_size(item)
        return total if total > 0 else 1
    if kind is str or kind is int or kind is float or kind is bool:
        return 1
    if payload is None:
        return 0
    if kind is bytes or kind is bytearray:
        # Serialised blobs: one word per 64 bytes (a word holds a constant
        # number of values/signatures, and values/signatures serialise to a
        # few dozen bytes each).
        return (len(payload) + 63) // 64 or 1
    if kind is Envelope:
        # stable_fields() == (path, payload): a path of module names costs
        # one word per segment (min 1), plus the inner payload.
        return (len(payload.path) or 1) + word_size(payload.payload)
    # Generic path: same checks, same order, as the original implementation.
    words = getattr(payload, "words", None)
    if isinstance(words, int):
        return max(1, words)
    if isinstance(payload, (bytes, bytearray)):
        return max(1, (len(payload) + 63) // 64)
    if isinstance(payload, (bool, int, float, str)):
        return 1
    if isinstance(payload, (list, tuple, set, frozenset)):
        return max(1, sum(word_size(item) for item in payload))
    if isinstance(payload, dict):
        return max(1, sum(word_size(key) + word_size(value) for key, value in payload.items()))
    pairs = getattr(payload, "pairs", None)
    if pairs is not None:
        # An input configuration of m process-proposal pairs occupies m words.
        return max(1, len(pairs))
    stable_fields = getattr(payload, "stable_fields", None)
    if callable(stable_fields):
        return word_size(stable_fields())
    return 1


@dataclass
class MetricsCollector:
    """Accumulates complexity metrics during a simulation run.

    Attributes:
        gst: The execution's Global Stabilization Time (messages sent before
            it by correct processes are excluded from the paper-style
            counters but still tracked in the ``total_*`` ones).
    """

    gst: float = 0.0
    messages_after_gst: int = 0
    words_after_gst: int = 0
    total_messages: int = 0
    total_words: int = 0
    byzantine_messages: int = 0
    per_protocol_messages: Counter = field(default_factory=Counter)
    per_sender_messages: Counter = field(default_factory=Counter)
    decisions: Dict[int, Tuple[float, Any]] = field(default_factory=dict)
    # One-slot identity memo for word_size: broadcasts send the same payload
    # object to every receiver back to back.  Payloads are treated as
    # immutable once sent (everything the protocols send is), so identity
    # implies an identical size estimate.
    _last_payload: Any = field(default=None, init=False, repr=False, compare=False)
    _last_size: int = field(default=0, init=False, repr=False, compare=False)

    def record_message(
        self,
        sender: int,
        send_time: float,
        payload: Any,
        protocol: Tuple[str, ...],
        sender_correct: bool,
    ) -> None:
        """Record one point-to-point message send."""
        if payload is self._last_payload:
            size = self._last_size
        else:
            size = word_size(payload)
            self._last_payload = payload
            self._last_size = size
        self.total_messages += 1
        self.total_words += size
        self.per_protocol_messages[protocol[0] if protocol else "?"] += 1
        self.per_sender_messages[sender] += 1
        if not sender_correct:
            self.byzantine_messages += 1
            return
        if send_time >= self.gst:
            self.messages_after_gst += 1
            self.words_after_gst += size

    def record_decision(self, process: int, time: float, value: Any) -> None:
        """Record the first decision of a (correct) process."""
        if process not in self.decisions:
            self.decisions[process] = (time, value)

    # ------------------------------------------------------------------
    # Paper-style accessors
    # ------------------------------------------------------------------
    @property
    def message_complexity(self) -> int:
        """Messages sent by correct processes during ``[GST, infinity)``."""
        return self.messages_after_gst

    @property
    def communication_complexity(self) -> int:
        """Words sent by correct processes during ``[GST, infinity)``."""
        return self.words_after_gst

    def decision_latency(self) -> float:
        """Time at which the last recorded decision happened (0 if none)."""
        if not self.decisions:
            return 0.0
        return max(time for time, _ in self.decisions.values())

    def decided_values(self) -> Dict[int, Any]:
        """Mapping from process to decided value."""
        return {process: value for process, (_, value) in self.decisions.items()}

    def summary(self) -> Dict[str, Any]:
        """A plain-dictionary summary used by benchmarks and examples."""
        return {
            "message_complexity": self.message_complexity,
            "communication_complexity": self.communication_complexity,
            "total_messages": self.total_messages,
            "total_words": self.total_words,
            "byzantine_messages": self.byzantine_messages,
            "decisions": dict(self.decisions),
            "decision_latency": self.decision_latency(),
            "per_protocol_messages": dict(self.per_protocol_messages),
        }
