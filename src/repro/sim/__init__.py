"""Partially synchronous discrete-event simulator: the execution substrate."""

from .adversary import (
    CrashProcess,
    EquivocatingProposer,
    MessageDroppingProcess,
    QuadSplitBrainLeader,
    SilentProcess,
    crash_factory,
    dropping_factory,
    equivocating_factory,
    silent_factory,
)
from .events import Envelope, Event, MessageDelivery, TimerExpiry
from .metrics import MetricsCollector, word_size
from .network import (
    DelayModel,
    JitteredDelayModel,
    PartitionDelayModel,
    StalledDelayModel,
    SynchronousDelayModel,
)
from .process import Process, ProtocolModule
from .simulation import Simulation, SimulationError

__all__ = [
    "Simulation",
    "SimulationError",
    "Process",
    "ProtocolModule",
    "Envelope",
    "Event",
    "MessageDelivery",
    "TimerExpiry",
    "DelayModel",
    "SynchronousDelayModel",
    "PartitionDelayModel",
    "JitteredDelayModel",
    "StalledDelayModel",
    "MetricsCollector",
    "word_size",
    "SilentProcess",
    "CrashProcess",
    "MessageDroppingProcess",
    "EquivocatingProposer",
    "QuadSplitBrainLeader",
    "silent_factory",
    "crash_factory",
    "dropping_factory",
    "equivocating_factory",
]
