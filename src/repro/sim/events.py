"""Event types for the discrete-event simulator.

The simulator processes two kinds of events: message deliveries and local
timer expirations.  Events are totally ordered by ``(time, sequence)`` where
the sequence number breaks ties deterministically, so a simulation run is a
pure function of its inputs (processes, delay model, seed).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Tuple


@dataclass(frozen=True)
class Envelope:
    """A routed protocol message.

    Protocol modules are organised in a tree inside each process (for example
    Universal -> vector consensus -> Quad -> best-effort broadcast).  The
    ``path`` identifies the destination module within the receiving process;
    the ``payload`` is the module-level message.
    """

    path: Tuple[str, ...]
    payload: Any

    def stable_fields(self) -> tuple:
        return (self.path, self.payload)


@dataclass(order=True)
class Event:
    """A scheduled simulator event."""

    time: float
    sequence: int
    kind: str = field(compare=False)
    target: int = field(compare=False)
    data: Any = field(compare=False)

    MESSAGE = "message"
    TIMER = "timer"


@dataclass(frozen=True)
class MessageDelivery:
    """Payload of a message-delivery event."""

    sender: int
    receiver: int
    envelope: Envelope
    send_time: float


@dataclass(frozen=True)
class TimerExpiry:
    """Payload of a timer event."""

    path: Tuple[str, ...]
    tag: Any
