"""Event types for the discrete-event simulator.

The simulator processes two kinds of events: message deliveries and local
timer expirations.  Events are totally ordered by ``(time, sequence)`` where
the sequence number breaks ties deterministically, so a simulation run is a
pure function of its inputs (processes, delay model, seed).

Hot-path layout: the event queue itself holds plain ``(time, sequence,
kind, target, data)`` tuples — heap sifting then costs one C-level tuple
comparison per level instead of a generated dataclass ``__lt__``, and since
the sequence number is unique the comparison never reaches the non-ordered
fields, preserving the exact ``(time, sequence)`` order of the original
dataclass events.  :class:`Event` is a ``NamedTuple`` over the same five
fields, so code that builds or inspects events by attribute keeps working
and instances compare equal to the raw tuples in the queue.

The payload classes (:class:`Envelope`, :class:`MessageDelivery`,
:class:`TimerExpiry`) are allocated once per message/timer, which makes
their constructors hot.  They are plain ``__slots__`` classes with
handwritten ``__init__`` — a frozen dataclass would route every field
through ``object.__setattr__``, roughly doubling the allocation cost — but
they keep dataclass-style value equality, hashing and repr.  Treat them as
immutable: nothing in the simulator mutates a payload after construction,
and the metrics layer memoizes on payload identity.
"""

from __future__ import annotations

from typing import Any, NamedTuple, Tuple


class Envelope:
    """A routed protocol message.

    Protocol modules are organised in a tree inside each process (for example
    Universal -> vector consensus -> Quad -> best-effort broadcast).  The
    ``path`` identifies the destination module within the receiving process;
    the ``payload`` is the module-level message.
    """

    __slots__ = ("path", "payload")

    def __init__(self, path: Tuple[str, ...], payload: Any):
        self.path = path
        self.payload = payload

    def stable_fields(self) -> tuple:
        return (self.path, self.payload)

    def __repr__(self) -> str:
        return f"Envelope(path={self.path!r}, payload={self.payload!r})"

    def __eq__(self, other: Any) -> bool:
        if other.__class__ is Envelope:
            return self.path == other.path and self.payload == other.payload
        return NotImplemented

    def __hash__(self) -> int:
        return hash((Envelope, self.path, self.payload))


class Event(NamedTuple):
    """A scheduled simulator event (interchangeable with the queue's raw tuples)."""

    time: float
    sequence: int
    kind: str
    target: int
    data: Any


Event.MESSAGE = "message"
Event.TIMER = "timer"


class MessageDelivery:
    """Payload of a message-delivery event."""

    __slots__ = ("sender", "receiver", "envelope", "send_time")

    def __init__(self, sender: int, receiver: int, envelope: Envelope, send_time: float):
        self.sender = sender
        self.receiver = receiver
        self.envelope = envelope
        self.send_time = send_time

    def __repr__(self) -> str:
        return (
            f"MessageDelivery(sender={self.sender!r}, receiver={self.receiver!r}, "
            f"envelope={self.envelope!r}, send_time={self.send_time!r})"
        )

    def __eq__(self, other: Any) -> bool:
        if other.__class__ is MessageDelivery:
            return (
                self.sender == other.sender
                and self.receiver == other.receiver
                and self.envelope == other.envelope
                and self.send_time == other.send_time
            )
        return NotImplemented

    def __hash__(self) -> int:
        return hash((MessageDelivery, self.sender, self.receiver, self.envelope, self.send_time))


class TimerExpiry:
    """Payload of a timer event."""

    __slots__ = ("path", "tag")

    def __init__(self, path: Tuple[str, ...], tag: Any):
        self.path = path
        self.tag = tag

    def __repr__(self) -> str:
        return f"TimerExpiry(path={self.path!r}, tag={self.tag!r})"

    def __eq__(self, other: Any) -> bool:
        if other.__class__ is TimerExpiry:
            return self.path == other.path and self.tag == other.tag
        return NotImplemented

    def __hash__(self) -> int:
        return hash((TimerExpiry, self.path, self.tag))
