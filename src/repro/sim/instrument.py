"""Lightweight coverage probes for the fuzzer (disabled unless collecting).

The coverage-guided fuzzer (:mod:`repro.fuzz`) scores executions by which
protocol decision points they reach and how close quorum thresholds came to
tipping.  This module is the probe primitive: a single module-global sink
(``SINK``) that call sites test inline::

    from . import instrument
    ...
    if instrument.SINK is not None:
        instrument.SINK.add(("quad.prepare", instrument.margin(len(votes), quorum)))

When no collection is active ``SINK`` is ``None`` and a probe costs one
attribute read plus a comparison — cheap enough to live on the simulator's
per-event hot path without moving the benchmark regression gate.  Probes
must be *read-only* observations of deterministic protocol state: they can
never alter an execution, so instrumented and uninstrumented runs of the
same ``(scenario, seed)`` stay byte-identical.

This module is a leaf on purpose: it imports nothing from :mod:`repro`, so
any layer (``sim``, ``consensus``, ``broadcast``) can probe without import
cycles.  Collection is process-local (the fuzz worker wraps one run at a
time), never nested, and reset in a ``finally`` so a crashed run cannot
leave a stale sink armed.
"""

from __future__ import annotations

from typing import Optional, Set, Tuple

ProbeSite = Tuple[object, ...]

SINK: Optional[Set[ProbeSite]] = None
"""The active collection sink, or ``None`` when coverage is off.

Call sites read this attribute directly (``instrument.SINK``) instead of
going through a function so the disabled path stays a two-instruction guard.
"""


def margin(have: int, need: int) -> str:
    """Bucket a quorum margin: how many more arrivals would cross ``need``.

    ``met`` means the threshold is reached; ``m1``/``m2`` are one / two short
    — the violation-proximity signal the fuzzer rewards (a quorum one vote
    away from tipping marks an execution worth mutating further); anything
    further out is just ``far`` so the coverage space stays small.
    """
    short = need - have
    if short <= 0:
        return "met"
    if short <= 2:
        return f"m{short}"
    return "far"


def bucket(value: int, cap: int = 8) -> int:
    """Clamp an unbounded counter (round, view) into a small coverage bucket."""
    return value if value < cap else cap


def begin_collection() -> None:
    """Install a fresh sink; subsequent probes record into it."""
    global SINK
    SINK = set()


def end_collection() -> Set[ProbeSite]:
    """Uninstall the sink and return everything collected (idempotent)."""
    global SINK
    sites, SINK = SINK, None
    return sites if sites is not None else set()


def active() -> bool:
    return SINK is not None


def canonical_coverage(sites: Set[ProbeSite]) -> Tuple[str, ...]:
    """Render collected probe tuples as a sorted tuple of stable strings.

    The canonical form is what gets scored, diffed and persisted in the
    corpus table, so it must be deterministic across processes: plain
    ``str`` on ints/strings only (probes are built from those).
    """
    return tuple(sorted(":".join(str(part) for part in site) for site in sites))
