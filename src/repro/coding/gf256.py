"""Arithmetic in the finite field GF(2^8).

The ADD data-dissemination primitive (Appendix B.3) relies on an erasure /
error-correcting code; this module provides the underlying field arithmetic
for the Reed-Solomon codec in :mod:`repro.coding.reed_solomon`.  The field is
GF(2^8) with the AES-style reduction polynomial ``x^8 + x^4 + x^3 + x^2 + 1``
(0x11D) and generator 2; elements are the integers 0..255.
"""

from __future__ import annotations

from typing import List, Sequence

_PRIMITIVE_POLYNOMIAL = 0x11D
FIELD_SIZE = 256

_EXP: List[int] = [0] * (FIELD_SIZE * 2)
_LOG: List[int] = [0] * FIELD_SIZE


def _build_tables() -> None:
    value = 1
    for power in range(FIELD_SIZE - 1):
        _EXP[power] = value
        _LOG[value] = power
        value <<= 1
        if value & 0x100:
            value ^= _PRIMITIVE_POLYNOMIAL
    for power in range(FIELD_SIZE - 1, 2 * FIELD_SIZE):
        _EXP[power] = _EXP[power - (FIELD_SIZE - 1)]


_build_tables()


def _check(value: int) -> int:
    if not 0 <= value < FIELD_SIZE:
        raise ValueError(f"GF(256) elements are integers in [0, 255], got {value}")
    return value


def add(a: int, b: int) -> int:
    """Field addition (XOR)."""
    return _check(a) ^ _check(b)


def subtract(a: int, b: int) -> int:
    """Field subtraction (identical to addition in characteristic 2)."""
    return add(a, b)


def multiply(a: int, b: int) -> int:
    """Field multiplication via log/antilog tables."""
    _check(a), _check(b)
    if a == 0 or b == 0:
        return 0
    return _EXP[_LOG[a] + _LOG[b]]


def inverse(a: int) -> int:
    """Multiplicative inverse; raises on zero."""
    _check(a)
    if a == 0:
        raise ZeroDivisionError("0 has no multiplicative inverse in GF(256)")
    return _EXP[(FIELD_SIZE - 1) - _LOG[a]]


def divide(a: int, b: int) -> int:
    """Field division ``a / b``."""
    return multiply(a, inverse(b))


def power(a: int, exponent: int) -> int:
    """Raise ``a`` to a (possibly negative) integer power."""
    _check(a)
    if a == 0:
        if exponent <= 0:
            raise ZeroDivisionError("0 cannot be raised to a non-positive power")
        return 0
    log = (_LOG[a] * exponent) % (FIELD_SIZE - 1)
    return _EXP[log]


def poly_eval(coefficients: Sequence[int], x: int) -> int:
    """Evaluate a polynomial (coefficients in increasing degree order) at ``x``."""
    result = 0
    for coefficient in reversed(list(coefficients)):
        result = add(multiply(result, x), coefficient)
    return result


def poly_add(p: Sequence[int], q: Sequence[int]) -> List[int]:
    """Add two polynomials given in increasing degree order."""
    longer, shorter = (list(p), list(q)) if len(p) >= len(q) else (list(q), list(p))
    for index, coefficient in enumerate(shorter):
        longer[index] = add(longer[index], coefficient)
    return longer


def poly_multiply(p: Sequence[int], q: Sequence[int]) -> List[int]:
    """Multiply two polynomials given in increasing degree order."""
    result = [0] * (len(p) + len(q) - 1) if p and q else [0]
    for i, a in enumerate(p):
        if a == 0:
            continue
        for j, b in enumerate(q):
            if b == 0:
                continue
            result[i + j] = add(result[i + j], multiply(a, b))
    return result


def poly_divmod(numerator: Sequence[int], denominator: Sequence[int]) -> tuple:
    """Polynomial long division: returns ``(quotient, remainder)``.

    Both inputs are coefficient lists in increasing degree order; the
    denominator must be non-zero.
    """
    num = list(numerator)
    den = list(denominator)
    while den and den[-1] == 0:
        den.pop()
    if not den:
        raise ZeroDivisionError("polynomial division by zero")
    quotient = [0] * max(1, len(num) - len(den) + 1)
    remainder = list(num)
    lead_inverse = inverse(den[-1])
    for shift in range(len(num) - len(den), -1, -1):
        coefficient = multiply(remainder[shift + len(den) - 1], lead_inverse)
        quotient[shift] = coefficient
        if coefficient != 0:
            for index, den_coefficient in enumerate(den):
                remainder[shift + index] = subtract(
                    remainder[shift + index], multiply(den_coefficient, coefficient)
                )
    while len(remainder) > 1 and remainder[-1] == 0:
        remainder.pop()
    return quotient, remainder
