"""Arithmetic in the finite field GF(2^8), vectorized for the codec hot path.

The ADD data-dissemination primitive (Appendix B.3) relies on an erasure /
error-correcting code; this module provides the underlying field arithmetic
for the Reed-Solomon codec in :mod:`repro.coding.reed_solomon`.  The field is
GF(2^8) with the AES-style reduction polynomial ``x^8 + x^4 + x^3 + x^2 + 1``
(0x11D) and generator 2; elements are the integers 0..255.

Two layers of API:

* Scalar operations (:func:`add`, :func:`multiply`, ...) validate their
  operands — they are the boundary of the module and are what tests and
  one-off callers use.  Inside their bodies everything is a table lookup.
* Row operations (:func:`scalar_multiply_row`, :func:`xor_rows`) treat a
  ``bytes``/``bytearray`` as a vector of field elements and run at C speed:
  multiplication by a scalar is one ``bytes.translate`` over the
  precomputed 256x256 multiplication table, addition is one big-integer
  XOR.  The codec and polynomial helpers are built on these, with no
  per-element bounds checks inside inner loops.

The original element-at-a-time implementation is retained verbatim in
:mod:`repro.coding.reference` and the differential property suite pins this
module to it byte for byte.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

_PRIMITIVE_POLYNOMIAL = 0x11D
FIELD_SIZE = 256

_EXP: List[int] = [0] * (FIELD_SIZE * 2)
_LOG: List[int] = [0] * FIELD_SIZE


def _build_tables() -> None:
    value = 1
    for power in range(FIELD_SIZE - 1):
        _EXP[power] = value
        _LOG[value] = power
        value <<= 1
        if value & 0x100:
            value ^= _PRIMITIVE_POLYNOMIAL
    for power in range(FIELD_SIZE - 1, 2 * FIELD_SIZE):
        _EXP[power] = _EXP[power - (FIELD_SIZE - 1)]


_build_tables()


def _build_multiplication_table() -> Tuple[bytes, ...]:
    exp, log = _EXP, _LOG
    rows = [bytes(FIELD_SIZE)]  # row 0: everything maps to 0
    for a in range(1, FIELD_SIZE):
        log_a = log[a]
        rows.append(bytes([0] + [exp[log_a + log[b]] for b in range(1, FIELD_SIZE)]))
    return tuple(rows)


MUL_TABLE: Tuple[bytes, ...] = _build_multiplication_table()
"""The full 256x256 product table: ``MUL_TABLE[a][b] == a * b`` in GF(256).

Each row is a 256-byte ``bytes`` object, which makes it directly usable as a
``bytes.translate`` mapping — multiplying a whole row of field elements by
``a`` is a single C-level call.
"""

_INVERSE: bytes = bytes([0] + [_EXP[(FIELD_SIZE - 1) - _LOG[a]] for a in range(1, FIELD_SIZE)])


def _check(value: int) -> int:
    if not 0 <= value < FIELD_SIZE:
        raise ValueError(f"GF(256) elements are integers in [0, 255], got {value}")
    return value


# ----------------------------------------------------------------------
# Scalar operations (validated API boundary)
# ----------------------------------------------------------------------
def add(a: int, b: int) -> int:
    """Field addition (XOR)."""
    return _check(a) ^ _check(b)


def subtract(a: int, b: int) -> int:
    """Field subtraction (identical to addition in characteristic 2)."""
    return add(a, b)


def multiply(a: int, b: int) -> int:
    """Field multiplication via the precomputed product table."""
    if 0 <= a < FIELD_SIZE and 0 <= b < FIELD_SIZE:
        return MUL_TABLE[a][b]
    _check(a), _check(b)
    raise AssertionError("unreachable")  # pragma: no cover


def inverse(a: int) -> int:
    """Multiplicative inverse; raises on zero."""
    _check(a)
    if a == 0:
        raise ZeroDivisionError("0 has no multiplicative inverse in GF(256)")
    return _INVERSE[a]


def divide(a: int, b: int) -> int:
    """Field division ``a / b``."""
    return multiply(a, inverse(b))


def power(a: int, exponent: int) -> int:
    """Raise ``a`` to a (possibly negative) integer power."""
    _check(a)
    if a == 0:
        if exponent <= 0:
            raise ZeroDivisionError("0 cannot be raised to a non-positive power")
        return 0
    log = (_LOG[a] * exponent) % (FIELD_SIZE - 1)
    return _EXP[log]


# ----------------------------------------------------------------------
# Row (vector) operations — the codec hot path
# ----------------------------------------------------------------------
def scalar_multiply_row(scalar: int, row: bytes) -> bytes:
    """Multiply every field element of ``row`` by ``scalar`` in one call.

    ``row`` is any bytes-like vector of GF(256) elements; the result is a
    ``bytes`` of the same length.  This is a single ``bytes.translate`` over
    the scalar's :data:`MUL_TABLE` row.
    """
    _check(scalar)
    return bytes(row).translate(MUL_TABLE[scalar])


def xor_rows(a: bytes, b: bytes) -> bytes:
    """Element-wise field addition of two equal-length rows (single big XOR)."""
    if len(a) != len(b):
        raise ValueError(f"row lengths differ: {len(a)} != {len(b)}")
    length = len(a)
    return (int.from_bytes(a, "little") ^ int.from_bytes(b, "little")).to_bytes(length, "little")


# ----------------------------------------------------------------------
# Polynomial helpers (coefficients in increasing degree order)
# ----------------------------------------------------------------------
def poly_eval(coefficients: Sequence[int], x: int) -> int:
    """Evaluate a polynomial (coefficients in increasing degree order) at ``x``.

    Horner's rule over the product table; coefficients are trusted to be
    field elements (bounds are checked at the module's scalar boundary, not
    per element inside this loop).
    """
    _check(x)
    row = MUL_TABLE[x]
    result = 0
    for index in range(len(coefficients) - 1, -1, -1):
        result = row[result] ^ coefficients[index]
    return result


def poly_add(p: Sequence[int], q: Sequence[int]) -> List[int]:
    """Add two polynomials given in increasing degree order."""
    longer, shorter = (list(p), list(q)) if len(p) >= len(q) else (list(q), list(p))
    for index, coefficient in enumerate(shorter):
        longer[index] ^= coefficient
    return longer


def poly_multiply(p: Sequence[int], q: Sequence[int]) -> List[int]:
    """Multiply two polynomials given in increasing degree order."""
    result = [0] * (len(p) + len(q) - 1) if p and q else [0]
    table = MUL_TABLE
    for i, a in enumerate(p):
        if a == 0:
            continue
        row = table[a]
        for j, b in enumerate(q):
            if b != 0:
                result[i + j] ^= row[b]
    return result


def poly_divmod(numerator: Sequence[int], denominator: Sequence[int]) -> tuple:
    """Polynomial long division: returns ``(quotient, remainder)``.

    Both inputs are coefficient lists in increasing degree order; the
    denominator must be non-zero.
    """
    num = list(numerator)
    den = list(denominator)
    while den and den[-1] == 0:
        den.pop()
    if not den:
        raise ZeroDivisionError("polynomial division by zero")
    table = MUL_TABLE
    quotient = [0] * max(1, len(num) - len(den) + 1)
    remainder = list(num)
    lead_inverse = _INVERSE[den[-1]]
    lead_row = table[lead_inverse]
    den_length = len(den)
    for shift in range(len(num) - den_length, -1, -1):
        coefficient = lead_row[remainder[shift + den_length - 1]]
        quotient[shift] = coefficient
        if coefficient != 0:
            row = table[coefficient]
            for index in range(den_length):
                remainder[shift + index] ^= row[den[index]]
    while len(remainder) > 1 and remainder[-1] == 0:
        remainder.pop()
    return quotient, remainder
