"""Numpy-accelerated GF(256) kernels: 2D table gathers over ``MUL_TABLE``.

The table-driven layer in :mod:`repro.coding.gf256` already runs single-row
operations at C speed (``bytes.translate`` + big-integer XOR), but the codec
hot paths are *matrices* of rows: an encode evaluates ``k`` coefficient rows
at ``n`` points, a corrupted decode solves one small linear system **per
mismatched chunk**.  This module lifts those loops onto numpy: the full
256x256 product table becomes one ``uint8`` array, a whole fragment matrix
is multiplied in a single 2D gather (``MUL_NP[a, b]``), and the
Berlekamp-Welch solve runs *batched* — one Gaussian elimination sweeping
every corrupted chunk simultaneously instead of one Python-level solve per
chunk (the 0.02 MB/s pathology in BENCH_hotpath.json).

Every kernel replicates the table implementation's control flow exactly —
same pivot selection, same free-variable convention, same error-count
descent — so its outputs are **byte-identical by construction**, and the
three-way differential suite (``tests/test_coding_differential.py``) pins
numpy == table == :mod:`repro.coding.reference` on every path.

Backend selection (import time, via :func:`resolve_backend`):

* ``REPRO_CODING_BACKEND=auto`` (default) — numpy kernels when numpy is
  importable *and* the workload is large enough to amortize array overhead
  (:data:`NUMPY_MIN_CHUNKS` chunks), else the table path.  Absent numpy this
  silently degrades to ``table``: the library stays stdlib-only.
* ``REPRO_CODING_BACKEND=table`` — force the pure-python table path.
* ``REPRO_CODING_BACKEND=numpy`` — force numpy for every call regardless of
  size; raises :class:`BackendUnavailableError` when numpy is missing (an
  explicit request must fail loudly, not silently degrade).

Because backends are byte-identical, the choice is *not* part of the run
store's code fingerprint semantics: a record computed under ``table`` is a
valid cache hit for a ``numpy`` sweep and vice versa.
"""

from __future__ import annotations

import os
from typing import List, Optional, Sequence

try:  # numpy is an optional accelerator, never a hard dependency
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    _np = None

from . import gf256

BACKEND_ENV = "REPRO_CODING_BACKEND"
"""Environment variable naming the coding backend (``auto``/``table``/``numpy``)."""

BACKEND_AUTO = "auto"
BACKEND_TABLE = "table"
BACKEND_NUMPY = "numpy"
_KNOWN_BACKENDS = (BACKEND_AUTO, BACKEND_TABLE, BACKEND_NUMPY)

NUMPY_MIN_CHUNKS = 16
"""The ``auto`` crossover: below this many chunks per blob the per-call numpy
overhead (array allocation, index conversion) outweighs the gather speedup
and the ``bytes.translate`` path wins — simulation payloads are tiny, bench
blobs are not.  Forced ``numpy`` ignores the crossover."""


class BackendUnavailableError(RuntimeError):
    """An explicitly requested backend cannot run in this environment."""


def numpy_available() -> bool:
    """Whether the numpy kernels can run at all."""
    return _np is not None


def resolve_backend(name: Optional[str] = None) -> str:
    """Resolve a backend request to ``auto``/``table``/``numpy``.

    ``None`` reads :data:`BACKEND_ENV` (defaulting to ``auto``).  ``auto``
    stays ``auto`` when numpy is importable (the per-call crossover decides)
    and degrades to ``table`` when it is not; an explicit ``numpy`` request
    without numpy raises :class:`BackendUnavailableError`.
    """
    requested = name if name is not None else os.environ.get(BACKEND_ENV) or BACKEND_AUTO
    requested = str(requested).strip().lower()
    if requested not in _KNOWN_BACKENDS:
        raise ValueError(
            f"unknown coding backend {requested!r}; known: {list(_KNOWN_BACKENDS)}"
        )
    if requested == BACKEND_NUMPY and _np is None:
        raise BackendUnavailableError(
            f"{BACKEND_ENV}={BACKEND_NUMPY} requested but numpy is not importable; "
            f"install numpy or use {BACKEND_AUTO}/{BACKEND_TABLE}"
        )
    if requested == BACKEND_AUTO and _np is None:
        return BACKEND_TABLE
    return requested


DEFAULT_BACKEND = resolve_backend()
"""The import-time backend selection every :class:`ReedSolomonCode` without
an explicit ``backend`` argument inherits."""


def use_numpy(backend: str, chunk_count: int) -> bool:
    """Whether ``backend`` routes a ``chunk_count``-chunk workload to numpy."""
    if backend == BACKEND_NUMPY:
        return True
    if backend == BACKEND_AUTO:
        return _np is not None and chunk_count >= NUMPY_MIN_CHUNKS
    return False


# ----------------------------------------------------------------------
# The gather tables (built once, only when numpy is importable)
# ----------------------------------------------------------------------
if _np is not None:
    MUL_NP = _np.frombuffer(b"".join(gf256.MUL_TABLE), dtype=_np.uint8).reshape(256, 256).copy()
    """``MUL_NP[a, b] == a * b`` in GF(256); one 2D gather multiplies a whole matrix."""

    INV_NP = _np.frombuffer(gf256._INVERSE, dtype=_np.uint8).copy()
    """``INV_NP[a]`` is the multiplicative inverse of ``a`` (``INV_NP[0] == 0``)."""
else:  # pragma: no cover - exercised by the no-numpy CI job
    MUL_NP = None
    INV_NP = None


def _require_numpy() -> None:
    if _np is None:  # pragma: no cover - exercised by the no-numpy CI job
        raise BackendUnavailableError("numpy kernels invoked but numpy is not importable")


def rows_matrix(rows: Sequence) -> "_np.ndarray":
    """Stack bytes-like / array-like rows into a 2D contiguous uint8 matrix.

    Accepts anything a row op accepts — ``bytes``, ``bytearray``,
    ``memoryview`` (including non-contiguous strided views), numpy arrays —
    and normalises to one ``[rows, width]`` matrix.
    """
    return _np.ascontiguousarray(
        [_np.frombuffer(bytes(row), dtype=_np.uint8) for row in rows], dtype=_np.uint8
    )


# ----------------------------------------------------------------------
# Scalar and row operations (the differential-test surface)
# ----------------------------------------------------------------------
def multiply(a, b):
    """Elementwise GF(256) product of broadcastable uint8 arrays (or scalars)."""
    _require_numpy()
    return MUL_NP[_np.asarray(a, dtype=_np.uint8), _np.asarray(b, dtype=_np.uint8)]


def inverse(a):
    """Elementwise multiplicative inverse; raises on any zero element."""
    _require_numpy()
    values = _np.asarray(a, dtype=_np.uint8)
    if not values.all():
        raise ZeroDivisionError("0 has no multiplicative inverse in GF(256)")
    return INV_NP[values]


def scalar_multiply_row(scalar: int, row) -> bytes:
    """Numpy twin of :func:`repro.coding.gf256.scalar_multiply_row`."""
    _require_numpy()
    if not 0 <= scalar < gf256.FIELD_SIZE:
        raise ValueError(f"GF(256) elements are integers in [0, 255], got {scalar}")
    return MUL_NP[scalar, _np.frombuffer(bytes(row), dtype=_np.uint8)].tobytes()


def xor_rows(a, b) -> bytes:
    """Numpy twin of :func:`repro.coding.gf256.xor_rows`."""
    _require_numpy()
    left = _np.frombuffer(bytes(a), dtype=_np.uint8)
    right = _np.frombuffer(bytes(b), dtype=_np.uint8)
    if left.shape != right.shape:
        raise ValueError(f"row lengths differ: {left.size} != {right.size}")
    return (left ^ right).tobytes()


def poly_eval_rows(coefficient_rows, points: Sequence[int]) -> "_np.ndarray":
    """Evaluate ``len(points)`` polynomials-of-rows in one batched Horner pass.

    ``coefficient_rows`` is a ``[k, C]`` matrix (or sequence of equal-length
    bytes rows): row ``r`` holds coefficient ``r`` of every chunk's
    polynomial.  Returns the ``[len(points), C]`` evaluation matrix —
    exactly what both encode (``points`` = evaluation points) and decode
    verification (``points`` = received indices) consume.
    """
    _require_numpy()
    rows = (
        _np.ascontiguousarray(coefficient_rows, dtype=_np.uint8)
        if isinstance(coefficient_rows, _np.ndarray)
        else rows_matrix(coefficient_rows)
    )
    k, width = rows.shape
    pts = _np.asarray(points, dtype=_np.intp).reshape(-1, 1)
    accumulator = _np.broadcast_to(rows[k - 1], (pts.shape[0], width)).copy()
    for row in range(k - 2, -1, -1):
        accumulator = MUL_NP[pts, accumulator]
        accumulator ^= rows[row]
    return accumulator


def encode_symbol_rows(coefficient_rows: Sequence, points: Sequence[int]) -> List[bytes]:
    """Batched Horner encode: every evaluation point over every chunk at once."""
    evaluated = poly_eval_rows(coefficient_rows, points)
    return [evaluated[index].tobytes() for index in range(evaluated.shape[0])]


def apply_basis(basis: Sequence[Sequence[int]], symbol_rows) -> "_np.ndarray":
    """``coefficients = basis @ symbols`` over GF(256), batched across chunks.

    ``basis`` is the ``[k, k]`` inverse-Vandermonde weight matrix (plain int
    lists, as cached by the codec); ``symbol_rows`` the ``[k, C]`` received
    symbol matrix.  Returns the ``[k, C]`` coefficient matrix.
    """
    _require_numpy()
    weights = _np.asarray(basis, dtype=_np.intp)
    symbols = (
        _np.ascontiguousarray(symbol_rows, dtype=_np.uint8)
        if isinstance(symbol_rows, _np.ndarray)
        else rows_matrix(symbol_rows)
    )
    # [k, k, C] product tensor, XOR-reduced over the symbol axis.
    products = MUL_NP[weights[:, :, None], symbols[None, :, :]]
    return _np.bitwise_xor.reduce(products, axis=1)


def decode_coefficient_rows(
    points: Sequence[int], data_symbols: int, symbol_matrix, basis_for
) -> "_np.ndarray":
    """Decode every chunk's data polynomial from the ``[m, chunks]`` symbol matrix.

    Two stages, both provably byte-identical to the table/reference descent:

    1. **Window scan** — interpolate through each length-``k`` window of
       received fragments (``basis_for`` supplies the cached inverse
       Vandermonde) and verify the candidate against *all* received rows in
       one batched Horner pass.  A candidate fitting a chunk with at most
       ``max_errors`` mismatches is accepted outright: two degree ``< k``
       polynomials each disagreeing with the received column on at most
       ``e`` of ``m >= k + 2e`` points agree on ``>= k`` points and are
       therefore equal, so the accepted candidate *is* the polynomial the
       Berlekamp-Welch descent would return.  Whole-fragment corruption —
       the only kind honest ADD peers ever relay — leaves some window
       clean, so real decodes finish here in a handful of matrix passes.
    2. **Faithful fallback** — chunks no window explains (adversarial
       per-chunk corruption, or garbage beyond capacity) go through
       :func:`berlekamp_welch_batch`, which replicates the scalar solver's
       error-count descent and free-variable convention exactly — including
       raising the identical :class:`~repro.coding.reed_solomon.DecodingError`
       when a chunk is undecodable.
    """
    _require_numpy()
    received = (
        _np.ascontiguousarray(symbol_matrix, dtype=_np.uint8)
        if isinstance(symbol_matrix, _np.ndarray)
        else rows_matrix(symbol_matrix)
    )
    m, chunk_count = received.shape
    k = data_symbols
    max_errors = max(0, (m - k) // 2)
    coefficients = _np.zeros((k, chunk_count), dtype=_np.uint8)
    unsolved = _np.arange(chunk_count)
    for start in range(m - k + 1):
        if not unsolved.size:
            break
        basis = basis_for(tuple(points[start : start + k]))
        columns = received[:, unsolved]
        candidate = apply_basis(basis, columns[start : start + k])
        mismatches = (poly_eval_rows(candidate, points) != columns).sum(axis=0)
        fits = mismatches <= max_errors
        if fits.any():
            coefficients[:, unsolved[fits]] = candidate[:, fits]
            unsolved = unsolved[~fits]
    if unsolved.size:
        coefficients[:, unsolved] = berlekamp_welch_batch(points, k, received[:, unsolved])
    return coefficients


# ----------------------------------------------------------------------
# Batched Berlekamp-Welch (the corrupted-decode exact path)
# ----------------------------------------------------------------------
def _solve_augmented_batch(augmented: "_np.ndarray", cols: int):
    """Batched twin of ``reed_solomon._solve_augmented``: one elimination, all chunks.

    ``augmented`` is ``[chunks, rows, cols + 1]`` (last column = RHS),
    eliminated in place.  Returns ``(solutions [chunks, cols], ok [chunks])``
    where ``ok`` is False exactly for the chunks the scalar solver returns
    ``None`` for (a zero row with non-zero RHS).  Pivot selection (first
    non-zero at or below the pivot row), the free-variables-to-zero
    convention and the consistency check replicate the scalar code path for
    path, so solved values are identical element for element.
    """
    chunk_count, rows, _width = augmented.shape
    chunk_index = _np.arange(chunk_count)
    row_index = _np.arange(rows)
    pivot_row = _np.zeros(chunk_count, dtype=_np.intp)
    # pivot_source[c, column] = the pivot row consumed by ``column`` (else -1).
    pivot_source = _np.full((chunk_count, cols), -1, dtype=_np.intp)
    for column in range(cols):
        column_values = augmented[:, :, column]
        eligible = (column_values != 0) & (row_index[None, :] >= pivot_row[:, None])
        has_pivot = eligible.any(axis=1)
        if not has_pivot.any():
            continue
        active = chunk_index[has_pivot]
        found = eligible[active].argmax(axis=1)  # first eligible row per chunk
        current = pivot_row[active]
        # Swap the found pivot row up into the pivot position.
        needs_swap = active[found != current]
        if needs_swap.size:
            up, down = pivot_row[needs_swap], found[found != pivot_row[active]]
            held = augmented[needs_swap, up, :].copy()
            augmented[needs_swap, up, :] = augmented[needs_swap, down, :]
            augmented[needs_swap, down, :] = held
        # Normalise the pivot row (multiplying by inverse(1) == 1 is a no-op,
        # so scaling unconditionally matches the scalar path's values).
        lead = augmented[active, current, column]
        augmented[active, current, :] = MUL_NP[
            INV_NP[lead][:, None], augmented[active, current, :]
        ]
        # Eliminate the column from every other row in one gather + XOR.
        pivot_rows = augmented[active, current, :]
        factors = augmented[active, :, column].copy()
        factors[_np.arange(active.size), current] = 0  # never eliminate the pivot itself
        augmented[active] ^= MUL_NP[factors[:, :, None], pivot_rows[:, None, :]]
        pivot_source[active, column] = current
        pivot_row[active] = current + 1
    # Consistency: a row at/below the pivot frontier with zero coefficients
    # but a non-zero RHS means the chunk has no solution.
    coefficients_zero = (augmented[:, :, :cols] == 0).all(axis=2)
    below_frontier = row_index[None, :] >= pivot_row[:, None]
    inconsistent = (below_frontier & coefficients_zero & (augmented[:, :, cols] != 0)).any(axis=1)
    # Solutions: RHS of each pivot row; free variables stay zero.
    has_source = pivot_source >= 0
    source_rows = _np.where(has_source, pivot_source, 0)
    values = augmented[chunk_index[:, None], source_rows, cols]
    solutions = _np.where(has_source, values, 0).astype(_np.uint8)
    return solutions, ~inconsistent


def berlekamp_welch_batch(
    points: Sequence[int], data_symbols: int, symbol_matrix
) -> "_np.ndarray":
    """Recover the data polynomial of every chunk at once, correcting errors.

    ``symbol_matrix`` is the ``[received, chunks]`` symbol matrix (chunk
    ``c``'s received values down column ``c``).  Returns the ``[data_symbols,
    chunks]`` coefficient matrix.  Control flow mirrors the scalar
    ``_berlekamp_welch`` exactly — the same descending error-count attempts,
    each chunk adopting the first error count whose system solves, divides
    cleanly and fits with few enough mismatches — except that every chunk
    still searching shares one batched attempt per error count.

    Raises:
        DecodingError: when any chunk exhausts every error count (the same
            exception, message for message, the scalar path raises).
    """
    _require_numpy()
    from .reed_solomon import DecodingError  # local import: avoid a cycle at module load

    symbols = (
        _np.ascontiguousarray(symbol_matrix, dtype=_np.uint8)
        if isinstance(symbol_matrix, _np.ndarray)
        else rows_matrix(symbol_matrix)
    )
    received, chunk_count = symbols.shape
    k = data_symbols
    max_errors = max(0, (received - k) // 2)
    pts = _np.asarray(points, dtype=_np.intp)
    # powers[i, j] = points[i] ** j, shared by every attempt (scalar twin: ``powers``).
    max_power = max_errors + k
    powers = _np.empty((received, max_power + 1), dtype=_np.uint8)
    powers[:, 0] = 1
    for exponent in range(1, max_power + 1):
        powers[:, exponent] = MUL_NP[powers[:, exponent - 1], pts]
    output = _np.zeros((k, chunk_count), dtype=_np.uint8)
    unsolved = _np.arange(chunk_count)
    for errors in range(max_errors, -1, -1):
        if not unsolved.size:
            break
        solved = _bw_attempt(powers, pts, k, errors, symbols[:, unsolved], output, unsolved)
        unsolved = unsolved[~solved]
    if unsolved.size:
        raise DecodingError("Berlekamp-Welch decoding failed: too many corrupted fragments")
    return output


def _bw_attempt(powers, pts, k, errors, symbols, output, slots) -> "_np.ndarray":
    """One error-count attempt over every still-unsolved chunk.

    Writes successful candidates into ``output[:, slots]`` and returns the
    per-chunk success mask.  ``symbols`` is ``[received, active]``.
    """
    received, active = symbols.shape
    q_terms = errors + k
    cols = q_terms + errors
    transposed = symbols.T  # [active, received]
    augmented = _np.empty((active, received, cols + 1), dtype=_np.uint8)
    augmented[:, :, :q_terms] = powers[None, :, :q_terms]
    if errors:
        augmented[:, :, q_terms:cols] = MUL_NP[transposed[:, :, None], powers[None, :, :errors]]
    augmented[:, :, cols] = MUL_NP[transposed, powers[None, :, errors]]
    solutions, solvable = _solve_augmented_batch(augmented, cols)
    # Monic error locator E = solution[q_terms:] + [1]; divide Q by E.  E is
    # monic, so the scalar path's lead-inverse scaling is the identity and
    # the long division below reproduces poly_divmod exactly.
    locator = _np.concatenate(
        [solutions[:, q_terms:cols], _np.ones((active, 1), dtype=_np.uint8)], axis=1
    )
    remainder = solutions[:, :q_terms].copy()
    quotient = _np.empty((active, k), dtype=_np.uint8)
    for shift in range(k - 1, -1, -1):
        coefficient = remainder[:, shift + errors].copy()
        quotient[:, shift] = coefficient
        remainder[:, shift : shift + errors + 1] ^= MUL_NP[coefficient[:, None], locator]
    divides_cleanly = (remainder == 0).all(axis=1)
    # mismatches(candidate) <= errors, evaluated over every received point.
    evaluated = poly_eval_rows(quotient.T, pts)  # [received, active]
    mismatches = (evaluated != symbols).sum(axis=0)
    success = solvable & divides_cleanly & (mismatches <= errors)
    if success.any():
        output[:, slots[success]] = quotient[success].T
    return success
