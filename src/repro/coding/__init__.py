"""Erasure/error-correcting coding substrate: GF(256), Reed-Solomon, and ADD."""

from . import gf256
from .add import AsynchronousDataDissemination
from .reed_solomon import DecodingError, Fragment, ReedSolomonCode

__all__ = ["gf256", "ReedSolomonCode", "Fragment", "DecodingError", "AsynchronousDataDissemination"]
