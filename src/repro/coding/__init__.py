"""Erasure/error-correcting coding substrate: GF(256), Reed-Solomon, and ADD.

:mod:`repro.coding.gf256` / :mod:`repro.coding.reed_solomon` are the
vectorized production implementations; :mod:`repro.coding.reference` keeps
the original element-at-a-time codec as the differential-testing oracle.
"""

from . import gf256, reference
from .add import AsynchronousDataDissemination
from .reed_solomon import DecodingError, Fragment, ReedSolomonCode

__all__ = [
    "gf256",
    "reference",
    "ReedSolomonCode",
    "Fragment",
    "DecodingError",
    "AsynchronousDataDissemination",
]
