"""Erasure/error-correcting coding substrate: GF(256), Reed-Solomon, and ADD.

:mod:`repro.coding.gf256` / :mod:`repro.coding.reed_solomon` are the
vectorized production implementations; :mod:`repro.coding.np_backend` adds
optional numpy batch kernels (selected via ``REPRO_CODING_BACKEND``, falling
back to the table path when numpy is absent); :mod:`repro.coding.reference`
keeps the original element-at-a-time codec as the differential-testing
oracle.  All three are byte-identical by construction.
"""

from . import gf256, np_backend, reference
from .add import AsynchronousDataDissemination
from .reed_solomon import DecodingError, Fragment, ReedSolomonCode

__all__ = [
    "gf256",
    "np_backend",
    "reference",
    "ReedSolomonCode",
    "Fragment",
    "DecodingError",
    "AsynchronousDataDissemination",
]
