"""Reference (element-at-a-time) GF(256) and Reed-Solomon implementations.

This module preserves the original, straightforward coding layer exactly as
it was before the hot-path optimization pass: every field operation is a
checked scalar call and every codec step walks Python lists one element at a
time.  It is **not** used by the protocols — :mod:`repro.coding.gf256` and
:mod:`repro.coding.reed_solomon` are the production implementations — but it
is kept as the differential-testing oracle: the property suite asserts the
optimized codec is byte-for-byte equivalent to this one on every path
(clean, max-erasure, error-correcting, k=1, inconsistent-shape failures).

Being the oracle, this module should stay boring.  Fix bugs in both places;
do not optimize this one.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from .reed_solomon import DecodingError, Fragment

_PRIMITIVE_POLYNOMIAL = 0x11D
FIELD_SIZE = 256

_EXP: List[int] = [0] * (FIELD_SIZE * 2)
_LOG: List[int] = [0] * FIELD_SIZE


def _build_tables() -> None:
    value = 1
    for power in range(FIELD_SIZE - 1):
        _EXP[power] = value
        _LOG[value] = power
        value <<= 1
        if value & 0x100:
            value ^= _PRIMITIVE_POLYNOMIAL
    for power in range(FIELD_SIZE - 1, 2 * FIELD_SIZE):
        _EXP[power] = _EXP[power - (FIELD_SIZE - 1)]


_build_tables()


def _check(value: int) -> int:
    if not 0 <= value < FIELD_SIZE:
        raise ValueError(f"GF(256) elements are integers in [0, 255], got {value}")
    return value


def add(a: int, b: int) -> int:
    """Field addition (XOR)."""
    return _check(a) ^ _check(b)


def subtract(a: int, b: int) -> int:
    """Field subtraction (identical to addition in characteristic 2)."""
    return add(a, b)


def multiply(a: int, b: int) -> int:
    """Field multiplication via log/antilog tables."""
    _check(a), _check(b)
    if a == 0 or b == 0:
        return 0
    return _EXP[_LOG[a] + _LOG[b]]


def inverse(a: int) -> int:
    """Multiplicative inverse; raises on zero."""
    _check(a)
    if a == 0:
        raise ZeroDivisionError("0 has no multiplicative inverse in GF(256)")
    return _EXP[(FIELD_SIZE - 1) - _LOG[a]]


def divide(a: int, b: int) -> int:
    """Field division ``a / b``."""
    return multiply(a, inverse(b))


def power(a: int, exponent: int) -> int:
    """Raise ``a`` to a (possibly negative) integer power."""
    _check(a)
    if a == 0:
        if exponent <= 0:
            raise ZeroDivisionError("0 cannot be raised to a non-positive power")
        return 0
    log = (_LOG[a] * exponent) % (FIELD_SIZE - 1)
    return _EXP[log]


def poly_eval(coefficients: Sequence[int], x: int) -> int:
    """Evaluate a polynomial (coefficients in increasing degree order) at ``x``."""
    result = 0
    for coefficient in reversed(list(coefficients)):
        result = add(multiply(result, x), coefficient)
    return result


def poly_add(p: Sequence[int], q: Sequence[int]) -> List[int]:
    """Add two polynomials given in increasing degree order."""
    longer, shorter = (list(p), list(q)) if len(p) >= len(q) else (list(q), list(p))
    for index, coefficient in enumerate(shorter):
        longer[index] = add(longer[index], coefficient)
    return longer


def poly_multiply(p: Sequence[int], q: Sequence[int]) -> List[int]:
    """Multiply two polynomials given in increasing degree order."""
    result = [0] * (len(p) + len(q) - 1) if p and q else [0]
    for i, a in enumerate(p):
        if a == 0:
            continue
        for j, b in enumerate(q):
            if b == 0:
                continue
            result[i + j] = add(result[i + j], multiply(a, b))
    return result


def poly_divmod(numerator: Sequence[int], denominator: Sequence[int]) -> tuple:
    """Polynomial long division: returns ``(quotient, remainder)``."""
    num = list(numerator)
    den = list(denominator)
    while den and den[-1] == 0:
        den.pop()
    if not den:
        raise ZeroDivisionError("polynomial division by zero")
    quotient = [0] * max(1, len(num) - len(den) + 1)
    remainder = list(num)
    lead_inverse = inverse(den[-1])
    for shift in range(len(num) - len(den), -1, -1):
        coefficient = multiply(remainder[shift + len(den) - 1], lead_inverse)
        quotient[shift] = coefficient
        if coefficient != 0:
            for index, den_coefficient in enumerate(den):
                remainder[shift + index] = subtract(
                    remainder[shift + index], multiply(den_coefficient, coefficient)
                )
    while len(remainder) > 1 and remainder[-1] == 0:
        remainder.pop()
    return quotient, remainder


# ----------------------------------------------------------------------
# Reference Reed-Solomon codec (Berlekamp-Welch, element-at-a-time)
# ----------------------------------------------------------------------
def _solve_linear_system(matrix: List[List[int]], rhs: List[int]) -> Optional[List[int]]:
    """Solve ``matrix * x = rhs`` over GF(256) by Gaussian elimination."""
    rows = len(matrix)
    cols = len(matrix[0]) if rows else 0
    augmented = [list(row) + [value] for row, value in zip(matrix, rhs)]
    pivot_columns: List[int] = []
    pivot_row = 0
    for column in range(cols):
        pivot = next((r for r in range(pivot_row, rows) if augmented[r][column] != 0), None)
        if pivot is None:
            continue
        augmented[pivot_row], augmented[pivot] = augmented[pivot], augmented[pivot_row]
        pivot_inverse = inverse(augmented[pivot_row][column])
        augmented[pivot_row] = [multiply(value, pivot_inverse) for value in augmented[pivot_row]]
        for row in range(rows):
            if row != pivot_row and augmented[row][column] != 0:
                factor = augmented[row][column]
                augmented[row] = [
                    subtract(value, multiply(factor, pivot_value))
                    for value, pivot_value in zip(augmented[row], augmented[pivot_row])
                ]
        pivot_columns.append(column)
        pivot_row += 1
        if pivot_row == rows:
            break
    for row in range(pivot_row, rows):
        if all(value == 0 for value in augmented[row][:cols]) and augmented[row][cols] != 0:
            return None
    solution = [0] * cols
    for row, column in enumerate(pivot_columns):
        solution[column] = augmented[row][cols]
    return solution


class ReferenceReedSolomonCode:
    """The original ``(n, k)`` Reed-Solomon codec, kept as a test oracle."""

    def __init__(self, total_symbols: int, data_symbols: int):
        if not 1 <= data_symbols <= total_symbols:
            raise ValueError("need 1 <= data_symbols <= total_symbols")
        if total_symbols > FIELD_SIZE - 1:
            raise ValueError("at most 255 symbols are supported by GF(256)")
        self.total_symbols = total_symbols
        self.data_symbols = data_symbols
        self.evaluation_points = list(range(1, total_symbols + 1))

    # ------------------------------------------------------------------
    def max_correctable_errors(self, received: int) -> int:
        return max(0, (received - self.data_symbols) // 2)

    def encode(self, blob: bytes) -> List[Fragment]:
        chunks = self._chunk(blob)
        per_index: List[List[int]] = [[] for _ in range(self.total_symbols)]
        for chunk in chunks:
            for position, point in enumerate(self.evaluation_points):
                per_index[position].append(poly_eval(chunk, point))
        return [
            Fragment(index=index, symbols=tuple(symbols), blob_length=len(blob))
            for index, symbols in enumerate(per_index)
        ]

    def decode(self, fragments: Sequence[Fragment]) -> bytes:
        by_index = {}
        for fragment in fragments:
            if not isinstance(fragment, Fragment):
                continue
            if not 0 <= fragment.index < self.total_symbols:
                continue
            by_index.setdefault(fragment.index, fragment)
        if len(by_index) < self.data_symbols:
            raise DecodingError(
                f"need at least {self.data_symbols} fragments, got {len(by_index)}"
            )
        length_votes = {}
        for fragment in by_index.values():
            length_votes[fragment.blob_length] = length_votes.get(fragment.blob_length, 0) + 1
        candidates = sorted(length_votes, key=lambda length: (-length_votes[length], length))
        last_error: Optional[DecodingError] = None
        for blob_length in candidates:
            chunk_count = self._chunk_count(blob_length)
            usable = {
                index: fragment
                for index, fragment in by_index.items()
                if len(fragment.symbols) == chunk_count
            }
            if len(usable) < self.data_symbols:
                last_error = DecodingError("not enough fragments with a consistent shape")
                continue
            try:
                data = bytearray()
                for chunk_index in range(chunk_count):
                    points = [
                        (self.evaluation_points[index], fragment.symbols[chunk_index])
                        for index, fragment in sorted(usable.items())
                    ]
                    coefficients = self._berlekamp_welch(points)
                    data.extend(coefficients)
                return bytes(data[:blob_length])
            except DecodingError as error:
                last_error = error
        raise last_error if last_error is not None else DecodingError("no decodable fragment shape")

    # ------------------------------------------------------------------
    def _chunk_count(self, blob_length: int) -> int:
        return max(1, -(-blob_length // self.data_symbols))

    def _chunk(self, blob: bytes) -> List[List[int]]:
        padded_length = self._chunk_count(len(blob)) * self.data_symbols
        padded = blob + bytes(padded_length - len(blob))
        return [
            list(padded[start : start + self.data_symbols])
            for start in range(0, padded_length, self.data_symbols)
        ]

    def _berlekamp_welch(self, points: Sequence[Tuple[int, int]]) -> List[int]:
        received = len(points)
        k = self.data_symbols
        for errors in range(self.max_correctable_errors(received), -1, -1):
            q_terms = errors + k
            matrix: List[List[int]] = []
            rhs: List[int] = []
            for x, y in points:
                row = [power(x, j) if x != 0 or j == 0 else 0 for j in range(q_terms)]
                row += [
                    multiply(y, power(x, j)) if x != 0 or j == 0 else (y if j == 0 else 0)
                    for j in range(errors)
                ]
                matrix.append(row)
                rhs.append(multiply(y, power(x, errors)) if x != 0 or errors == 0 else 0)
            solution = _solve_linear_system(matrix, rhs)
            if solution is None:
                continue
            q_coefficients = solution[:q_terms]
            e_coefficients = solution[q_terms:] + [1]  # monic error locator
            quotient, remainder = poly_divmod(q_coefficients, e_coefficients)
            if any(value != 0 for value in remainder):
                continue
            candidate = (quotient + [0] * k)[:k]
            mismatches = sum(1 for x, y in points if poly_eval(candidate, x) != y)
            if mismatches <= errors:
                return candidate
        raise DecodingError("Berlekamp-Welch decoding failed: too many corrupted fragments")
