"""ADD: Asynchronous Data Dissemination (Das, Xiang, Ren — used by Algorithm 6).

The data-dissemination problem: a blob ``M`` is the input of at least
``t + 1`` correct processes (the others input nothing), and every correct
process must eventually output ``M`` — with ``O(n |M| + n^2)`` words of
communication rather than the ``O(n^2 |M|)`` of naive re-broadcasting.

The protocol:

1. *Disperse*: every process holding ``M`` Reed-Solomon-encodes it into ``n``
   fragments and sends fragment ``j`` (plus ``hash(M)``) to process ``j``.
2. *Own fragment*: process ``j`` adopts the fragment value it received from
   ``t + 1`` distinct senders for the expected hash — at least one of them is
   correct, so the adopted fragment is the true one.
3. *Reconstruct*: every process broadcasts its adopted fragment; receivers
   run error-correcting Reed-Solomon decoding over the fragments gathered so
   far (up to ``t`` of which may be Byzantine garbage) and output the decoded
   blob once its hash matches the expected one.

The expected hash is supplied by the caller (in Algorithm 6 it is the hash
decided by Quad), which replaces the online-error-correction bookkeeping of
the original ADD without changing its communication profile.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Set, Tuple

from ..crypto.hashing import digest
from ..sim.process import Process, ProtocolModule
from .reed_solomon import DecodingError, Fragment, ReedSolomonCode

OutputCallback = Callable[[bytes], None]

_DISPERSE = "disperse"
_RECONSTRUCT = "reconstruct"


class AsynchronousDataDissemination(ProtocolModule):
    """One ADD instance (one blob to disseminate)."""

    def __init__(
        self,
        process: Process,
        name: str = "add",
        parent: Optional[ProtocolModule] = None,
        on_output: Optional[OutputCallback] = None,
    ):
        super().__init__(process, name, parent)
        self._on_output = on_output
        self.code = ReedSolomonCode(total_symbols=self.n, data_symbols=self.system.t + 1)
        self.expected_hash: Optional[str] = None
        self._started = False
        self._output: Optional[bytes] = None
        self._own_fragment: Optional[Fragment] = None
        self._disperse_votes: Dict[Tuple[str, Fragment], Set[int]] = {}
        self._reconstruct_fragments: Dict[int, Fragment] = {}

    # ------------------------------------------------------------------
    def input(self, blob: Optional[bytes], expected_hash: str) -> None:
        """Provide this process's input: the blob itself, or ``None`` with its expected hash."""
        if self._started:
            return
        self._started = True
        self.expected_hash = expected_hash
        if blob is not None and digest(blob) == expected_hash:
            for fragment in self.code.encode(blob):
                self.send(fragment.index, (_DISPERSE, expected_hash, fragment))
        self._flush_pending()

    # ------------------------------------------------------------------
    def on_message(self, sender: int, payload: Any) -> None:
        if self._output is not None or not isinstance(payload, tuple) or len(payload) != 3:
            return
        kind, blob_hash, fragment = payload
        if not isinstance(fragment, Fragment) or not isinstance(blob_hash, str):
            return
        if kind == _DISPERSE:
            self._on_disperse(sender, blob_hash, fragment)
        elif kind == _RECONSTRUCT:
            self._on_reconstruct(sender, blob_hash, fragment)

    def _on_disperse(self, sender: int, blob_hash: str, fragment: Fragment) -> None:
        if fragment.index != self.pid:
            return
        votes = self._disperse_votes.setdefault((blob_hash, fragment), set())
        votes.add(sender)
        self._flush_pending()

    def _flush_pending(self) -> None:
        self._maybe_adopt_fragment()
        self._try_reconstruct()

    def _maybe_adopt_fragment(self) -> None:
        if not self._started or self._own_fragment is not None or self.expected_hash is None:
            return
        for (blob_hash, fragment), votes in self._disperse_votes.items():
            if blob_hash == self.expected_hash and len(votes) >= self.system.t + 1:
                self._own_fragment = fragment
                self.broadcast((_RECONSTRUCT, blob_hash, fragment))
                return

    def _on_reconstruct(self, sender: int, blob_hash: str, fragment: Fragment) -> None:
        if fragment.index != sender:
            return
        self._reconstruct_fragments.setdefault(sender, fragment)
        self._try_reconstruct()

    def _try_reconstruct(self) -> None:
        if self._output is not None or not self._started or self.expected_hash is None:
            return
        fragments = list(self._reconstruct_fragments.values())
        if self._own_fragment is not None:
            fragments.append(self._own_fragment)
        if len(fragments) < self.code.data_symbols:
            return
        try:
            blob = self.code.decode(fragments)
        except DecodingError:
            return
        if digest(blob) != self.expected_hash:
            return
        self._output = blob
        if self._on_output is not None:
            self._on_output(blob)

    # ------------------------------------------------------------------
    @property
    def output(self) -> Optional[bytes]:
        return self._output
