"""Reed-Solomon coding over GF(256) with Berlekamp-Welch error correction.

ADD (Appendix B.3 / Das-Xiang-Ren) disperses a data blob as ``n`` coded
symbols such that the blob can be reconstructed from any sufficiently large
subset of symbols even when up to ``t`` of them are corrupted by Byzantine
processes.  This module provides exactly that primitive:

* :meth:`ReedSolomonCode.encode` evaluates the degree ``< k`` data polynomial
  at ``n`` fixed points, producing one symbol per process;
* :meth:`ReedSolomonCode.decode` runs the Berlekamp-Welch algorithm, which
  recovers the data polynomial from ``m`` received symbols as long as the
  number of corrupted ones ``e`` satisfies ``m >= k + 2e``.

Blobs longer than ``k`` bytes are striped: byte ``j`` of fragment ``i`` is the
``i``-th coded symbol of the ``j``-th chunk of ``k`` data bytes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from . import gf256


class DecodingError(ValueError):
    """Raised when the received symbols cannot be decoded consistently."""


def _solve_linear_system(matrix: List[List[int]], rhs: List[int]) -> Optional[List[int]]:
    """Solve ``matrix * x = rhs`` over GF(256) by Gaussian elimination.

    Returns one solution (free variables set to zero) or ``None`` when the
    system is inconsistent.
    """
    rows = len(matrix)
    cols = len(matrix[0]) if rows else 0
    augmented = [list(row) + [value] for row, value in zip(matrix, rhs)]
    pivot_columns: List[int] = []
    pivot_row = 0
    for column in range(cols):
        pivot = next((r for r in range(pivot_row, rows) if augmented[r][column] != 0), None)
        if pivot is None:
            continue
        augmented[pivot_row], augmented[pivot] = augmented[pivot], augmented[pivot_row]
        inverse = gf256.inverse(augmented[pivot_row][column])
        augmented[pivot_row] = [gf256.multiply(value, inverse) for value in augmented[pivot_row]]
        for row in range(rows):
            if row != pivot_row and augmented[row][column] != 0:
                factor = augmented[row][column]
                augmented[row] = [
                    gf256.subtract(value, gf256.multiply(factor, pivot_value))
                    for value, pivot_value in zip(augmented[row], augmented[pivot_row])
                ]
        pivot_columns.append(column)
        pivot_row += 1
        if pivot_row == rows:
            break
    # Consistency check: a zero row with non-zero RHS means no solution.
    for row in range(pivot_row, rows):
        if all(value == 0 for value in augmented[row][:cols]) and augmented[row][cols] != 0:
            return None
    solution = [0] * cols
    for row, column in enumerate(pivot_columns):
        solution[column] = augmented[row][cols]
    return solution


@dataclass(frozen=True)
class Fragment:
    """One process's share of an encoded blob."""

    index: int
    symbols: Tuple[int, ...]
    blob_length: int

    def stable_fields(self) -> tuple:
        return (self.index, self.symbols, self.blob_length)

    @property
    def words(self) -> int:
        # Symbols are single bytes; count one word per 64 of them, consistent
        # with how serialised blobs are measured by the metrics collector.
        return max(1, (len(self.symbols) + 63) // 64)


class ReedSolomonCode:
    """A ``(n, k)`` Reed-Solomon code over GF(256)."""

    def __init__(self, total_symbols: int, data_symbols: int):
        if not 1 <= data_symbols <= total_symbols:
            raise ValueError("need 1 <= data_symbols <= total_symbols")
        if total_symbols > gf256.FIELD_SIZE - 1:
            raise ValueError("at most 255 symbols are supported by GF(256)")
        self.total_symbols = total_symbols
        self.data_symbols = data_symbols
        self.evaluation_points = list(range(1, total_symbols + 1))

    # ------------------------------------------------------------------
    def max_correctable_errors(self, received: int) -> int:
        """Largest number of corrupted symbols correctable from ``received`` symbols."""
        return max(0, (received - self.data_symbols) // 2)

    def encode(self, blob: bytes) -> List[Fragment]:
        """Encode ``blob`` into one fragment per symbol index."""
        chunks = self._chunk(blob)
        per_index: List[List[int]] = [[] for _ in range(self.total_symbols)]
        for chunk in chunks:
            for position, point in enumerate(self.evaluation_points):
                per_index[position].append(gf256.poly_eval(chunk, point))
        return [
            Fragment(index=index, symbols=tuple(symbols), blob_length=len(blob))
            for index, symbols in enumerate(per_index)
        ]

    def decode(self, fragments: Sequence[Fragment]) -> bytes:
        """Reconstruct the blob from fragments, correcting up to ``(m - k) / 2`` corrupted ones.

        Raises:
            DecodingError: when the fragments are insufficient or inconsistent.
        """
        by_index: Dict[int, Fragment] = {}
        for fragment in fragments:
            if not isinstance(fragment, Fragment):
                continue
            if not 0 <= fragment.index < self.total_symbols:
                continue
            by_index.setdefault(fragment.index, fragment)
        if len(by_index) < self.data_symbols:
            raise DecodingError(
                f"need at least {self.data_symbols} fragments, got {len(by_index)}"
            )
        # Byzantine fragments may lie about the blob length; try candidate
        # lengths from the most to the least frequently claimed one.
        length_votes: Dict[int, int] = {}
        for fragment in by_index.values():
            length_votes[fragment.blob_length] = length_votes.get(fragment.blob_length, 0) + 1
        candidates = sorted(length_votes, key=lambda length: (-length_votes[length], length))
        last_error: Optional[DecodingError] = None
        for blob_length in candidates:
            chunk_count = self._chunk_count(blob_length)
            usable = {
                index: fragment
                for index, fragment in by_index.items()
                if len(fragment.symbols) == chunk_count
            }
            if len(usable) < self.data_symbols:
                last_error = DecodingError("not enough fragments with a consistent shape")
                continue
            try:
                data = bytearray()
                for chunk_index in range(chunk_count):
                    points = [
                        (self.evaluation_points[index], fragment.symbols[chunk_index])
                        for index, fragment in sorted(usable.items())
                    ]
                    coefficients = self._berlekamp_welch(points)
                    data.extend(coefficients)
                return bytes(data[:blob_length])
            except DecodingError as error:
                last_error = error
        raise last_error if last_error is not None else DecodingError("no decodable fragment shape")

    # ------------------------------------------------------------------
    def _chunk_count(self, blob_length: int) -> int:
        return max(1, -(-blob_length // self.data_symbols))

    def _chunk(self, blob: bytes) -> List[List[int]]:
        padded_length = self._chunk_count(len(blob)) * self.data_symbols
        padded = blob + bytes(padded_length - len(blob))
        return [
            list(padded[start : start + self.data_symbols])
            for start in range(0, padded_length, self.data_symbols)
        ]

    def _berlekamp_welch(self, points: Sequence[Tuple[int, int]]) -> List[int]:
        """Recover the data polynomial from ``(x, y)`` points with errors."""
        received = len(points)
        k = self.data_symbols
        for errors in range(self.max_correctable_errors(received), -1, -1):
            q_terms = errors + k
            matrix: List[List[int]] = []
            rhs: List[int] = []
            for x, y in points:
                row = [gf256.power(x, j) if x != 0 or j == 0 else 0 for j in range(q_terms)]
                row += [
                    gf256.multiply(y, gf256.power(x, j)) if x != 0 or j == 0 else (y if j == 0 else 0)
                    for j in range(errors)
                ]
                matrix.append(row)
                rhs.append(gf256.multiply(y, gf256.power(x, errors)) if x != 0 or errors == 0 else 0)
            solution = _solve_linear_system(matrix, rhs)
            if solution is None:
                continue
            q_coefficients = solution[:q_terms]
            e_coefficients = solution[q_terms:] + [1]  # monic error locator
            quotient, remainder = gf256.poly_divmod(q_coefficients, e_coefficients)
            if any(value != 0 for value in remainder):
                continue
            candidate = (quotient + [0] * k)[:k]
            mismatches = sum(
                1 for x, y in points if gf256.poly_eval(candidate, x) != y
            )
            if mismatches <= errors:
                return candidate
        raise DecodingError("Berlekamp-Welch decoding failed: too many corrupted fragments")
