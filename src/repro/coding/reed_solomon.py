"""Reed-Solomon coding over GF(256) with Berlekamp-Welch error correction.

ADD (Appendix B.3 / Das-Xiang-Ren) disperses a data blob as ``n`` coded
symbols such that the blob can be reconstructed from any sufficiently large
subset of symbols even when up to ``t`` of them are corrupted by Byzantine
processes.  This module provides exactly that primitive:

* :meth:`ReedSolomonCode.encode` evaluates the degree ``< k`` data polynomial
  at ``n`` fixed points, producing one symbol per process;
* :meth:`ReedSolomonCode.decode` runs the Berlekamp-Welch algorithm, which
  recovers the data polynomial from ``m`` received symbols as long as the
  number of corrupted ones ``e`` satisfies ``m >= k + 2e``.

Blobs longer than ``k`` bytes are striped: byte ``j`` of fragment ``i`` is the
``i``-th coded symbol of the ``j``-th chunk of ``k`` data bytes.

This is the vectorized implementation: instead of evaluating one chunk at a
time with scalar field calls, it lays the blob out as ``k`` coefficient rows
(``bytes`` objects spanning every chunk) and drives Horner's rule, Lagrange
interpolation and the Gaussian eliminations through whole-row
``bytes.translate`` / big-integer-XOR operations (see
:mod:`repro.coding.gf256`).  Decoding first interpolates through the first
``k`` received fragments and verifies the candidate against *all* received
symbols row-wise; chunks where every symbol matches are provably identical
to the Berlekamp-Welch answer (two degree ``< k`` polynomials with ``<= e``
mismatches over ``m >= k + 2e`` points agree on ``>= k`` points and are
therefore equal), and only chunks with a detected mismatch fall back to the
exact per-chunk Berlekamp-Welch solve.  The retained element-at-a-time
implementation in :mod:`repro.coding.reference` is the differential-test
oracle for all of this.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from . import gf256, np_backend

_MUL = gf256.MUL_TABLE
_INVERSE = gf256._INVERSE


class DecodingError(ValueError):
    """Raised when the received symbols cannot be decoded consistently."""


def _xor(a: bytes, b: bytes, length: int) -> bytes:
    return (int.from_bytes(a, "little") ^ int.from_bytes(b, "little")).to_bytes(length, "little")


def _solve_augmented(augmented: List[bytearray], cols: int) -> Optional[List[int]]:
    """Solve the augmented system (last column = RHS) over GF(256) in place.

    Row-vectorized Gaussian elimination: scaling a row is one ``translate``
    over the pivot's inverse row, eliminating is one translate plus one
    big-integer XOR.  Pivot selection, the free-variables-to-zero convention
    and the consistency check mirror :mod:`repro.coding.reference` exactly,
    so the returned solution is identical element for element.
    """
    rows = len(augmented)
    width = cols + 1
    pivot_columns: List[int] = []
    pivot_row = 0
    for column in range(cols):
        pivot = next((r for r in range(pivot_row, rows) if augmented[r][column]), None)
        if pivot is None:
            continue
        augmented[pivot_row], augmented[pivot] = augmented[pivot], augmented[pivot_row]
        lead = augmented[pivot_row][column]
        if lead != 1:
            augmented[pivot_row] = bytearray(augmented[pivot_row].translate(_MUL[_INVERSE[lead]]))
        pivot_bytes = bytes(augmented[pivot_row])
        pivot_int = int.from_bytes(pivot_bytes, "little")
        for row in range(rows):
            if row != pivot_row and augmented[row][column]:
                factor = augmented[row][column]
                if factor == 1:
                    scaled = pivot_int
                else:
                    scaled = int.from_bytes(pivot_bytes.translate(_MUL[factor]), "little")
                augmented[row] = bytearray(
                    (int.from_bytes(augmented[row], "little") ^ scaled).to_bytes(width, "little")
                )
        pivot_columns.append(column)
        pivot_row += 1
        if pivot_row == rows:
            break
    # Consistency check: a zero row with non-zero RHS means no solution.
    for row in range(pivot_row, rows):
        if augmented[row][cols] != 0 and not any(augmented[row][column] for column in range(cols)):
            return None
    solution = [0] * cols
    for row, column in enumerate(pivot_columns):
        solution[column] = augmented[row][cols]
    return solution


@dataclass(frozen=True)
class Fragment:
    """One process's share of an encoded blob."""

    index: int
    symbols: Tuple[int, ...]
    blob_length: int

    def stable_fields(self) -> tuple:
        return (self.index, self.symbols, self.blob_length)

    @property
    def words(self) -> int:
        # Symbols are single bytes; count one word per 64 of them, consistent
        # with how serialised blobs are measured by the metrics collector.
        return max(1, (len(self.symbols) + 63) // 64)


class ReedSolomonCode:
    """A ``(n, k)`` Reed-Solomon code over GF(256)."""

    def __init__(self, total_symbols: int, data_symbols: int, backend: Optional[str] = None):
        if not 1 <= data_symbols <= total_symbols:
            raise ValueError("need 1 <= data_symbols <= total_symbols")
        if total_symbols > gf256.FIELD_SIZE - 1:
            raise ValueError("at most 255 symbols are supported by GF(256)")
        self.total_symbols = total_symbols
        self.data_symbols = data_symbols
        self.evaluation_points = list(range(1, total_symbols + 1))
        self._basis_cache: Dict[Tuple[int, ...], List[List[int]]] = {}
        # ``None`` inherits the import-time REPRO_CODING_BACKEND resolution;
        # an explicit name is resolved (and validated) per instance.  Both
        # backends are byte-identical, so this only affects speed.
        self.backend = (
            np_backend.DEFAULT_BACKEND if backend is None else np_backend.resolve_backend(backend)
        )

    def _use_numpy(self, chunk_count: int) -> bool:
        return np_backend.use_numpy(self.backend, chunk_count)

    # ------------------------------------------------------------------
    def max_correctable_errors(self, received: int) -> int:
        """Largest number of corrupted symbols correctable from ``received`` symbols."""
        return max(0, (received - self.data_symbols) // 2)

    def encode(self, blob: bytes) -> List[Fragment]:
        """Encode ``blob`` into one fragment per symbol index.

        The blob is laid out as ``k`` coefficient rows spanning every chunk
        (``rows[r][j]`` is coefficient ``r`` of chunk ``j``); each evaluation
        point then costs ``k - 1`` Horner steps of one row-translate plus one
        row-XOR, regardless of how many chunks there are.
        """
        k = self.data_symbols
        blob = bytes(blob)
        chunk_count = self._chunk_count(len(blob))
        padded = blob + bytes(chunk_count * k - len(blob))
        rows = [padded[row::k] for row in range(k)]
        blob_length = len(blob)
        if self._use_numpy(chunk_count):
            return [
                Fragment(index=index, symbols=tuple(symbol_row), blob_length=blob_length)
                for index, symbol_row in enumerate(
                    np_backend.encode_symbol_rows(rows, self.evaluation_points)
                )
            ]
        fragments = []
        for index, point in enumerate(self.evaluation_points):
            point_row = _MUL[point]
            accumulator = rows[k - 1]
            for row in range(k - 2, -1, -1):
                accumulator = _xor(accumulator.translate(point_row), rows[row], chunk_count)
            fragments.append(
                Fragment(index=index, symbols=tuple(accumulator), blob_length=blob_length)
            )
        return fragments

    def decode(self, fragments: Sequence[Fragment]) -> bytes:
        """Reconstruct the blob from fragments, correcting up to ``(m - k) / 2`` corrupted ones.

        Raises:
            DecodingError: when the fragments are insufficient or inconsistent.
        """
        by_index: Dict[int, Fragment] = {}
        for fragment in fragments:
            if not isinstance(fragment, Fragment):
                continue
            if not 0 <= fragment.index < self.total_symbols:
                continue
            by_index.setdefault(fragment.index, fragment)
        if len(by_index) < self.data_symbols:
            raise DecodingError(
                f"need at least {self.data_symbols} fragments, got {len(by_index)}"
            )
        # Byzantine fragments may lie about the blob length; try candidate
        # lengths from the most to the least frequently claimed one.
        length_votes: Dict[int, int] = {}
        for fragment in by_index.values():
            length_votes[fragment.blob_length] = length_votes.get(fragment.blob_length, 0) + 1
        candidates = sorted(length_votes, key=lambda length: (-length_votes[length], length))
        last_error: Optional[DecodingError] = None
        for blob_length in candidates:
            chunk_count = self._chunk_count(blob_length)
            usable = {
                index: fragment
                for index, fragment in by_index.items()
                if len(fragment.symbols) == chunk_count
            }
            if len(usable) < self.data_symbols:
                last_error = DecodingError("not enough fragments with a consistent shape")
                continue
            try:
                return self._decode_shape(usable, blob_length, chunk_count)
            except DecodingError as error:
                last_error = error
        raise last_error if last_error is not None else DecodingError("no decodable fragment shape")

    # ------------------------------------------------------------------
    def _decode_shape(
        self, usable: Dict[int, Fragment], blob_length: int, chunk_count: int
    ) -> bytes:
        """Decode one consistent fragment shape (may raise :class:`DecodingError`)."""
        k = self.data_symbols
        ordered = sorted(usable.items())
        points = [self.evaluation_points[index] for index, _ in ordered]
        symbol_rows = [bytes(fragment.symbols) for _, fragment in ordered]
        if self._use_numpy(chunk_count):
            return self._decode_shape_numpy(points, symbol_rows, blob_length, chunk_count)

        # Fast path: interpolate through the first k fragments across every
        # chunk at once, then verify the candidate against every received
        # symbol row-wise.  Chunks that verify cleanly are provably the
        # Berlekamp-Welch answer; the rest are re-solved exactly below.
        basis = self._interpolation_basis(tuple(points[:k]))
        zero = bytes(chunk_count)
        coefficient_rows: List[bytes] = []
        for row in range(k):
            accumulator = zero
            basis_row = basis[row]
            for i in range(k):
                weight = basis_row[i]
                if weight:
                    accumulator = _xor(
                        accumulator, symbol_rows[i].translate(_MUL[weight]), chunk_count
                    )
            coefficient_rows.append(accumulator)
        mismatch_mask = 0
        for point, symbol_row in zip(points, symbol_rows):
            point_row = _MUL[point]
            evaluated = coefficient_rows[k - 1]
            for row in range(k - 2, -1, -1):
                evaluated = _xor(evaluated.translate(point_row), coefficient_rows[row], chunk_count)
            mismatch_mask |= int.from_bytes(evaluated, "little") ^ int.from_bytes(
                symbol_row, "little"
            )

        data = bytearray(chunk_count * k)
        for row in range(k):
            data[row::k] = coefficient_rows[row]
        if mismatch_mask:
            # Some chunk disagrees somewhere: run the exact Berlekamp-Welch
            # recovery for precisely those chunks.
            mismatched = mismatch_mask.to_bytes(chunk_count, "little")
            for chunk_index in range(chunk_count):
                if mismatched[chunk_index]:
                    coefficients = self._berlekamp_welch(
                        points, [symbol_row[chunk_index] for symbol_row in symbol_rows]
                    )
                    data[chunk_index * k : (chunk_index + 1) * k] = bytes(coefficients)
        return bytes(data[:blob_length])

    def _decode_shape_numpy(
        self, points: List[int], symbol_rows: List[bytes], blob_length: int, chunk_count: int
    ) -> bytes:
        """Numpy twin of the table ``_decode_shape`` body: interpolate-verify
        windows over the fragment matrix, with the per-chunk Berlekamp-Welch
        fallback replaced by one batched solve over every unexplained chunk
        (see :func:`repro.coding.np_backend.decode_coefficient_rows` for the
        byte-identity argument)."""
        coefficients = np_backend.decode_coefficient_rows(
            points, self.data_symbols, symbol_rows, self._interpolation_basis
        )
        # Interleave back to chunk-major bytes: data[chunk * k + row].
        return coefficients.T.tobytes()[:blob_length]

    def _interpolation_basis(self, points: Tuple[int, ...]) -> List[List[int]]:
        """The inverse Vandermonde of ``points``: ``coeffs = basis @ symbols``.

        ``basis[r][i]`` is the weight of symbol ``i`` in coefficient ``r`` of
        the unique degree ``< k`` polynomial through the ``k`` points.  Cached
        per point-subset, since a sweep decodes from the same subsets over
        and over.
        """
        cached = self._basis_cache.get(points)
        if cached is not None:
            return cached
        k = len(points)
        # Invert the Vandermonde matrix V[i][r] = points[i] ** r by Gaussian
        # elimination on [V | I]; then coeffs = V^-1 @ ys.
        augmented = []
        for i, x in enumerate(points):
            row = [0] * (2 * k)
            value = 1
            for r in range(k):
                row[r] = value
                value = _MUL[value][x]
            row[k + i] = 1
            augmented.append(row)
        for column in range(k):
            pivot = next(r for r in range(column, k) if augmented[r][column])
            augmented[column], augmented[pivot] = augmented[pivot], augmented[column]
            lead_row = _MUL[_INVERSE[augmented[column][column]]]
            augmented[column] = [lead_row[value] for value in augmented[column]]
            for row in range(k):
                if row != column and augmented[row][column]:
                    factor_row = _MUL[augmented[row][column]]
                    augmented[row] = [
                        value ^ factor_row[pivot_value]
                        for value, pivot_value in zip(augmented[row], augmented[column])
                    ]
        basis = [[augmented[r][k + i] for i in range(k)] for r in range(k)]
        self._basis_cache[points] = basis
        return basis

    def _chunk_count(self, blob_length: int) -> int:
        return max(1, -(-blob_length // self.data_symbols))

    def _berlekamp_welch(self, points: Sequence[int], symbols: Sequence[int]) -> List[int]:
        """Recover one chunk's data polynomial from ``(x, y)`` pairs with errors.

        Identical algorithm to the reference implementation (same error-count
        descent, same matrix layout, same free-variable convention), with the
        linear algebra running on bytearray rows.
        """
        received = len(points)
        k = self.data_symbols
        max_errors = self.max_correctable_errors(received)
        # powers[i][j] = points[i] ** j, shared by every error-count attempt.
        max_power = max_errors + k
        powers = []
        for x in points:
            row = [1] * (max_power + 1)
            value = 1
            for j in range(1, max_power + 1):
                value = _MUL[value][x]
                row[j] = value
            powers.append(row)
        for errors in range(max_errors, -1, -1):
            q_terms = errors + k
            width = q_terms + errors + 1
            augmented = []
            for i, y in enumerate(symbols):
                power_row = powers[i]
                y_row = _MUL[y]
                row = bytearray(width)
                row[:q_terms] = bytes(power_row[:q_terms])
                for j in range(errors):
                    row[q_terms + j] = y_row[power_row[j]]
                row[q_terms + errors] = y_row[power_row[errors]]
                augmented.append(row)
            solution = _solve_augmented(augmented, q_terms + errors)
            if solution is None:
                continue
            q_coefficients = solution[:q_terms]
            e_coefficients = solution[q_terms:] + [1]  # monic error locator
            quotient, remainder = gf256.poly_divmod(q_coefficients, e_coefficients)
            if any(value != 0 for value in remainder):
                continue
            candidate = (quotient + [0] * k)[:k]
            mismatches = 0
            for x, y in zip(points, symbols):
                if gf256.poly_eval(candidate, x) != y:
                    mismatches += 1
            if mismatches <= errors:
                return candidate
        raise DecodingError("Berlekamp-Welch decoding failed: too many corrupted fragments")
