"""The Theorem 1 experiment: with ``n <= 3t`` non-trivial consensus is impossible.

Lemma 2 of the paper constructs a split-brain execution: the processes are
split into a group ``A``, a group ``C`` and a Byzantine group ``B`` with
``|B| <= t``; the members of ``B`` behave towards ``A`` exactly as in an
execution where everyone proposes ``v_A``, and towards ``C`` as in an
execution where everyone proposes ``v_C``, while the scheduler delays all
``A``–``C`` communication until both sides have decided.  Since ``A`` (resp.
``C``) together with the double-dealing ``B`` reaches the ``n - t`` quorum,
both sides decide — on different values — violating Agreement.

This module implements that adversary against the library's own Universal
algorithm (run, deliberately, outside its resilience envelope at ``n = 3t``)
and reports whether the attack produced the predicted disagreement.  The same
driver run with ``n > 3t`` shows the attack failing, which is the boundary
Theorem 1 establishes.

Examples
--------

The attack targets the resilience boundary: ``n = 3t`` systems do not
tolerate Byzantine faults, which is why Lemma 2's split quorums overlap only
in the double-dealing group:

>>> from repro.core.system import SystemConfig
>>> system = SystemConfig.without_byzantine_resilience(2)
>>> (system.n, system.t, system.tolerates_byzantine_faults())
(6, 2, False)

An attack report summarises both sides' decisions and whether Agreement
broke (here, a hand-built record of the predicted outcome):

>>> report = PartitionAttackReport(
...     system=system, group_a=(0, 1), group_c=(2, 3), byzantine_group=(4, 5),
...     decisions_a={0: 0, 1: 0}, decisions_c={2: 1, 3: 1},
...     agreement_violated=True, all_correct_decided=True)
>>> report.summary()["agreement_violated"]
True
>>> report.summary()["group_a_decisions"], report.summary()["group_c_decisions"]
(['0'], ['1'])
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Sequence, Set, Tuple

from ..consensus.universal_protocol import UniversalProcess
from ..core.system import SystemConfig
from ..core.universal import UniversalSpec
from ..sim.events import Envelope, MessageDelivery, TimerExpiry
from ..sim.network import PartitionDelayModel
from ..sim.process import Process
from ..sim.simulation import Simulation

_WORLD_A = "world-A"
_WORLD_C = "world-C"


class _SplitBrainShim:
    """Simulation facade given to one personality of a split-brain process.

    Outgoing messages to the forbidden correct group are dropped; messages to
    other split-brain members (and to the process itself) are wrapped with
    the personality's world label so the receiver can route them to its
    matching personality.
    """

    def __init__(
        self,
        outer: "SplitBrainProcess",
        simulation: Simulation,
        world: str,
        allowed_correct: Set[int],
        byzantine_group: Set[int],
    ):
        self._outer = outer
        self._simulation = simulation
        self._world = world
        self._allowed_correct = set(allowed_correct)
        self._byzantine_group = set(byzantine_group)
        self.system = simulation.system
        self.authority = simulation.authority
        self.delay_model = simulation.delay_model

    @property
    def time(self) -> float:
        return self._simulation.time

    def is_correct(self, pid: int) -> bool:
        return self._simulation.is_correct(pid)

    def transmit(self, sender: int, receiver: int, envelope: Envelope) -> None:
        if receiver in self._byzantine_group or receiver == self._outer.pid:
            wrapped = Envelope((self._world,) + envelope.path, envelope.payload)
            self._simulation.transmit(self._outer.pid, receiver, wrapped)
            return
        if receiver not in self._allowed_correct:
            return
        self._simulation.transmit(self._outer.pid, receiver, envelope)

    def schedule_timer(self, pid: int, delay: float, path: Tuple[str, ...], tag: Any) -> None:
        self._simulation.schedule_timer(self._outer.pid, delay, (self._world,) + path, tag)

    def record_decision(self, pid: int, value: Any) -> None:
        self._outer.personality_decisions[self._world] = value


class SplitBrainProcess(Process):
    """The Lemma 2 adversary: one Byzantine process running two personalities.

    Personality ``A`` runs the honest protocol with proposal ``value_a`` and
    talks only to group ``A`` (and the Byzantine group); personality ``C``
    does the same with ``value_c`` towards group ``C``.  Both personalities
    sign with the process's real key — no signature is ever forged.
    """

    def __init__(
        self,
        pid: int,
        simulation: Simulation,
        spec: UniversalSpec,
        value_a: Any,
        value_c: Any,
        group_a: Set[int],
        group_c: Set[int],
        byzantine_group: Set[int],
    ):
        super().__init__(pid, simulation)
        self.personality_decisions: Dict[str, Any] = {}
        self._group_a = set(group_a)
        self._group_c = set(group_c)
        self._byzantine_group = set(byzantine_group)
        shim_a = _SplitBrainShim(self, simulation, _WORLD_A, self._group_a, self._byzantine_group)
        shim_c = _SplitBrainShim(self, simulation, _WORLD_C, self._group_c, self._byzantine_group)
        self._personality_a = UniversalProcess(pid, shim_a, spec=spec, proposal=value_a)
        self._personality_c = UniversalProcess(pid, shim_c, spec=spec, proposal=value_c)

    def on_start(self) -> None:
        self._personality_a.on_start()
        self._personality_c.on_start()

    def deliver_message(self, delivery: MessageDelivery) -> None:
        path = delivery.envelope.path
        if path and path[0] in (_WORLD_A, _WORLD_C):
            unwrapped = MessageDelivery(
                sender=delivery.sender,
                receiver=delivery.receiver,
                envelope=Envelope(path[1:], delivery.envelope.payload),
                send_time=delivery.send_time,
            )
            target = self._personality_a if path[0] == _WORLD_A else self._personality_c
            target.deliver_message(unwrapped)
            return
        if delivery.sender in self._group_a:
            self._personality_a.deliver_message(delivery)
        elif delivery.sender in self._group_c:
            self._personality_c.deliver_message(delivery)

    def deliver_timer(self, expiry: TimerExpiry) -> None:
        if expiry.path and expiry.path[0] in (_WORLD_A, _WORLD_C):
            target = self._personality_a if expiry.path[0] == _WORLD_A else self._personality_c
            target.deliver_timer(TimerExpiry(path=expiry.path[1:], tag=expiry.tag))


@dataclass
class PartitionAttackReport:
    """Outcome of one split-brain attack."""

    system: SystemConfig
    group_a: Tuple[int, ...]
    group_c: Tuple[int, ...]
    byzantine_group: Tuple[int, ...]
    decisions_a: Dict[int, Any]
    decisions_c: Dict[int, Any]
    agreement_violated: bool
    all_correct_decided: bool

    def summary(self) -> Dict[str, Any]:
        return {
            "n": self.system.n,
            "t": self.system.t,
            "group_a_decisions": sorted(set(map(str, self.decisions_a.values()))),
            "group_c_decisions": sorted(set(map(str, self.decisions_c.values()))),
            "agreement_violated": self.agreement_violated,
            "all_correct_decided": self.all_correct_decided,
        }


def run_partitioning_attack(
    t: int = 2,
    property_key: str = "strong",
    value_a: Any = 0,
    value_c: Any = 1,
    release_time: float = 400.0,
    seed: int = 1,
    system: Optional[SystemConfig] = None,
) -> PartitionAttackReport:
    """Run the Lemma 2 split-brain attack against Universal.

    By default the system has ``n = 3t`` (the regime where Theorem 1 says the
    attack must succeed for every algorithm and every non-trivial validity
    property).  Passing a ``system`` with ``n > 3t`` instead demonstrates the
    attack failing once the resilience bound is met.
    """
    if system is None:
        system = SystemConfig.without_byzantine_resilience(t)
    spec = UniversalSpec.for_standard_property(system, property_key)

    byzantine = set(range(system.n - system.t, system.n))
    correct = [pid for pid in range(system.n) if pid not in byzantine]
    half = len(correct) // 2
    group_a = set(correct[:half])
    group_c = set(correct[half:])

    delay_model = PartitionDelayModel(
        group_a=group_a, group_c=group_c, release_time=release_time, delta=1.0, seed=seed
    )
    simulation = Simulation(system, delay_model=delay_model)
    for pid in sorted(group_a):
        simulation.add_process(
            UniversalProcess(pid, simulation, spec=spec, proposal=value_a), correct=True
        )
    for pid in sorted(group_c):
        simulation.add_process(
            UniversalProcess(pid, simulation, spec=spec, proposal=value_c), correct=True
        )
    for pid in sorted(byzantine):
        simulation.add_process(
            SplitBrainProcess(
                pid,
                simulation,
                spec=spec,
                value_a=value_a,
                value_c=value_c,
                group_a=group_a,
                group_c=group_c,
                byzantine_group=byzantine,
            ),
            correct=False,
        )
    simulation.run_until_all_correct_decide(until=release_time + 200.0)

    decisions = simulation.decisions()
    decisions_a = {pid: value for pid, value in decisions.items() if pid in group_a}
    decisions_c = {pid: value for pid, value in decisions.items() if pid in group_c}
    return PartitionAttackReport(
        system=system,
        group_a=tuple(sorted(group_a)),
        group_c=tuple(sorted(group_c)),
        byzantine_group=tuple(sorted(byzantine)),
        decisions_a=decisions_a,
        decisions_c=decisions_c,
        agreement_violated=not simulation.agreement_holds(),
        all_correct_decided=simulation.all_correct_decided(),
    )
