"""Experiment drivers: classification (Figure 1), complexity sweeps, lower-bound and partitioning adversaries."""

from .classification import (
    ClassificationCounts,
    Figure1Report,
    classify_standard_properties,
    figure1_report,
    sample_validity_property_space,
)
from .complexity import (
    ExecutionReport,
    SweepResult,
    compare_backends,
    default_proposals,
    fit_growth_exponent,
    run_universal_execution,
    sweep_universal_complexity,
)
from .lower_bound import (
    CheapLeaderConsensus,
    CheapLeaderProcess,
    LowerBoundReport,
    dolev_reischuk_threshold,
    run_lower_bound_experiment,
    threshold_sweep,
)
from .partitioning import PartitionAttackReport, SplitBrainProcess, run_partitioning_attack

__all__ = [
    "ClassificationCounts",
    "Figure1Report",
    "classify_standard_properties",
    "figure1_report",
    "sample_validity_property_space",
    "ExecutionReport",
    "SweepResult",
    "compare_backends",
    "default_proposals",
    "fit_growth_exponent",
    "run_universal_execution",
    "sweep_universal_complexity",
    "LowerBoundReport",
    "CheapLeaderConsensus",
    "CheapLeaderProcess",
    "dolev_reischuk_threshold",
    "run_lower_bound_experiment",
    "threshold_sweep",
    "PartitionAttackReport",
    "SplitBrainProcess",
    "run_partitioning_attack",
]
