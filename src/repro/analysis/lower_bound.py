"""The Theorem 4 experiment: non-trivial consensus needs Omega(t^2) messages.

The paper's lower bound (Lemmas 5-7) shows that any algorithm solving
consensus with a non-trivial validity property must have executions with
more than ``(t/2)^2`` messages: otherwise, by a pigeonhole argument, some
process ``Q`` can decide *without receiving any message*, and merging that
local behaviour with an execution in which ``Q`` is silent and a different
value is decided violates Agreement.

The experiment makes the bound tangible by:

* running a deliberately cheap strawman protocol (a single leader broadcast,
  ``O(n)`` messages, with a local timeout fallback — the fallback is exactly
  a "decide without receiving messages" behaviour) and showing that the
  Dolev-Reischuk-style adversary (isolate the victim until after its
  timeout) makes two correct processes decide differently;
* running Universal under the *same* adversarial scheduling and showing that
  it never violates Agreement — it simply pays the quadratic number of
  messages the bound demands;
* reporting the ``(ceil(t/2))^2`` threshold next to the measured message
  complexity of Universal, which always exceeds it.

Examples
--------

The Theorem 4 threshold grows quadratically in the fault budget:

>>> from repro.core.system import SystemConfig
>>> dolev_reischuk_threshold(SystemConfig(4, 1))
1
>>> dolev_reischuk_threshold(SystemConfig(10, 3))
4
>>> dolev_reischuk_threshold(SystemConfig(16, 5))
9
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from ..consensus.universal_protocol import universal_process_factory
from ..core.system import SystemConfig
from ..core.universal import UniversalSpec
from ..sim.network import DelayModel
from ..sim.process import Process, ProtocolModule
from ..sim.simulation import Simulation


def dolev_reischuk_threshold(system: SystemConfig) -> int:
    """The ``(ceil(t/2))^2`` message threshold below which the attack of Theorem 4 applies."""
    half = math.ceil(system.t / 2)
    return half * half


class CheapLeaderConsensus(ProtocolModule):
    """A strawman sub-quadratic consensus: one leader broadcast plus a timeout fallback.

    The leader broadcasts its proposal (``n`` messages in total); every
    process decides the leader's value on receipt, or falls back to deciding
    its *own* proposal when its timer fires first.  The protocol terminates,
    and under friendly scheduling satisfies Weak Validity — but the fallback
    is precisely a correct local behaviour that decides without having
    received any message, which is what the Theorem 4 adversary exploits.
    """

    LEADER = 0

    def __init__(self, process: Process, proposal: Any, timeout: float, on_decide, name: str = "cheap"):
        super().__init__(process, name)
        self.proposal = proposal
        self.timeout = timeout
        self._on_decide = on_decide
        self._decided = False

    def start(self) -> None:
        if self.pid == self.LEADER:
            self.broadcast(("lead", self.proposal))
        self.set_timer(self.timeout, "fallback")

    def on_message(self, sender: int, payload: Any) -> None:
        if sender == self.LEADER and isinstance(payload, tuple) and payload[0] == "lead":
            self._decide(payload[1])

    def on_timer(self, tag: Any) -> None:
        if tag == "fallback":
            self._decide(self.proposal)

    def _decide(self, value: Any) -> None:
        if not self._decided:
            self._decided = True
            self._on_decide(value)


class CheapLeaderProcess(Process):
    def __init__(self, pid: int, simulation: Simulation, proposal: Any, timeout: float = 10.0):
        super().__init__(pid, simulation)
        self.proposal = proposal
        self.timeout = timeout

    def on_start(self) -> None:
        self.protocol = CheapLeaderConsensus(self, self.proposal, self.timeout, on_decide=self.decide)
        self.protocol.start()


def _isolation_schedule(victim: int, release_time: float):
    """Adversarial scheduling: all messages to/from the victim are delayed until ``release_time``.

    The partial-synchrony contract is preserved by setting GST at (or after)
    the release time.
    """

    def hook(sender: int, receiver: int, send_time: float, default: float) -> Optional[float]:
        if victim in (sender, receiver) and send_time < release_time:
            return release_time + 0.5
        return None

    return hook


@dataclass
class LowerBoundReport:
    """Outcome of the Theorem 4 experiment on one system size."""

    system: SystemConfig
    threshold: int
    cheap_messages: int
    cheap_agreement_violated: bool
    cheap_decisions: Dict[int, Any]
    universal_messages: int
    universal_agreement_violated: bool
    universal_exceeds_threshold: bool

    def summary(self) -> Dict[str, Any]:
        return {
            "n": self.system.n,
            "t": self.system.t,
            "threshold_(t/2)^2": self.threshold,
            "cheap_protocol_messages": self.cheap_messages,
            "cheap_protocol_disagrees": self.cheap_agreement_violated,
            "universal_messages": self.universal_messages,
            "universal_disagrees": self.universal_agreement_violated,
            "universal_above_threshold": self.universal_exceeds_threshold,
        }


def run_lower_bound_experiment(
    n: int = 10,
    property_key: str = "strong",
    victim: Optional[int] = None,
    timeout: float = 10.0,
    seed: int = 1,
) -> LowerBoundReport:
    """Run the isolation adversary against the cheap protocol and against Universal."""
    system = SystemConfig.with_optimal_resilience(n)
    chosen_victim = victim if victim is not None else system.n - 1
    if chosen_victim == CheapLeaderConsensus.LEADER:
        raise ValueError("the victim must differ from the leader of the strawman protocol")
    release_time = timeout * 4
    proposals = {pid: ("L" if pid == CheapLeaderConsensus.LEADER else f"own-{pid}") for pid in range(system.n)}

    # --- Strawman protocol under the isolation adversary -----------------
    cheap_delay = DelayModel(
        gst=release_time,
        delta=1.0,
        seed=seed,
        schedule_hook=_isolation_schedule(chosen_victim, release_time),
    )
    cheap_sim = Simulation(system, delay_model=cheap_delay)
    cheap_sim.populate(lambda pid, s: CheapLeaderProcess(pid, s, proposals[pid], timeout=timeout))
    cheap_sim.run_until_all_correct_decide(until=release_time * 3)

    # --- Universal under the same adversarial scheduling -----------------
    spec = UniversalSpec.for_standard_property(system, property_key)
    universal_delay = DelayModel(
        gst=release_time,
        delta=1.0,
        seed=seed,
        schedule_hook=_isolation_schedule(chosen_victim, release_time),
    )
    universal_sim = Simulation(system, delay_model=universal_delay)
    universal_sim.populate(universal_process_factory(spec, {pid: proposals[pid] for pid in range(system.n)}))
    universal_sim.run_until_all_correct_decide(until=release_time * 30)

    threshold = dolev_reischuk_threshold(system)
    return LowerBoundReport(
        system=system,
        threshold=threshold,
        cheap_messages=cheap_sim.metrics.total_messages,
        cheap_agreement_violated=not cheap_sim.agreement_holds(),
        cheap_decisions=cheap_sim.decisions(),
        universal_messages=universal_sim.metrics.total_messages,
        universal_agreement_violated=not universal_sim.agreement_holds(),
        universal_exceeds_threshold=universal_sim.metrics.total_messages > threshold,
    )


def threshold_sweep(sizes: Tuple[int, ...] = (4, 7, 10, 13, 16)) -> Dict[int, Dict[str, Any]]:
    """Report the Theorem 4 threshold next to Universal's measured message count for several sizes."""
    rows: Dict[int, Dict[str, Any]] = {}
    for n in sizes:
        report = run_lower_bound_experiment(n)
        rows[n] = report.summary()
    return rows
