"""Complexity sweeps: message/word counts and latency of Universal across system sizes.

These drivers regenerate the quantitative side of the paper's results:

* Theorem 5 / Algorithm 1: Universal on the authenticated backend uses
  ``O(n^2)`` messages — the sweep measures messages after GST as ``n`` grows
  and fits the growth exponent.
* Appendix B.2 / Algorithm 3: the non-authenticated backend is polynomially
  more expensive — the same sweep exposes the gap.
* Appendix B.3 / Algorithm 6: the compact backend trades latency for
  ``O(n^2 log n)`` communication — word counts and latency are reported.

Absolute numbers depend on the simulator, but the *shape* (growth exponents,
orderings, crossovers) is what the paper claims and what
``EXPERIMENTS.md`` records.

Examples
--------

The growth-exponent fit recovers exact power laws (a quadratic count fits
to slope 2, a cubic to slope 3):

>>> round(fit_growth_exponent([2, 4, 8], [4, 16, 64]), 6)
2.0
>>> round(fit_growth_exponent([10, 100], [1000, 1000000]), 6)
3.0

Sweeps use a deterministic, mildly heterogeneous proposal assignment:

>>> from repro.core.system import SystemConfig
>>> default_proposals(SystemConfig(5, 1))
{0: 0, 1: 1, 2: 2, 3: 0, 4: 1}
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence

from ..consensus.universal_protocol import universal_process_factory
from ..core.input_config import InputConfiguration
from ..core.system import SystemConfig
from ..core.universal import UniversalSpec
from ..sim.adversary import silent_factory
from ..sim.network import DelayModel, SynchronousDelayModel
from ..sim.simulation import Simulation


@dataclass
class ExecutionReport:
    """Outcome and complexity metrics of one Universal execution."""

    system: SystemConfig
    backend: str
    property_key: str
    message_complexity: int
    communication_complexity: int
    total_messages: int
    decision_latency: float
    decisions: Dict[int, Any]
    agreement: bool
    all_decided: bool
    validity_satisfied: bool

    def summary_row(self) -> Dict[str, Any]:
        return {
            "n": self.system.n,
            "t": self.system.t,
            "backend": self.backend,
            "property": self.property_key,
            "messages": self.message_complexity,
            "words": self.communication_complexity,
            "latency": round(self.decision_latency, 2),
            "agreement": self.agreement,
            "valid": self.validity_satisfied,
        }


def default_proposals(system: SystemConfig, spread: int = 3) -> Dict[int, int]:
    """A deterministic, mildly heterogeneous proposal assignment."""
    return {pid: pid % spread for pid in range(system.n)}


def run_universal_execution(
    system: SystemConfig,
    property_key: str = "strong",
    backend: str = "authenticated",
    proposals: Optional[Dict[int, Any]] = None,
    faulty: Sequence[int] = (),
    gst: float = 0.0,
    delta: float = 1.0,
    seed: int = 1,
    spec: Optional[UniversalSpec] = None,
    time_limit: float = 50_000.0,
) -> ExecutionReport:
    """Run one Universal execution and report its complexity and correctness."""
    if spec is None:
        spec = UniversalSpec.for_standard_property(system, property_key)
    if proposals is None:
        proposals = default_proposals(system)
    delay = (
        SynchronousDelayModel(delta=delta, seed=seed)
        if gst == 0.0
        else DelayModel(gst=gst, delta=delta, seed=seed)
    )
    simulation = Simulation(system, delay_model=delay)
    simulation.populate(
        universal_process_factory(spec, proposals, backend=backend),
        faulty=faulty,
        faulty_factory=silent_factory,
    )
    simulation.run_until_all_correct_decide(until=time_limit)

    decisions = simulation.decisions()
    execution_config = InputConfiguration.from_mapping(
        {pid: proposals[pid] for pid in simulation.correct_processes}
    )
    validity_satisfied = all(
        spec.validity.is_admissible(execution_config, value) for value in decisions.values()
    )
    return ExecutionReport(
        system=system,
        backend=backend,
        property_key=property_key,
        message_complexity=simulation.metrics.message_complexity,
        communication_complexity=simulation.metrics.communication_complexity,
        total_messages=simulation.metrics.total_messages,
        decision_latency=simulation.metrics.decision_latency(),
        decisions=decisions,
        agreement=simulation.agreement_holds(),
        all_decided=simulation.all_correct_decided(),
        validity_satisfied=validity_satisfied,
    )


@dataclass
class SweepResult:
    """Result of a complexity sweep over system sizes."""

    backend: str
    property_key: str
    rows: List[ExecutionReport] = field(default_factory=list)

    def sizes(self) -> List[int]:
        return [report.system.n for report in self.rows]

    def messages(self) -> List[int]:
        return [report.message_complexity for report in self.rows]

    def words(self) -> List[int]:
        return [report.communication_complexity for report in self.rows]

    def latencies(self) -> List[float]:
        return [report.decision_latency for report in self.rows]

    def message_growth_exponent(self) -> float:
        return fit_growth_exponent(self.sizes(), self.messages())

    def word_growth_exponent(self) -> float:
        return fit_growth_exponent(self.sizes(), self.words())

    def table(self) -> List[Dict[str, Any]]:
        return [report.summary_row() for report in self.rows]


def sweep_universal_complexity(
    sizes: Iterable[int],
    backend: str = "authenticated",
    property_key: str = "strong",
    with_faults: bool = True,
    seed: int = 1,
    gst: float = 0.0,
) -> SweepResult:
    """Measure Universal's complexity for each system size in ``sizes``.

    ``t`` is set to ``floor((n - 1) / 3)`` (optimal resilience) and, when
    ``with_faults`` is true, the last ``t`` processes are silent Byzantine —
    the worst case for the paper-style message counting, since correct
    processes must still terminate without them.
    """
    result = SweepResult(backend=backend, property_key=property_key)
    for n in sizes:
        system = SystemConfig.with_optimal_resilience(n)
        faulty = tuple(range(system.n - system.t, system.n)) if with_faults else ()
        report = run_universal_execution(
            system,
            property_key=property_key,
            backend=backend,
            faulty=faulty,
            seed=seed,
            gst=gst,
        )
        result.rows.append(report)
    return result


def fit_growth_exponent(sizes: Sequence[int], counts: Sequence[float]) -> float:
    """Least-squares slope of ``log(count)`` against ``log(n)``.

    An exponent near 2 indicates quadratic growth, near 3 cubic, and so on.
    """
    if len(sizes) != len(counts) or len(sizes) < 2:
        raise ValueError("need at least two (size, count) points with matching lengths")
    xs = [math.log(size) for size in sizes]
    ys = [math.log(max(count, 1)) for count in counts]
    mean_x = sum(xs) / len(xs)
    mean_y = sum(ys) / len(ys)
    numerator = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    denominator = sum((x - mean_x) ** 2 for x in xs)
    if denominator == 0:
        raise ValueError("all sizes are identical; cannot fit a growth exponent")
    return numerator / denominator


def compare_backends(
    sizes: Iterable[int],
    backends: Sequence[str] = ("authenticated", "non-authenticated"),
    property_key: str = "strong",
    seed: int = 1,
) -> Dict[str, SweepResult]:
    """Run the same sweep on several vector-consensus backends."""
    return {
        backend: sweep_universal_complexity(sizes, backend=backend, property_key=property_key, seed=seed)
        for backend in backends
    }
