"""The Figure 1 experiment: classifying the landscape of validity properties.

Figure 1 of the paper summarises the main characterization: among all
validity properties, the solvable ones are exactly those satisfying the
similarity condition (for ``n > 3t``), the trivial ones are a strict subset
of the solvable ones, and for ``n <= 3t`` the solvable and trivial sets
coincide.  This module regenerates that picture computationally:

* the named properties from the literature are classified for several
  resilience regimes;
* the space of *all* validity properties over a tiny system is sampled
  uniformly and each sample is classified, producing the trivial / solvable /
  unsolvable population counts that the figure depicts qualitatively.

Examples
--------

Classify every named property over one system and read off a verdict:

>>> from repro.core.system import SystemConfig
>>> results = classify_standard_properties(SystemConfig(4, 1), [0, 1])
>>> (results["strong"].solvable, results["strong"].trivial)
(True, False)

Sampling the full property space reproduces Figure 1's structural facts
(trivial ⊆ solvable ⊆ satisfying ``C_S``):

>>> counts = sample_validity_property_space(SystemConfig(3, 1), [0, 1], [0, 1], samples=10, seed=1)
>>> counts.total
10
>>> counts.consistent_with_figure_1(SystemConfig(3, 1))
True
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from ..core.input_config import Value, enumerate_input_configurations
from ..core.properties import standard_properties
from ..core.solvability import Classification, classify
from ..core.system import SystemConfig
from ..core.validity import TableValidity


@dataclass
class ClassificationCounts:
    """Population counts of a classified set of validity properties."""

    total: int = 0
    trivial: int = 0
    solvable: int = 0
    solvable_non_trivial: int = 0
    unsolvable: int = 0
    satisfying_similarity_condition: int = 0
    examples: Dict[str, str] = field(default_factory=dict)

    def record(self, name: str, classification: Classification) -> None:
        self.total += 1
        if classification.trivial:
            self.trivial += 1
        if classification.satisfies_similarity_condition:
            self.satisfying_similarity_condition += 1
        if classification.solvable:
            self.solvable += 1
            if not classification.trivial:
                self.solvable_non_trivial += 1
                self.examples.setdefault("solvable-non-trivial", name)
            else:
                self.examples.setdefault("trivial", name)
        else:
            self.unsolvable += 1
            self.examples.setdefault("unsolvable", name)

    def consistent_with_figure_1(self, system: SystemConfig) -> bool:
        """Check the structural facts Figure 1 depicts.

        * trivial properties are always solvable (trivial <= solvable);
        * solvable properties always satisfy the similarity condition;
        * with ``n <= 3t`` there are no solvable non-trivial properties.
        """
        if self.trivial > self.solvable:
            return False
        if self.solvable > self.satisfying_similarity_condition:
            return False
        if not system.tolerates_byzantine_faults() and self.solvable_non_trivial > 0:
            return False
        return True

    def as_dict(self) -> Dict[str, Any]:
        return {
            "total": self.total,
            "trivial": self.trivial,
            "solvable": self.solvable,
            "solvable_non_trivial": self.solvable_non_trivial,
            "unsolvable": self.unsolvable,
            "satisfying_C_S": self.satisfying_similarity_condition,
        }


def classify_standard_properties(
    system: SystemConfig, domain: Sequence[Value]
) -> Dict[str, Classification]:
    """Classify every named property from the literature over a finite domain."""
    results: Dict[str, Classification] = {}
    for key, prop in standard_properties(system, output_domain=domain).items():
        results[key] = classify(prop, system, domain, domain)
    return results


def sample_validity_property_space(
    system: SystemConfig,
    input_domain: Sequence[Value],
    output_domain: Sequence[Value],
    samples: int = 200,
    seed: int = 0,
) -> ClassificationCounts:
    """Uniformly sample validity properties and classify each one.

    A validity property over finite domains is an arbitrary assignment of a
    non-empty subset of ``V_O`` to each input configuration; sampling assigns
    each configuration an independently chosen random non-empty subset.
    """
    if samples < 1:
        raise ValueError("need at least one sample")
    if not output_domain:
        raise ValueError(
            "output domain must be non-empty: a validity property assigns a non-empty "
            "subset of V_O to every configuration, so an empty V_O admits no properties"
        )
    rng = random.Random(seed)
    configurations = list(enumerate_input_configurations(system, input_domain))
    non_empty_subsets = [
        frozenset(subset)
        for size in range(1, len(output_domain) + 1)
        for subset in itertools.combinations(output_domain, size)
    ]
    counts = ClassificationCounts()
    for index in range(samples):
        table = {config: rng.choice(non_empty_subsets) for config in configurations}
        prop = TableValidity(table, output_domain, name=f"sampled-{index}", default_all=False)
        counts.record(prop.name, classify(prop, system, input_domain, output_domain))
    return counts


@dataclass
class Figure1Report:
    """Everything needed to regenerate Figure 1's qualitative content."""

    system: SystemConfig
    domain: Sequence[Value]
    named: Dict[str, Classification]
    sampled: Optional[ClassificationCounts]

    def named_rows(self) -> List[Dict[str, Any]]:
        return [
            {
                "property": key,
                "trivial": result.trivial,
                "satisfies_C_S": result.satisfies_similarity_condition,
                "solvable": result.solvable,
            }
            for key, result in sorted(self.named.items())
        ]


def figure1_report(
    system: SystemConfig,
    domain: Sequence[Value] = (0, 1),
    samples: int = 0,
    seed: int = 0,
) -> Figure1Report:
    """Classify the named properties (and optionally a random sample of the space)."""
    named = classify_standard_properties(system, list(domain))
    sampled = (
        sample_validity_property_space(system, list(domain), list(domain), samples=samples, seed=seed)
        if samples > 0
        else None
    )
    return Figure1Report(system=system, domain=tuple(domain), named=named, sampled=sampled)
