"""Batch classification of validity-property families — the theory↔simulation bridge.

The paper's headline results are *verdicts about validity properties*: the
triviality dichotomy for ``n <= 3t`` (Theorems 1-2), the similarity
condition ``C_S`` characterising solvability for ``n > 3t`` (Theorems 3
and 5), and the ``Omega(t^2)`` message lower bound for anything non-trivial
(Theorem 4).  The decision procedures for all of these live in
:mod:`repro.core`; this module turns them into a *sweepable workload*:

* a :class:`PropertyTask` names one ``(property, system, domain)`` point as
  pure picklable data, exactly like a
  :class:`~repro.experiments.scenario.ScenarioSpec` names one execution;
* :func:`classify_task` maps a task to a deterministic
  :class:`AnalysisVerdict` record (solvable / trivial / ``C_S`` witness /
  message-complexity bound) — a pure function, so verdicts are
  content-addressable and serial == parallel byte-identically;
* parameterized families (:func:`named_tasks`, :func:`enumerated_tasks`,
  :func:`sampled_tasks`) generate property populations over growing ``n``
  and ``t``, dispatched through the persistent-pool
  :meth:`~repro.experiments.runner.Runner.iter_tasks` and cached in the
  :class:`~repro.store.store.RunStore` (:func:`run_analysis`);
* :func:`cross_check_matrix` closes the loop with the *empirical* side:
  every scenario in the sweep matrix whose protocol targets a validity
  property is checked against the classifier's verdict — a solvable, swept
  property must show agreement + validity in the recorded summaries, and an
  unsolvable property must have no passing protocol.

Two classification methods, one verdict
---------------------------------------

Over small finite domains the exact decision procedures
(:func:`~repro.core.triviality.check_triviality`,
:func:`~repro.core.similarity_condition.check_similarity_condition`) settle
every question by enumeration.  Their cost grows with
``|I_{n-t}| * |I|`` (see :func:`enumeration_cost`), so for the larger
systems the sweep matrix uses (``n=7, t=2`` and ``n=10, t=3`` presets) the
pipeline switches to the *closed-form oracle* for the named standard
properties — the same per-property arguments that justify the closed-form
``Lambda`` functions of :mod:`repro.core.lambda_functions` (e.g. Strong
Validity satisfies ``C_S`` iff ``n > 3t``; Correct-Proposal Validity iff
``n > (|V_I| + 1) t``, the Fitzi-Garay bound).  Wherever both methods are
affordable the test-suite pins them to identical verdicts, so the closed
form is an *extrapolation of a cross-validated rule*, not a separate
theory.

Examples
--------

Classify one named property on one system (a pure function of the task):

>>> task = PropertyTask(family="named", key="strong", n=4, t=1, domain=(0, 1))
>>> verdict = classify_task(task)
>>> (verdict.solvable, verdict.trivial, verdict.satisfies_similarity_condition)
(True, False, True)

With ``n <= 3t`` the same non-trivial property becomes unsolvable
(Theorem 1), while a trivial property stays solvable (Theorem 2):

>>> classify_task(PropertyTask(family="named", key="strong", n=3, t=1, domain=(0, 1))).solvable
False
>>> trivial = classify_task(PropertyTask(family="named", key="constant", n=3, t=1, domain=(0, 1)))
>>> (trivial.solvable, trivial.witness)
(True, '0')

Tasks carry stable labels and content fingerprints (what the run store
keys verdicts on):

>>> task.label
'named:strong:n4:t1:d0-1'
>>> len(task.fingerprint())
64

The default family spans well over fifty properties:

>>> len(default_tasks()) >= 50
True
"""

from __future__ import annotations

import itertools
import math
import random
from dataclasses import asdict, dataclass
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..core.input_config import Value, count_input_configurations, enumerate_input_configurations
from ..core.ordering import canonical_sorted
from ..core.properties import standard_properties
from ..core.solvability import classify, enumerate_validity_properties
from ..core.system import SystemConfig
from ..core.validity import TableValidity, ValidityProperty
from .lower_bound import dolev_reischuk_threshold

ANALYSIS_FORMAT_VERSION = 1
"""Version of the verdict record / verdict baseline JSON shape."""

DEFAULT_ENUMERATION_BUDGET = 2_000_000
"""Upper bound on ``enumeration_cost`` for the exact decision procedures.

Tasks above the budget fall back to the closed-form oracle (named standard
properties with ``n > 3t`` only).  The constant is part of the analysis
source, so changing it changes
:func:`~repro.store.fingerprint.analysis_code_fingerprint` and invalidates
every cached verdict — the budget can never silently relabel a stored
record's method.
"""

_NAMED_KEYS: Tuple[str, ...] = (
    "strong",
    "weak",
    "correct-proposal",
    "median",
    "interval",
    "convex-hull",
    "constant",
    "free",
)

DEFAULT_NAMED_SYSTEMS: Tuple[Tuple[int, int, Tuple[int, ...]], ...] = (
    # (n, t, shared input/output domain) — spans both resilience regimes:
    # n <= 3t (Theorem 1 territory) and n > 3t (C_S territory), and two
    # domain sizes so the Fitzi-Garay bound n > (|V_I| + 1) t flips within
    # the family.
    (3, 1, (0, 1)),
    (4, 1, (0, 1)),
    (4, 1, (0, 1, 2)),
    (5, 1, (0, 1)),
    (6, 2, (0, 1)),
)


class AnalysisError(RuntimeError):
    """A property task that no available classification method can decide."""


# ----------------------------------------------------------------------
# Tasks: one (property, system, domain) point as pure data
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PropertyTask:
    """One point of the validity-property space, as plain picklable data.

    Attributes:
        family: Which generator produced the task — ``"named"`` (standard
            properties from the literature), ``"enumerated"`` (exhaustive
            prefix of *all* table properties over a tiny system) or
            ``"sampled"`` (uniformly random table properties).
        key: The property key within the family: a
            :func:`~repro.core.properties.standard_properties` key for
            ``named``, the literal family name otherwise.
        n: System size.
        t: Fault threshold.
        domain: The shared finite input/output domain the property is
            classified over.
        index: Disambiguator within the family — the enumeration rank for
            ``enumerated``, the sampling seed for ``sampled``, ``0`` for
            ``named``.
    """

    family: str
    key: str
    n: int
    t: int
    domain: Tuple[Value, ...]
    index: int = 0

    def system(self) -> SystemConfig:
        return SystemConfig(self.n, self.t)

    @property
    def label(self) -> str:
        """Stable human-readable identity (the verdict-baseline key)."""
        return _task_label(self.family, self.key, self.n, self.t, self.domain, self.index)

    def payload(self) -> Dict[str, Any]:
        """The canonical content of the task (what gets fingerprinted)."""
        return {
            "family": self.family,
            "key": self.key,
            "n": self.n,
            "t": self.t,
            "domain": list(self.domain),
            "index": self.index,
        }

    def fingerprint(self) -> str:
        """SHA-256 content hash of the task (the run-store key component)."""
        from ..store.fingerprint import payload_fingerprint

        return payload_fingerprint(self.payload())

    def build_property(self) -> ValidityProperty:
        """Materialise the validity property the task names."""
        system = self.system()
        domain = list(self.domain)
        if self.family == "named":
            properties = standard_properties(system, output_domain=domain)
            try:
                return properties[self.key]
            except KeyError:
                raise AnalysisError(
                    f"unknown named property {self.key!r}; known: {sorted(properties)}"
                ) from None
        if self.family == "enumerated":
            prop = next(
                itertools.islice(
                    enumerate_validity_properties(system, domain, domain), self.index, None
                ),
                None,
            )
            if prop is None:
                raise AnalysisError(
                    f"enumeration index {self.index} out of range for n={self.n}, t={self.t}, "
                    f"domain {self.domain}"
                )
            return prop
        if self.family == "sampled":
            return _sampled_property(system, domain, seed=self.index)
        raise AnalysisError(f"unknown property family {self.family!r}")


def _sampled_property(
    system: SystemConfig, domain: Sequence[Value], seed: int
) -> TableValidity:
    """One uniformly sampled table property (same construction as Figure 1 sampling)."""
    rng = random.Random(seed)
    configurations = list(enumerate_input_configurations(system, domain))
    non_empty_subsets = [
        frozenset(subset)
        for size in range(1, len(domain) + 1)
        for subset in itertools.combinations(domain, size)
    ]
    table = {config: rng.choice(non_empty_subsets) for config in configurations}
    return TableValidity(table, domain, name=f"sampled-{seed}", default_all=False)


# ----------------------------------------------------------------------
# Verdicts: the deterministic classification record
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AnalysisVerdict:
    """The classifier's verdict for one :class:`PropertyTask`.

    Every field is a deterministic pure function of the task and the
    analysis code; containers are canonically ordered, so
    :meth:`canonical_json` is byte-identical across serial/parallel
    invocations and across hosts — the property the verdict baseline and
    the run-store cache rely on.

    Attributes:
        family, key, n, t, domain, index: The task identity (see
            :class:`PropertyTask`).
        property_name: Display name of the materialised property.
        method: ``"enumeration"`` (exact decision procedures) or
            ``"closed-form"`` (per-property oracle for large systems).
        trivial: Whether an always-admissible value exists (Theorem 2).
        witness: Canonical always-admissible value when trivial.
        always_admissible: Every always-admissible value (canonical order).
        satisfies_similarity_condition: Whether ``C_S`` holds (Definition 2).
        similarity_counterexample: A minimal configuration whose similarity
            neighbourhood admits no common value, when ``C_S`` fails.
        solvable: The paper's characterization applied to the facts above.
        reason: Human-readable explanation citing the relevant theorem.
        quadratic_threshold: The Theorem 4 bound ``(ceil(t/2))^2`` — any
            algorithm for a non-trivial property has executions exceeding
            this many messages.
        message_bound: Human-readable message-complexity consequence.
        configurations_checked: ``|I|`` enumerated (0 under closed form).
        minimal_configurations_checked: ``|I_{n-t}|`` enumerated (0 under
            closed form).
    """

    family: str
    key: str
    property_name: str
    n: int
    t: int
    domain: Tuple[Value, ...]
    index: int
    method: str
    trivial: bool
    witness: Optional[str]
    always_admissible: Tuple[str, ...]
    satisfies_similarity_condition: bool
    similarity_counterexample: Optional[str]
    solvable: bool
    reason: str
    quadratic_threshold: int
    message_bound: str
    configurations_checked: int
    minimal_configurations_checked: int

    @property
    def label(self) -> str:
        return _task_label(self.family, self.key, self.n, self.t, self.domain, self.index)

    def to_dict(self) -> Dict[str, Any]:
        data = asdict(self)
        data["domain"] = list(self.domain)
        data["always_admissible"] = list(self.always_admissible)
        return data

    def canonical_json(self) -> str:
        """Canonical serialisation: byte-identical for identical verdicts."""
        import json

        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "AnalysisVerdict":
        """Exact inverse of :meth:`to_dict` (the store round-trip contract)."""
        return cls(
            family=data["family"],
            key=data["key"],
            property_name=data["property_name"],
            n=data["n"],
            t=data["t"],
            domain=tuple(data["domain"]),
            index=data["index"],
            method=data["method"],
            trivial=data["trivial"],
            witness=data["witness"],
            always_admissible=tuple(data["always_admissible"]),
            satisfies_similarity_condition=data["satisfies_similarity_condition"],
            similarity_counterexample=data["similarity_counterexample"],
            solvable=data["solvable"],
            reason=data["reason"],
            quadratic_threshold=data["quadratic_threshold"],
            message_bound=data["message_bound"],
            configurations_checked=data["configurations_checked"],
            minimal_configurations_checked=data["minimal_configurations_checked"],
        )


# ----------------------------------------------------------------------
# Classification: enumeration where affordable, closed form beyond
# ----------------------------------------------------------------------
def enumeration_cost(system: SystemConfig, domain_size: int) -> int:
    """Upper bound on similarity-enumeration work: ``|I_{n-t}| * |I|``.

    The triviality check is linear in ``|I|``; the similarity-condition
    check intersects the admissible sets over the similarity neighbourhood
    of every minimal configuration, which scans ``|I|`` candidates for each
    of the ``|I_{n-t}|`` minimal configurations — the dominant term.
    """
    minimal = math.comb(system.n, system.quorum) * domain_size**system.quorum
    return minimal * count_input_configurations(system, domain_size)


def classification_method(task: PropertyTask, budget: int = DEFAULT_ENUMERATION_BUDGET) -> str:
    """Pick the cheapest sound method for a task: enumeration within budget, else closed form."""
    if enumeration_cost(task.system(), len(task.domain)) <= budget:
        return "enumeration"
    return "closed-form"


def _task_label(family: str, key: str, n: int, t: int, domain: Tuple[Value, ...], index: int) -> str:
    """The one label format shared by tasks and verdicts (their join key).

    Baselines, :meth:`AnalysisRun.by_label` and the cross-check all join a
    task's label to its verdict's label, so the format lives in exactly one
    place.
    """
    base = f"{family}:{key}:n{n}:t{t}:d" + "-".join(str(value) for value in domain)
    if family == "named":
        return base
    return f"{base}:i{index}"


def _canonical_value(value: Any) -> str:
    """Render a verdict value as a stable string.

    Deliberately owned by this module (not borrowed from
    ``repro.experiments.runner.canonical_value``) so that everything shaping
    verdict bytes is covered by
    :func:`~repro.store.fingerprint.analysis_code_fingerprint` — an edit to
    the runner's decision rendering must never silently stale-serve cached
    verdicts.  Same convention: ``repr`` for scalars, recursive tuples,
    ``pairs`` expansion for configuration-like values.
    """
    if isinstance(value, (bool, int, float, str)) or value is None:
        return repr(value)
    if isinstance(value, (list, tuple)):
        return "(" + ", ".join(_canonical_value(item) for item in value) + ")"
    pairs = getattr(value, "pairs", None)
    if pairs is not None:
        return _canonical_value([(pair.process, pair.proposal) for pair in pairs])
    return repr(value)


def _closed_form_facts(task: PropertyTask) -> Tuple[bool, Tuple[Value, ...], bool, str]:
    """The closed-form oracle: ``(trivial, always_admissible, cs_holds, cs_note)``.

    Only defined for the named standard properties with ``n > 3t`` — the
    regime where the closed-form ``Lambda`` constructions of
    :mod:`repro.core.lambda_functions` are proved correct.  Each rule is the
    per-property argument from that module, cross-validated against the
    exact enumeration wherever both are affordable
    (``tests/test_analysis_pipeline.py``).
    """
    system = task.system()
    if task.family != "named":
        raise AnalysisError(
            f"task {task.label} exceeds the enumeration budget and only named standard "
            "properties have a closed-form oracle"
        )
    if not system.tolerates_byzantine_faults():
        raise AnalysisError(
            f"task {task.label} exceeds the enumeration budget and the closed-form oracle "
            "requires n > 3t (shrink the system or raise the budget)"
        )
    ordered = canonical_sorted(set(task.domain))
    d = len(ordered)
    key = task.key
    if key == "constant":
        # ConstantValidity admits exactly its constant (the first domain value).
        constant = task.domain[0]
        return True, (constant,), True, "trivial properties satisfy C_S vacuously"
    if key == "free" or d == 1:
        # Free Validity admits everything; any property over a singleton
        # domain admits the single value everywhere (val(c) is non-empty).
        return True, tuple(ordered), True, "trivial properties satisfy C_S vacuously"
    # Every other named property is non-trivial once |domain| >= 2: the
    # unanimous configurations for two distinct values already admit
    # disjoint singletons, emptying the always-admissible intersection.
    if key in ("strong", "weak", "median", "interval", "convex-hull"):
        # The closed-form Lambda for these exists for every n > 3t (see the
        # respective constructions and proofs in repro.core.lambda_functions;
        # "median" is MedianValidity(radius=2t) and "interval" is
        # IntervalValidity(k=t+1, radius=t), for which k <= n - 2t follows
        # from n > 3t).
        return False, (), True, f"closed-form Lambda exists for {key!r} when n > 3t"
    if key == "correct-proposal":
        # Fitzi-Garay: some value is guaranteed to appear >= t + 1 times in
        # every decided vector of n - t proposals iff n - t > |V_I| * t.
        holds = system.n > (d + 1) * system.t
        note = (
            f"n > (|V_I| + 1)t = {(d + 1) * system.t} guarantees a (t+1)-frequent value in "
            "every vector"
            if holds
            else f"n <= (|V_I| + 1)t = {(d + 1) * system.t}: a vector can spread proposals so "
            "that no value appears t + 1 times (Fitzi-Garay bound)"
        )
        return False, (), holds, note
    raise AnalysisError(
        f"named property {key!r} has no closed-form oracle; known: {sorted(_NAMED_KEYS)}"
    )


def classify_task(
    task: PropertyTask, budget: int = DEFAULT_ENUMERATION_BUDGET
) -> AnalysisVerdict:
    """Classify one property task into an :class:`AnalysisVerdict` (pure function).

    Applies the paper's characterization: trivial properties are solvable
    outright (Theorem 2); non-trivial properties are unsolvable when
    ``n <= 3t`` (Theorem 1) and solvable iff ``C_S`` holds when ``n > 3t``
    (Theorems 3 and 5).  Non-trivial properties additionally carry the
    Theorem 4 quadratic message bound.
    """
    system = task.system()
    method = classification_method(task, budget)
    domain = list(task.domain)

    if method == "enumeration":
        prop = task.build_property()
        classification = classify(prop, system, domain, domain)
        triviality = classification.triviality
        similarity = classification.similarity
        always = tuple(
            _canonical_value(value) for value in canonical_sorted(triviality.always_admissible)
        )
        verdict_fields = dict(
            property_name=prop.name,
            trivial=classification.trivial,
            witness=_canonical_value(triviality.witness) if classification.trivial else None,
            always_admissible=always,
            satisfies_similarity_condition=classification.satisfies_similarity_condition,
            similarity_counterexample=(
                repr(similarity.counterexample) if similarity.counterexample is not None else None
            ),
            solvable=classification.solvable,
            reason=classification.reason,
            configurations_checked=triviality.configurations_checked,
            minimal_configurations_checked=similarity.minimal_configurations_checked,
        )
    else:
        trivial, always_values, cs_holds, cs_note = _closed_form_facts(task)
        always = tuple(_canonical_value(value) for value in canonical_sorted(always_values))
        if trivial:
            solvable = True
            reason = (
                f"trivial: value {always[0]} is admissible for every input configuration, "
                "so every process can decide it immediately (Theorem 2; closed form)"
            )
        elif cs_holds:
            solvable = True
            reason = (
                "non-trivial, n > 3t, and the similarity condition holds — "
                f"{cs_note} — hence solvable by the Universal algorithm (Theorem 5; closed form)"
            )
        else:
            solvable = False
            reason = (
                f"the similarity condition fails: {cs_note}; hence unsolvable "
                "(Theorem 3; closed form)"
            )
        verdict_fields = dict(
            property_name=_named_property_name(task),
            trivial=trivial,
            witness=always[0] if trivial else None,
            always_admissible=always,
            satisfies_similarity_condition=cs_holds,
            similarity_counterexample=None,
            solvable=solvable,
            reason=reason,
            configurations_checked=0,
            minimal_configurations_checked=0,
        )

    threshold = dolev_reischuk_threshold(system)
    if verdict_fields["trivial"]:
        message_bound = "O(1): decide the always-admissible value without communication"
    elif verdict_fields["solvable"]:
        message_bound = (
            f"Omega(t^2) messages (Theorem 4: > {threshold}); O(n^2) via Universal (Theorem 5)"
        )
    else:
        message_bound = "unsolvable: no algorithm exists at any message complexity"
    return AnalysisVerdict(
        family=task.family,
        key=task.key,
        n=task.n,
        t=task.t,
        domain=task.domain,
        index=task.index,
        method=method,
        quadratic_threshold=threshold,
        message_bound=message_bound,
        **verdict_fields,
    )


def _named_property_name(task: PropertyTask) -> str:
    """Display name of a named property without materialising its table."""
    return standard_properties(task.system(), output_domain=list(task.domain))[task.key].name


# ----------------------------------------------------------------------
# Families: parameterized populations of property tasks
# ----------------------------------------------------------------------
def named_tasks(
    systems: Sequence[Tuple[int, int, Tuple[int, ...]]] = DEFAULT_NAMED_SYSTEMS,
) -> List[PropertyTask]:
    """Every named standard property over every ``(n, t, domain)`` in ``systems``."""
    return [
        PropertyTask(family="named", key=key, n=n, t=t, domain=tuple(domain))
        for n, t, domain in systems
        for key in _NAMED_KEYS
    ]


def enumerated_tasks(
    count: int = 24, n: int = 2, t: int = 1, domain: Tuple[int, ...] = (0, 1)
) -> List[PropertyTask]:
    """The first ``count`` properties of the exhaustive enumeration over a tiny system.

    With ``n = 2, t = 1`` the system sits in Theorem 1 territory
    (``n <= 3t``): the prefix exercises the trivial/unsolvable dichotomy
    exhaustively rather than by sampling.
    """
    if count < 1:
        raise ValueError("need at least one enumerated property")
    return [
        PropertyTask(family="enumerated", key="enumerated", n=n, t=t, domain=domain, index=i)
        for i in range(count)
    ]


def sampled_tasks(
    count: int = 16, n: int = 4, t: int = 1, domain: Tuple[int, ...] = (0, 1), base_seed: int = 0
) -> List[PropertyTask]:
    """``count`` uniformly sampled table properties (seeds ``base_seed ..``)."""
    if count < 1:
        raise ValueError("need at least one sampled property")
    return [
        PropertyTask(family="sampled", key="sampled", n=n, t=t, domain=domain, index=base_seed + i)
        for i in range(count)
    ]


def default_tasks() -> List[PropertyTask]:
    """The default analysis family: named × systems, enumerated prefix, samples.

    Deliberately larger than fifty properties so the ``analyze`` CLI's
    determinism/caching guarantees are demonstrated at sweep scale, yet
    cheap enough to classify in seconds.
    """
    return named_tasks() + enumerated_tasks() + sampled_tasks()


def dedupe_tasks(tasks: Iterable[PropertyTask]) -> List[PropertyTask]:
    """Drop duplicate tasks (same label), keeping first occurrence order."""
    seen: Dict[str, PropertyTask] = {}
    ordered: List[PropertyTask] = []
    for task in tasks:
        existing = seen.get(task.label)
        if existing is None:
            seen[task.label] = task
            ordered.append(task)
        elif existing != task:
            raise AnalysisError(f"two distinct tasks share the label {task.label!r}")
    return ordered


# ----------------------------------------------------------------------
# Batch execution: persistent pool + run-store verdict cache
# ----------------------------------------------------------------------
@dataclass
class AnalysisRun:
    """Outcome of one :func:`run_analysis` batch."""

    verdicts: List[AnalysisVerdict]
    cached: int
    classified: int

    def by_label(self) -> Dict[str, AnalysisVerdict]:
        return {verdict.label: verdict for verdict in self.verdicts}

    def counts(self) -> Dict[str, int]:
        """Population counts in the shape of Figure 1."""
        return {
            "total": len(self.verdicts),
            "trivial": sum(1 for v in self.verdicts if v.trivial),
            "solvable": sum(1 for v in self.verdicts if v.solvable),
            "solvable_non_trivial": sum(
                1 for v in self.verdicts if v.solvable and not v.trivial
            ),
            "unsolvable": sum(1 for v in self.verdicts if not v.solvable),
            "satisfying_C_S": sum(
                1 for v in self.verdicts if v.satisfies_similarity_condition
            ),
        }


def run_analysis(
    tasks: Sequence[PropertyTask],
    runner: Optional[Any] = None,
    store: Optional[Any] = None,
    rerun: bool = False,
    on_verdict: Optional[Any] = None,
) -> AnalysisRun:
    """Classify every task, through the runner's pool and the verdict cache.

    With a ``store`` (a :class:`~repro.store.store.RunStore`), tasks are
    partitioned into cache hits — served from the ``verdicts`` table without
    classifying — and misses, which are classified then persisted, mirroring
    ``Runner.iter_runs``'s incremental sweeps: an identical re-analysis
    classifies zero properties.  ``rerun=True`` recomputes everything.

    Without a ``runner``, a short-lived serial
    :class:`~repro.jobs.session.ExecutionSession` supplies (and tears down)
    one; callers with a pool pass their own runner, as the job executor
    does.  ``on_verdict(index, verdict)`` is called in task order as each
    verdict becomes available — the progress-event hook.

    The verdict sequence is deterministic in task order and byte-identical
    between serial and parallel runners (:func:`classify_task` is pure).
    """
    if runner is None:
        from ..jobs.session import ExecutionSession

        with ExecutionSession() as session:
            return run_analysis(
                tasks, runner=session.runner, store=store, rerun=rerun, on_verdict=on_verdict
            )

    task_list = dedupe_tasks(tasks)
    cached: Dict[int, AnalysisVerdict] = {}
    if store is not None and not rerun:
        for index, task in enumerate(task_list):
            hit = store.get_verdict(task)
            if hit is not None:
                cached[index] = hit

    def persist(index: int, verdict: AnalysisVerdict) -> None:
        store.put_verdict(task_list[index], verdict)

    verdicts: List[AnalysisVerdict] = []
    try:
        for verdict in runner.iter_tasks(
            classify_task,
            task_list,
            cached=cached,
            on_result=persist if store is not None else None,
        ):
            verdicts.append(verdict)
            if on_verdict is not None:
                on_verdict(len(verdicts) - 1, verdict)
    finally:
        if store is not None:
            store.flush_retrying(raise_on_failure=False)
    return AnalysisRun(
        verdicts=verdicts, cached=len(cached), classified=len(task_list) - len(cached)
    )


# ----------------------------------------------------------------------
# Verdict baselines (exact regression gate, like the scenario baselines)
# ----------------------------------------------------------------------
def verdicts_to_payload(verdicts: Sequence[AnalysisVerdict]) -> Dict[str, Any]:
    """The verdict-baseline JSON shape (single source of the format)."""
    return {
        "format_version": ANALYSIS_FORMAT_VERSION,
        "verdicts": {verdict.label: verdict.to_dict() for verdict in verdicts},
    }


def verdicts_to_json(verdicts: Sequence[AnalysisVerdict]) -> str:
    import json

    return json.dumps(verdicts_to_payload(verdicts), sort_keys=True, separators=(",", ":"))


def load_verdict_baseline(path: Any) -> Dict[str, Dict[str, Any]]:
    import json
    import pathlib

    payload = json.loads(pathlib.Path(path).read_text())
    if payload.get("format_version") != ANALYSIS_FORMAT_VERSION:
        raise ValueError(
            f"verdict baseline {path} has format_version {payload.get('format_version')!r}, "
            f"expected {ANALYSIS_FORMAT_VERSION}"
        )
    return payload["verdicts"]


def diff_verdicts(
    verdicts: Sequence[AnalysisVerdict], baseline: Mapping[str, Mapping[str, Any]]
) -> List[str]:
    """Exact diff of classified verdicts against a stored baseline.

    Theory verdicts are discrete facts — there is no tolerance: any changed
    field, missing label or novel label is a divergence.  Returns
    human-readable divergence lines (empty when byte-equivalent).
    """
    divergences: List[str] = []
    measured = {verdict.label: verdict.to_dict() for verdict in verdicts}
    for label in sorted(baseline):
        if label not in measured:
            divergences.append(f"{label}: verdict missing from this analysis")
    for label in sorted(measured):
        if label not in baseline:
            divergences.append(f"{label}: verdict not present in the baseline")
            continue
        stored = baseline[label]
        fresh = measured[label]
        for field_name in sorted(set(stored) | set(fresh)):
            if stored.get(field_name) != fresh.get(field_name):
                divergences.append(
                    f"{label}: {field_name} changed from {stored.get(field_name)!r} "
                    f"to {fresh.get(field_name)!r}"
                )
    return divergences


# ----------------------------------------------------------------------
# Cross-check: classifier verdicts vs the simulated scenario matrix
# ----------------------------------------------------------------------
SCENARIO_PROPOSAL_DOMAIN: Tuple[int, ...] = (0, 1, 2)
"""The proposal domain of the Universal sweep scenarios: the runner assigns
``(pid + seed) % 3`` (see ``repro.experiments.scenario._proposals``), so the
classifier must judge the property over exactly ``{0, 1, 2}``."""


def property_task_for_scenario(spec: Any) -> Optional[PropertyTask]:
    """The classifier task a sweep scenario puts to the test, if any.

    Only the Universal-based protocols target a configurable validity
    property (``spec.property_key``); ``binary``/``quad`` solve fixed
    notions whose validity the scenario checkers assert directly.
    """
    if not spec.protocol.startswith("universal"):
        return None
    return PropertyTask(
        family="named",
        key=spec.property_key,
        n=spec.n,
        t=spec.t,
        domain=SCENARIO_PROPOSAL_DOMAIN,
    )


def cross_check_tasks(scenarios: Optional[Sequence[Any]] = None) -> List[PropertyTask]:
    """Every distinct property task the scenario matrix exercises."""
    if scenarios is None:
        from ..experiments.scenario import default_matrix

        scenarios = default_matrix()
    tasks = [
        task for task in (property_task_for_scenario(spec) for spec in scenarios) if task is not None
    ]
    return dedupe_tasks(tasks)


@dataclass
class CrossCheckResult:
    """Outcome of checking classifier verdicts against simulated summaries."""

    checked: int
    skipped: List[str]
    divergences: List[str]

    @property
    def ok(self) -> bool:
        return not self.divergences


def cross_check_matrix(
    verdicts_by_label: Mapping[str, AnalysisVerdict],
    summaries: Mapping[str, Mapping[str, Any]],
    scenarios: Optional[Sequence[Any]] = None,
) -> CrossCheckResult:
    """Assert theory and simulation agree, scenario by scenario.

    For every scenario whose protocol targets a validity property:

    * **solvable** verdicts demand a clean empirical record — the recorded
      summary must show zero agreement violations and zero validity
      violations (Theorems 2 and 5 promise an algorithm exists; Universal
      *is* that algorithm, so it must not be caught violating the property);
    * **unsolvable** verdicts demand the opposite — no recorded summary may
      show the protocol passing cleanly (errors, violations or incomplete
      runs are all consistent with impossibility; a fully passing sweep
      would contradict Theorems 1 and 3).

    Scenarios without a property target, or without a recorded summary, are
    reported as skipped, never silently dropped.
    """
    if scenarios is None:
        from ..experiments.scenario import default_matrix

        scenarios = default_matrix()
    checked = 0
    skipped: List[str] = []
    divergences: List[str] = []
    for spec in scenarios:
        task = property_task_for_scenario(spec)
        if task is None:
            skipped.append(f"{spec.name}: protocol {spec.protocol!r} has no property target")
            continue
        verdict = verdicts_by_label.get(task.label)
        if verdict is None:
            divergences.append(f"{spec.name}: no verdict classified for {task.label}")
            continue
        summary = summaries.get(spec.name)
        if summary is None:
            skipped.append(f"{spec.name}: not present in the recorded summaries")
            continue
        checked += 1
        agreement_violations = summary.get("agreement_violations", 0)
        validity_violations = summary.get("validity_violations", 0)
        passing = (
            summary.get("errors", 0) == 0
            and summary.get("incomplete", 0) == 0
            and agreement_violations == 0
            and validity_violations == 0
        )
        if verdict.solvable and (agreement_violations or validity_violations):
            divergences.append(
                f"{spec.name}: {task.label} is solvable ({verdict.reason}) but the recorded "
                f"sweep shows {agreement_violations} agreement and {validity_violations} "
                "validity violations"
            )
        elif not verdict.solvable and passing:
            divergences.append(
                f"{spec.name}: {task.label} is unsolvable ({verdict.reason}) yet the recorded "
                "sweep passes cleanly — an algorithm cannot exist (Theorems 1 and 3)"
            )
    return CrossCheckResult(checked=checked, skipped=skipped, divergences=divergences)


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
_VERDICT_COLUMNS = (
    ("property", lambda v: v.label),
    ("method", lambda v: v.method),
    ("trivial", lambda v: "yes" if v.trivial else "no"),
    ("C_S", lambda v: "yes" if v.satisfies_similarity_condition else "no"),
    ("solvable", lambda v: "yes" if v.solvable else "no"),
    ("msg-bound", lambda v: v.message_bound.split(":")[0]),
)


def render_verdict_table(verdicts: Sequence[AnalysisVerdict]) -> str:
    """A plain-text verdict table (column-aligned, task order preserved)."""
    header = [name for name, _ in _VERDICT_COLUMNS]
    rows = [header] + [[render(v) for _, render in _VERDICT_COLUMNS] for v in verdicts]
    widths = [max(len(row[i]) for row in rows) for i in range(len(header))]
    lines = ["  ".join(cell.ljust(width) for cell, width in zip(row, widths)).rstrip() for row in rows]
    lines.insert(1, "  ".join("-" * width for width in widths))
    return "\n".join(lines)


def render_verdict_markdown(verdicts: Sequence[AnalysisVerdict]) -> str:
    """The same table as GitHub-flavoured markdown."""
    header = [name for name, _ in _VERDICT_COLUMNS]
    lines = [
        "| " + " | ".join(header) + " |",
        "| " + " | ".join("---" for _ in header) + " |",
    ]
    for verdict in verdicts:
        lines.append("| " + " | ".join(render(verdict) for _, render in _VERDICT_COLUMNS) + " |")
    return "\n".join(lines)
