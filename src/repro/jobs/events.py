"""Structured progress events streamed out of a running job.

Every :func:`~repro.jobs.executor.execute_job` call can be given an
``on_event`` callback; it receives :class:`JobEvent` records — pure,
immutable data — as the job moves through its lifecycle:

* ``status`` events bracket the run: one per lifecycle transition
  (``Initialized`` → ``Running`` → a terminal state from
  :mod:`repro.jobs.status`);
* ``progress`` events tick once per unit of work (a sweep run executed, a
  property verdict produced) with ``completed``/``total`` counters;
* ``log`` events carry the human-readable progress lines kernels already
  emit (the fuzz engine's per-round summary), so a front end can relay
  them verbatim — the CLI prints them, a future HTTP service would stream
  them.

Events are descriptive, never load-bearing: dropping them (``on_event=None``)
changes nothing about the job's result, which keeps the executor's output a
pure function of the job spec and the session's store contents.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

EVENT_STATUS = "status"
"""A lifecycle transition; :attr:`JobEvent.status` holds the new state."""

EVENT_PROGRESS = "progress"
"""One unit of work done; ``completed``/``total`` hold the counters."""

EVENT_LOG = "log"
"""A human-readable progress line from the underlying kernel."""


@dataclass(frozen=True)
class JobEvent:
    """One observation of a running job (immutable, JSON-ready).

    ``job`` is the job kind (``sweep``/``analyze``/``fuzz``/``report``/
    ``compare``), ``kind`` one of the ``EVENT_*`` constants; the remaining
    fields are populated per kind and ``None`` otherwise.

    ``sequence`` is assigned by the executor: a monotonic per-job counter
    starting at 0, so a consumer that receives events over an unordered
    transport (or interleaves several jobs' streams) can restore each job's
    emission order.  ``metrics`` rides on the terminal ``status`` event and
    carries the job's own telemetry counter deltas (dispatch/cache/store/
    supervision movement attributable to this job) — descriptive data for
    front ends, never input to anything.
    """

    job: str
    kind: str
    status: Optional[str] = None
    message: Optional[str] = None
    completed: Optional[int] = None
    total: Optional[int] = None
    sequence: Optional[int] = None
    metrics: Optional[Dict[str, Any]] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "job": self.job,
            "kind": self.kind,
            "status": self.status,
            "message": self.message,
            "completed": self.completed,
            "total": self.total,
            "sequence": self.sequence,
            "metrics": self.metrics,
        }
