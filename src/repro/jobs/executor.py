"""The job executor: map each job spec onto the pure kernels it names.

:func:`execute_job` is the single dispatch point between the declarative
world (:mod:`repro.jobs.spec`) and the existing kernels — it walks a
:class:`~repro.jobs.status.JobLifecycle` per submission, streams
:class:`~repro.jobs.events.JobEvent` records to the caller, and returns a
typed outcome whose ``status`` is a terminal state from
:mod:`repro.jobs.status`:

=============  =====================================================  ==================
job            kernel(s)                                              outcome
=============  =====================================================  ==================
``sweep``      ``Runner.iter_runs`` + ``StreamingAggregator``         :class:`SweepOutcome`
``analyze``    ``analysis.pipeline.run_analysis`` / cross-check       :class:`AnalyzeOutcome`
``fuzz``       ``fuzz.engine.run_fuzz`` campaign loop                 :class:`FuzzOutcome`
``report``     ``store.query.summarize_store``                        :class:`ReportOutcome`
``compare``    ``store.query.compare_with_reference``                 :class:`CompareOutcome`
=============  =====================================================  ==================

The executor owns *policy*, not resources: pools and store connections come
from the :class:`~repro.jobs.session.ExecutionSession` it is handed.  Store
counters in each outcome are **deltas** over this job only (snapshotted
around the kernel call), so a session reused across many jobs still reports
per-job cache behaviour — "this sweep hit N, executed M" — no matter what
ran before it.

Semantics of the terminal status: ``Complete`` means the job did what was
asked (a fuzz campaign that *found* violations still completed); ``Error``
means the job's own outcome is a failure — failing runs in a sweep,
theory/simulation divergences or an unreadable cross-check reference in an
analyze, regressions in a compare; ``No Solution`` means the job had
nothing to operate on (an empty or all-stale store slice).  Exceptions from
kernels propagate to the caller after an ``Error`` status event.
"""

from __future__ import annotations

import contextlib
import pathlib
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, Iterator, List, Optional

from ..experiments.aggregate import ScenarioSummary, StreamingAggregator
from ..experiments.runner import RunResult
from ..obs.registry import METRICS
from .events import EVENT_LOG, EVENT_PROGRESS, EVENT_STATUS, JobEvent
from .spec import (
    AnalyzeJob,
    CompareJob,
    FuzzJob,
    JobSpecError,
    ReportJob,
    SweepJob,
    payloads_to_specs,
)
from .status import (
    STATUS_COMPLETE,
    STATUS_ERROR,
    STATUS_NO_SOLUTION,
    STATUS_RUNNING,
    JobLifecycle,
)

_EventSink = Optional[Callable[[JobEvent], None]]


# ----------------------------------------------------------------------
# Typed outcomes (status + pure result data; rendering stays with callers)
# ----------------------------------------------------------------------
@dataclass
class SweepOutcome:
    """Result of a :class:`SweepJob`: aggregated summaries plus failures.

    ``quarantined`` lists poison records — tasks supervision gave up on
    after they repeatedly killed their worker (see
    :mod:`repro.resilience`); they are reported separately from ordinary
    ``failures`` because they carry no verdict, only a host-side
    diagnosis.  ``supervision`` is the runner's crash/retry counter delta
    for this job.
    """

    status: str
    run_count: int
    scenario_count: int
    seed_count: int
    summaries: Dict[str, ScenarioSummary]
    failures: List[RunResult]
    records: Optional[List[RunResult]] = None
    store_stats: Optional[Dict[str, int]] = None
    quarantined: List[RunResult] = field(default_factory=list)
    supervision: Optional[Dict[str, int]] = None


@dataclass
class AnalyzeOutcome:
    """Result of an :class:`AnalyzeJob`: verdicts plus the cross-check."""

    status: str
    verdicts: List[Any]
    cached: int
    classified: int
    counts: Dict[str, int]
    cross_check: Optional[Any] = None
    cross_check_error: Optional[str] = None
    store_stats: Optional[Dict[str, int]] = None


@dataclass
class FuzzOutcome:
    """Result of a :class:`FuzzJob`: the campaign report."""

    status: str
    report: Any
    store_stats: Optional[Dict[str, int]] = None


@dataclass
class ReportOutcome:
    """Result of a :class:`ReportJob`: summaries of the stored slice.

    ``poison`` lists the store's quarantined tasks under the current code
    (runs supervision gave up on — see :meth:`repro.store.RunStore.iter_poison`)
    and ``supervision`` the supervision counters from the store's latest
    sweep telemetry snapshot, so a report of a resumed campaign shows what
    was *not* computed and why, not just what was.
    """

    status: str
    summaries: Dict[str, ScenarioSummary] = field(default_factory=dict)
    stale: int = 0
    message: Optional[str] = None
    poison: List[Any] = field(default_factory=list)
    supervision: Optional[Dict[str, int]] = None


@dataclass
class CompareOutcome:
    """Result of a :class:`CompareJob`: the regression list."""

    status: str
    regressions: List[str] = field(default_factory=list)
    message: Optional[str] = None


# ----------------------------------------------------------------------
# Store-stat deltas: per-job counters on a shared session store
# ----------------------------------------------------------------------
def _stats_snapshot(store: Any) -> Optional[Dict[str, int]]:
    return store.stats.as_dict() if store is not None else None


def _stats_delta(store: Any, before: Optional[Dict[str, int]]) -> Optional[Dict[str, int]]:
    if store is None or before is None:
        return None
    after = store.stats.as_dict()
    return {key: after[key] - before[key] for key in after}


def _require_store(session: Any, kind: str) -> Any:
    store = session.store
    if store is None:
        raise JobSpecError(f"a {kind} job needs a session with a store (pass store_path)")
    return store


# ----------------------------------------------------------------------
# Telemetry (descriptive only — see repro.obs)
# ----------------------------------------------------------------------
@contextlib.contextmanager
def _phase(session: Any, kind: str, name: str) -> Iterator[None]:
    """Bracket one phase of a job: a registry timer plus a trace span.

    The timer (``job.<kind>.phase.<name>``) always records; the span is
    written only when the session carries a trace sink.
    """
    timer = METRICS.timer(f"job.{kind}.phase.{name}")
    trace = getattr(session, "trace", None)
    if trace is not None:
        with trace.span(f"phase.{name}"), timer.time():
            yield
    else:
        with timer.time():
            yield


def _persist_telemetry(
    session: Any, kind: str, status: str, counters_before: Dict[str, int]
) -> None:
    """Best-effort: snapshot the registry into the session store's telemetry table.

    Only runs against a store the session already opened (it never opens
    one), and swallows every failure — losing an observation must not fail
    the job it observed.
    """
    try:
        store = getattr(session, "_store", None)
        if store is None:
            return
        runner = getattr(session, "_runner", None)
        snapshot = {
            "version": 1,
            "job": kind,
            "status": status,
            "registry": METRICS.snapshot(),
            "job_counters": METRICS.counter_delta(counters_before),
            "store": store.stats.as_dict(),
            "supervision": runner.supervision.as_dict() if runner is not None else None,
        }
        store.put_telemetry(kind, snapshot)
    except Exception:
        pass


# ----------------------------------------------------------------------
# Per-job handlers (resolve inputs first, then touch session resources)
# ----------------------------------------------------------------------
def _wire_runner_log(job: Any, session: Any, emit: Callable[[JobEvent], None]) -> Any:
    """Route the runner's supervision log lines into the job's event stream."""
    runner = session.runner
    runner.on_log = lambda message: emit(JobEvent(job=job.kind, kind=EVENT_LOG, message=message))
    return runner


def _run_sweep(job: SweepJob, session: Any, emit: Callable[[JobEvent], None]) -> SweepOutcome:
    from ..experiments.runner import POISON_ERROR_PREFIX

    with _phase(session, job.kind, "plan"):
        scenarios = payloads_to_specs(job.scenario_payloads)
    store = session.store
    before = _stats_snapshot(store)
    runner = _wire_runner_log(job, session, emit)
    supervision_before = runner.supervision.as_dict()
    aggregator = StreamingAggregator()
    failures: List[RunResult] = []
    quarantined: List[RunResult] = []
    records: Optional[List[RunResult]] = [] if job.collect_records else None
    total = len(scenarios) * len(job.seeds)
    run_count = 0
    fail_fast = bool(getattr(session, "fail_fast", False))
    with _phase(session, job.kind, "execute"):
        for result in session.runner.iter_runs(
            scenarios, list(job.seeds), store=store, rerun=job.rerun
        ):
            run_count += 1
            aggregator.add(result)
            if not result.ok:
                if result.error is not None and result.error.startswith(POISON_ERROR_PREFIX):
                    quarantined.append(result)
                else:
                    failures.append(result)
            if records is not None:
                records.append(result)
            emit(
                JobEvent(
                    job=job.kind, kind=EVENT_PROGRESS, completed=run_count, total=total,
                    message=f"{result.scenario} seed={result.seed}",
                )
            )
            if fail_fast and not result.ok:
                # Abandoning the iterator terminates the pool and flushes the
                # store (iter_runs' own guarantees) — completed records survive.
                break
    supervision_after = runner.supervision.as_dict()
    with _phase(session, job.kind, "summarize"):
        summaries = aggregator.summaries()
    return SweepOutcome(
        status=STATUS_ERROR if failures or quarantined else STATUS_COMPLETE,
        run_count=run_count,
        scenario_count=len(scenarios),
        seed_count=len(job.seeds),
        summaries=summaries,
        failures=failures,
        records=records,
        store_stats=_stats_delta(store, before),
        quarantined=quarantined,
        supervision={
            key: supervision_after[key] - supervision_before[key] for key in supervision_after
        },
    )


def _run_analyze(job: AnalyzeJob, session: Any, emit: Callable[[JobEvent], None]) -> AnalyzeOutcome:
    from ..analysis.pipeline import (
        cross_check_matrix,
        cross_check_tasks,
        dedupe_tasks,
        enumerated_tasks,
        named_tasks,
        run_analysis,
        sampled_tasks,
    )

    tasks: List[Any] = []
    if "named" in job.families:
        tasks.extend(named_tasks())
    if "enumerated" in job.families:
        tasks.extend(enumerated_tasks())
    if "sampled" in job.families:
        tasks.extend(sampled_tasks())
    if job.cross_check_reference is not None:
        if not pathlib.Path(job.cross_check_reference).exists():
            raise JobSpecError(
                f"cross-check reference {job.cross_check_reference} does not exist "
                "(pass --no-cross-check or point --cross-check-against at a store/baseline)"
            )
        tasks.extend(cross_check_tasks())
    tasks = dedupe_tasks(tasks)
    if not tasks:
        raise JobSpecError("no property tasks selected")

    store = session.store
    before = _stats_snapshot(store)
    _wire_runner_log(job, session, emit)
    total = len(tasks)

    def on_verdict(index: int, verdict: Any) -> None:
        emit(
            JobEvent(
                job=job.kind, kind=EVENT_PROGRESS, completed=index + 1, total=total,
                message=verdict.label,
            )
        )

    with _phase(session, job.kind, "classify"):
        analysis = run_analysis(
            tasks, runner=session.runner, store=store, rerun=job.rerun, on_verdict=on_verdict
        )

    cross_check = None
    cross_check_error = None
    if job.cross_check_reference is not None:
        from ..store.query import load_reference_summaries

        try:
            reference = load_reference_summaries(job.cross_check_reference)
        except (ValueError, FileNotFoundError) as exc:
            cross_check_error = str(exc)
        else:
            cross_check = cross_check_matrix(analysis.by_label(), reference)
            if getattr(session, "fail_fast", False) and cross_check.divergences:
                # Fail-fast analyze reports the first divergence only: the
                # caller asked to stop at the first contradiction, not to
                # enumerate the whole matrix of them.
                cross_check = replace(cross_check, divergences=cross_check.divergences[:1])

    failed = cross_check_error is not None or bool(cross_check and cross_check.divergences)
    return AnalyzeOutcome(
        status=STATUS_ERROR if failed else STATUS_COMPLETE,
        verdicts=analysis.verdicts,
        cached=analysis.cached,
        classified=analysis.classified,
        counts=analysis.counts(),
        cross_check=cross_check,
        cross_check_error=cross_check_error,
        store_stats=_stats_delta(store, before),
    )


def _run_fuzz(job: FuzzJob, session: Any, emit: Callable[[JobEvent], None]) -> FuzzOutcome:
    from ..fuzz.engine import run_fuzz

    bases = payloads_to_specs(job.base_payloads)
    store = session.store
    before = _stats_snapshot(store)

    def log(message: str) -> None:
        emit(JobEvent(job=job.kind, kind=EVENT_LOG, message=message))

    session.runner.on_log = log
    with _phase(session, job.kind, "campaign"):
        report = run_fuzz(
            bases,
            job.budget,
            job.fuzz_seed,
            store=store,
            runner=session.runner,
            base_seed=job.base_seed,
            shrink=job.shrink,
            log=log,
            fail_fast=bool(getattr(session, "fail_fast", False)),
        )
    return FuzzOutcome(
        status=STATUS_COMPLETE,
        report=report,
        store_stats=_stats_delta(store, before),
    )


def _run_report(job: ReportJob, session: Any, emit: Callable[[JobEvent], None]) -> ReportOutcome:
    # Lazy: repro.store's own __init__ imports the query layer, which uses
    # the jobs status constants — a top-level import here would be circular.
    from ..store.query import summarize_store

    store = _require_store(session, job.kind)
    with _phase(session, job.kind, "summarize"):
        summaries = summarize_store(
            store,
            scenarios=job.scenarios or None,
            protocols=job.protocols or None,
            adversaries=job.adversaries or None,
            delays=job.delays or None,
            any_code=job.any_code,
        )
    stale = sum(count for code_fp, count in store.code_fingerprints() if code_fp != store.code_fp)
    # Surface what the slice did NOT compute: the quarantined (poison)
    # tasks under the current code, and the supervision counters of the
    # store's most recent sweep snapshot when one was persisted.
    poison = list(store.iter_poison())
    supervision: Optional[Dict[str, int]] = None
    telemetry = store.get_telemetry(label=SweepJob.kind)
    if telemetry is not None:
        recorded = telemetry.snapshot.get("supervision")
        if isinstance(recorded, dict):
            supervision = recorded
    if not summaries:
        hint = (
            " (records exist under other code fingerprints; pass --any-code or --rerun the sweep)"
            if stale and not job.any_code
            else ""
        )
        return ReportOutcome(
            status=STATUS_NO_SOLUTION,
            stale=stale,
            message=f"no stored records match the requested slice{hint}",
            poison=poison,
            supervision=supervision,
        )
    return ReportOutcome(
        status=STATUS_COMPLETE,
        summaries=summaries,
        stale=stale,
        poison=poison,
        supervision=supervision,
    )


def _run_compare(job: CompareJob, session: Any, emit: Callable[[JobEvent], None]) -> CompareOutcome:
    from ..store.query import EmptySliceError, compare_with_reference

    store = _require_store(session, job.kind)
    try:
        regressions = compare_with_reference(
            store,
            job.reference,
            relative_tolerance=job.tolerance,
            scenarios=list(job.scenarios) if job.scenarios else None,
            any_code=job.any_code,
        )
    except EmptySliceError as exc:
        return CompareOutcome(status=STATUS_NO_SOLUTION, message=str(exc))
    return CompareOutcome(
        status=STATUS_ERROR if regressions else STATUS_COMPLETE,
        regressions=regressions,
    )


_HANDLERS: Dict[str, Callable[..., Any]] = {
    SweepJob.kind: _run_sweep,
    AnalyzeJob.kind: _run_analyze,
    FuzzJob.kind: _run_fuzz,
    ReportJob.kind: _run_report,
    CompareJob.kind: _run_compare,
}


def execute_job(job: Any, session: Any, on_event: _EventSink = None) -> Any:
    """Run one job through a session; returns its typed outcome.

    Walks the status lifecycle (``Initialized`` → ``Running`` → terminal),
    emitting a ``status`` event at every transition plus the handler's own
    ``progress``/``log`` events.  An unknown job type dies in
    ``Initialized → Error``; a kernel exception transitions to ``Error``
    and then propagates unchanged, so callers keep the original error while
    the event stream still records how the job ended.

    Telemetry (all descriptive, none of it load-bearing): every emitted
    event carries a monotonic per-job ``sequence``; the terminal status
    event carries this job's counter deltas in ``metrics``; when the
    session has a trace sink the handler runs inside a ``job.<kind>`` span
    and every event is mirrored as a trace record; and when the session's
    store is open, a snapshot of the registry is persisted into its
    ``telemetry`` table after the job completes.
    """
    kind = getattr(type(job), "kind", type(job).__name__)
    lifecycle = JobLifecycle()
    trace = getattr(session, "trace", None)
    counters_before = METRICS.counter_values()
    METRICS.counter(f"job.{kind}.submitted").inc()
    next_sequence = 0

    def emit(event: JobEvent) -> None:
        nonlocal next_sequence
        event = replace(event, sequence=next_sequence)
        next_sequence += 1
        if trace is not None:
            trace.event(
                f"{kind}.{event.kind}",
                status=event.status,
                message=event.message,
                completed=event.completed,
                total=event.total,
                event_sequence=event.sequence,
            )
        if on_event is not None:
            on_event(event)

    def emit_status(metrics: Optional[Dict[str, Any]] = None) -> None:
        emit(JobEvent(job=kind, kind=EVENT_STATUS, status=lifecycle.status, metrics=metrics))

    emit_status()
    handler = _HANDLERS.get(kind)
    if handler is None:
        lifecycle.transition(STATUS_ERROR)
        emit_status()
        raise JobSpecError(
            f"cannot execute {type(job).__name__!r}: not a known job type "
            f"(kinds: {sorted(_HANDLERS)})"
        )
    lifecycle.transition(STATUS_RUNNING)
    emit_status()
    job_span = (
        trace.span(f"job.{kind}", fingerprint=getattr(job, "fingerprint", lambda: None)())
        if trace is not None
        else contextlib.nullcontext()
    )
    try:
        with job_span, METRICS.timer(f"job.{kind}.wall").time():
            outcome = handler(job, session, emit)
    except BaseException:
        lifecycle.transition(STATUS_ERROR)
        emit_status(metrics=METRICS.counter_delta(counters_before))
        # Salvage what completed: best-effort retried flush of the session
        # store's buffered records (KeyboardInterrupt included — the user
        # killed the job, not the results it already computed).  Never
        # masks the original error.
        store = getattr(session, "_store", None)
        if store is not None and getattr(store, "pending_count", 0):
            try:
                store.flush_retrying(raise_on_failure=False)
            except Exception:
                pass
        raise
    lifecycle.transition(outcome.status)
    emit_status(metrics=METRICS.counter_delta(counters_before))
    _persist_telemetry(session, kind, outcome.status, counters_before)
    return outcome
