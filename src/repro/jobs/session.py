"""The execution session: single owner of the pool and the store connection.

Everything stateful about running jobs lives here.  An
:class:`ExecutionSession` owns at most one persistent
:class:`~repro.experiments.runner.Runner` (and therefore one worker pool)
and at most one :class:`~repro.store.store.RunStore` connection, both
created lazily on first use and torn down exactly once — the session is the
only place in the library that constructs either.  Jobs are pure data
(:mod:`repro.jobs.spec`); kernels are pure functions; the session is the
process-ownership boundary between them, which is what lets many jobs share
one warm pool and one store connection::

    with ExecutionSession(parallel=4, store_path="runs.db") as session:
        sweep = session.submit(SweepJob(...))      # cold: executes + persists
        sweep = session.submit(SweepJob(...))      # warm: 0 runs executed
        verdicts = session.submit(AnalyzeJob(...)) # same pool, same store

Teardown guarantees (the fair-termination discipline): :meth:`close` always
terminates the worker pool first — even when the store flush is about to
fail — then closes the store, whose final flush is **retried** under the
store's :class:`~repro.resilience.retry.RetryPolicy` (bounded attempts,
seeded backoff) and degrades to the JSONL side-journal on disk-full.  Only
when every avenue fails does close raise
:class:`~repro.store.store.StoreFlushError` (naming the attempts spent)
*while keeping the connection* so the caller can retry (``close()`` again)
or inspect what was lost.  A closed session refuses new work instead of
silently reopening resources.
"""

from __future__ import annotations

import pathlib
from typing import Any, Callable, Optional, Union

from ..experiments.runner import Runner
from ..obs.trace import TraceSink
from ..resilience.faults import FaultPlan
from ..resilience.retry import RetryPolicy
from ..store.store import RunStore


def open_run_store(path: Union[str, pathlib.Path], **options: Any) -> RunStore:
    """Open a standalone :class:`RunStore` (a context manager; close it).

    The construction funnel for store connections that are *not* the
    session's own — the reference side of a compare, a cross-check source.
    Sessions and this helper are the only places a store is constructed, so
    "who owns this connection" is always answerable.
    """
    return RunStore(path, **options)


class SessionClosedError(RuntimeError):
    """The session was closed; it no longer accepts jobs or owns resources."""


class ExecutionSession:
    """Context-managed owner of one runner pool and one store connection.

    Args:
        parallel: Worker processes for the runner (``None`` = serial).
        timeout: Per-run wall-clock timeout in seconds.
        store_path: Optional persistent run store backing every job; jobs
            see cache hits from (and persist misses into) this one
            connection.  ``None`` runs storeless.
        start_method: Optional ``multiprocessing`` start method override.
        store_options: Extra :class:`RunStore` keyword arguments
            (``batch_size``, ``code_fp``, ... — the testing escape hatches).
        max_retries: Retries granted to a task whose worker dies (so the
            retry budget is ``max_retries + 1`` total attempts) and to
            failing store flushes.  ``None`` uses the
            :class:`~repro.resilience.retry.RetryPolicy` default.
        batch_size: Tasks per parallel worker dispatch (the runner's
            microbatching knob); ``None`` sizes batches automatically.
            Purely a throughput knob — results are byte-identical at every
            size.
        fail_fast: Stop a job at its first failed unit of work (first
            failed run, first divergent verdict, first fuzz violation)
            instead of completing the whole matrix.
        fault_plan: Deterministic fault injection for chaos tests, threaded
            into both the runner and the store; defaults to the plan in
            the ``REPRO_FAULT_PLAN`` environment variable, else none.
        trace_path: Optional JSONL trace file (the ``--trace FILE`` flag):
            every job the session runs writes span/event records into one
            :class:`~repro.obs.trace.TraceSink` there.  Tracing is
            descriptive only — traced and untraced sessions produce
            byte-identical records and outcomes.

    Both resources are lazy: a session that only runs :class:`ReportJob`\\ s
    never spawns a pool, and a storeless sweep never touches SQLite.  A
    failed store open (:class:`~repro.store.store.StoreFormatError`)
    propagates to the caller with the runner still in a clean state.
    """

    def __init__(
        self,
        parallel: Optional[int] = None,
        timeout: Optional[float] = None,
        store_path: Optional[Union[str, pathlib.Path]] = None,
        start_method: Optional[str] = None,
        store_options: Optional[dict] = None,
        max_retries: Optional[int] = None,
        batch_size: Optional[int] = None,
        fail_fast: bool = False,
        fault_plan: Optional[FaultPlan] = None,
        trace_path: Optional[Union[str, pathlib.Path]] = None,
    ):
        if max_retries is not None and max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if batch_size is not None and batch_size < 1:
            raise ValueError("batch_size must be a positive task count (or None for auto)")
        self.parallel = parallel
        self.timeout = timeout
        self.store_path = pathlib.Path(store_path) if store_path is not None else None
        self.start_method = start_method
        self.max_retries = max_retries
        self.batch_size = batch_size
        self.fail_fast = fail_fast
        self.fault_plan = fault_plan
        self.trace_path = pathlib.Path(trace_path) if trace_path is not None else None
        self._store_options = dict(store_options) if store_options else {}
        self._runner: Optional[Runner] = None
        self._store: Optional[RunStore] = None
        self._trace: Optional[TraceSink] = None
        self._closed = False

    def _retry_policy(self) -> Optional[RetryPolicy]:
        """The explicit policy ``max_retries`` implies, or None for defaults."""
        if self.max_retries is None:
            return None
        seed = self.fault_plan.seed if self.fault_plan is not None else 0
        return RetryPolicy(max_attempts=self.max_retries + 1, seed=seed)

    # ------------------------------------------------------------------
    # Resource ownership (lazy, single-instance)
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def has_store(self) -> bool:
        """Whether this session is backed by a persistent store."""
        return self.store_path is not None

    @property
    def runner(self) -> Runner:
        """The session's runner (created on first access, then reused)."""
        self._check_open()
        if self._runner is None:
            self._runner = Runner(
                parallel=self.parallel,
                timeout=self.timeout,
                start_method=self.start_method,
                retry_policy=self._retry_policy(),
                fault_plan=self.fault_plan,
                batch_size=self.batch_size,
            )
        return self._runner

    @property
    def store(self) -> Optional[RunStore]:
        """The session's store connection, or ``None`` when storeless.

        Opened on first access; a :class:`StoreFormatError` from a corrupt
        or incompatible file propagates and leaves the session usable (a
        later access retries the open).
        """
        self._check_open()
        if self._store is None and self.store_path is not None:
            options = dict(self._store_options)
            options.setdefault("retry_policy", self._retry_policy())
            options.setdefault("fault_plan", self.fault_plan)
            self._store = RunStore(self.store_path, **options)
        return self._store

    @property
    def trace(self) -> Optional[TraceSink]:
        """The session's trace sink, or ``None`` when untraced.

        Opened lazily (an untraced session never touches the file); owned
        and closed by the session like the pool and the store.
        """
        self._check_open()
        if self._trace is None and self.trace_path is not None:
            self._trace = TraceSink(self.trace_path)
        return self._trace

    def _check_open(self) -> None:
        if self._closed:
            raise SessionClosedError(
                "execution session is closed; create a new session to run more jobs"
            )

    # ------------------------------------------------------------------
    # Job submission
    # ------------------------------------------------------------------
    def submit(self, job: Any, on_event: Optional[Callable[[Any], None]] = None) -> Any:
        """Run one job spec through this session's resources.

        Dispatches on the job's type (see :mod:`repro.jobs.spec`), streams
        :class:`~repro.jobs.events.JobEvent` records to ``on_event`` while
        running, and returns the job type's outcome record with a terminal
        status from :mod:`repro.jobs.status`.  Kernel exceptions propagate
        after an ``Error`` status event; the session itself stays usable.
        """
        self._check_open()
        from .executor import execute_job

        return execute_job(job, self, on_event=on_event)

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release both resources; guaranteed pool termination first.

        The runner's pool is always terminated, even when the store flush is
        about to fail — a worker pool must never outlive its session.  Then
        the store is closed, which retries the final flush under the store's
        retry policy (bounded attempts with seeded backoff) and spills to
        the JSONL side-journal on disk-full; only when all of that fails
        does it raise :class:`~repro.store.store.StoreFlushError` naming the
        attempts spent.  On such a failure the store reference is *kept*
        (and the session stays marked closed), so calling :meth:`close`
        again retries the flush rather than dropping the pending records on
        the floor.
        """
        self._closed = True
        runner, self._runner = self._runner, None
        if runner is not None:
            runner.close()
        trace, self._trace = self._trace, None
        if trace is not None:
            trace.close()  # never raises; a failed trace is just a lost trace
        if self._store is not None:
            self._store.close()  # may raise StoreFlushError; reference kept
            self._store = None

    def __enter__(self) -> "ExecutionSession":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - interpreter shutdown is untestable
        try:
            self.close()
        except Exception:
            pass
