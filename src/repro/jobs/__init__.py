"""Job/session layer: declarative work specs over owned execution resources.

This package separates the three concerns the CLI used to interleave:

* **what to run** — :mod:`repro.jobs.spec`: ``SweepJob`` / ``AnalyzeJob`` /
  ``FuzzJob`` / ``ReportJob`` / ``CompareJob``, pure picklable dataclasses
  with canonical payloads and content fingerprints (the exact payloads a
  future HTTP sweep service will accept over the wire);
* **who owns the resources** — :mod:`repro.jobs.session`:
  :class:`ExecutionSession`, the *single* place the persistent
  :class:`~repro.experiments.runner.Runner` pool and the
  :class:`~repro.store.store.RunStore` connection are constructed, with
  guaranteed teardown (pool terminated first, store flushed or
  :class:`~repro.store.store.StoreFlushError`);
* **how a job maps to kernels** — :mod:`repro.jobs.executor`:
  :func:`execute_job` dispatches each spec onto the existing pure kernels
  (``Runner.iter_runs``, ``analysis.pipeline.run_analysis``,
  ``fuzz.engine.run_fuzz``, ``store.query`` aggregation), walking the
  explicit :mod:`repro.jobs.status` lifecycle
  (``Initialized → Running → Complete/Error/No Solution``) and streaming
  :mod:`repro.jobs.events` records to the caller.

The CLI (:mod:`repro.experiments.cli`) is now a thin rendering shell over
this layer: each subcommand parses arguments, builds a job spec, submits it
through a session, and prints the outcome.
"""

from .events import EVENT_LOG, EVENT_PROGRESS, EVENT_STATUS, JobEvent
from .executor import (
    AnalyzeOutcome,
    CompareOutcome,
    FuzzOutcome,
    ReportOutcome,
    SweepOutcome,
    execute_job,
)
from .session import ExecutionSession, SessionClosedError, open_run_store
from .spec import (
    DEFAULT_FUZZ_BASES,
    JOB_TYPES,
    AnalyzeJob,
    CompareJob,
    FuzzJob,
    JobSpecError,
    ReportJob,
    SweepJob,
    job_from_payload,
    payloads_to_specs,
    resolve_fuzz_bases,
    select_scenarios,
    specs_to_payloads,
)
from .status import (
    EXIT_CONFIG,
    EXIT_EMPTY_SLICE,
    EXIT_FAILURE,
    EXIT_INTERRUPTED,
    EXIT_OK,
    STATUS_COMPLETE,
    STATUS_ERROR,
    STATUS_INITIALIZED,
    STATUS_NO_SOLUTION,
    STATUS_RUNNING,
    SUMMARY_FAIL,
    SUMMARY_OK,
    TERMINAL_STATUSES,
    JobLifecycle,
    JobStatusError,
    exit_code_for,
    summary_status,
)

__all__ = [
    "AnalyzeJob",
    "AnalyzeOutcome",
    "CompareJob",
    "CompareOutcome",
    "DEFAULT_FUZZ_BASES",
    "EVENT_LOG",
    "EVENT_PROGRESS",
    "EVENT_STATUS",
    "EXIT_CONFIG",
    "EXIT_EMPTY_SLICE",
    "EXIT_FAILURE",
    "EXIT_INTERRUPTED",
    "EXIT_OK",
    "ExecutionSession",
    "FuzzJob",
    "FuzzOutcome",
    "JOB_TYPES",
    "JobEvent",
    "JobLifecycle",
    "JobSpecError",
    "JobStatusError",
    "ReportJob",
    "ReportOutcome",
    "STATUS_COMPLETE",
    "STATUS_ERROR",
    "STATUS_INITIALIZED",
    "STATUS_NO_SOLUTION",
    "STATUS_RUNNING",
    "SUMMARY_FAIL",
    "SUMMARY_OK",
    "SessionClosedError",
    "SweepJob",
    "SweepOutcome",
    "TERMINAL_STATUSES",
    "execute_job",
    "exit_code_for",
    "job_from_payload",
    "open_run_store",
    "payloads_to_specs",
    "resolve_fuzz_bases",
    "select_scenarios",
    "specs_to_payloads",
    "summary_status",
]
