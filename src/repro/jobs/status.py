"""Job status and exit-code constants: one vocabulary for every layer.

Every job submitted to an :class:`~repro.jobs.session.ExecutionSession`
walks one explicit lifecycle::

    Initialized ──> Running ──> Complete
         │             ├──────> Error
         └──> Error    └──────> No Solution

``Initialized`` is the state of a freshly built job spec; ``Running`` means
the executor has started driving kernels; the three terminal states mean,
respectively: the job finished cleanly (``Complete``), the job finished but
its outcome is a failure — failing runs, regressions, theory/simulation
divergences, or an exception (``Error``) — and the job had nothing to work
on: an empty or all-stale store slice (``No Solution``).  Any other
transition is a programming error and :class:`JobStatusError` refuses it.

The same module owns the process exit codes the CLI maps those terminal
states onto, and the two summary-row status strings (``ok``/``FAIL``)
shared by the live-sweep printer and the store report tables — previously
magic ints and ad-hoc literals scattered across ``cli.py``, ``query.py``
and the fuzz command.
"""

from __future__ import annotations

from typing import Dict, FrozenSet

# ----------------------------------------------------------------------
# Lifecycle states (the status-constant idiom: explicit named stages)
# ----------------------------------------------------------------------
STATUS_INITIALIZED = "Initialized"
"""The job spec exists but nothing has been executed yet."""

STATUS_RUNNING = "Running"
"""The executor is driving kernels on the session's pool/store."""

STATUS_COMPLETE = "Complete"
"""Terminal: the job finished and its outcome is clean."""

STATUS_ERROR = "Error"
"""Terminal: the job finished with failures (or died on an exception)."""

STATUS_NO_SOLUTION = "No Solution"
"""Terminal: the job had nothing to operate on (empty/all-stale slice)."""

TERMINAL_STATUSES: FrozenSet[str] = frozenset(
    {STATUS_COMPLETE, STATUS_ERROR, STATUS_NO_SOLUTION}
)
"""The states a finished job may rest in."""

_TRANSITIONS: Dict[str, FrozenSet[str]] = {
    STATUS_INITIALIZED: frozenset({STATUS_RUNNING, STATUS_ERROR}),
    STATUS_RUNNING: TERMINAL_STATUSES,
    STATUS_COMPLETE: frozenset(),
    STATUS_ERROR: frozenset(),
    STATUS_NO_SOLUTION: frozenset(),
}
"""The legal edges of the lifecycle graph.  ``Initialized -> Error`` covers
jobs that die before any kernel starts (an unknown job type, a spec the
executor refuses); terminal states have no outgoing edges — a finished job
can never be revived in place, only resubmitted as a fresh lifecycle."""


# ----------------------------------------------------------------------
# Process exit codes (the CLI contract, usable directly as a CI gate)
# ----------------------------------------------------------------------
EXIT_OK = 0
"""Success: the job completed cleanly."""

EXIT_FAILURE = 1
"""Failures: failing runs, regressions, divergences, require-cached misses."""

EXIT_CONFIG = 2
"""Configuration error: the request itself was invalid."""

EXIT_EMPTY_SLICE = 3
"""``report``/``compare`` matched no (current-code) records — distinct from
:data:`EXIT_CONFIG` so CI can tell "you asked for nothing" from "you asked
wrongly"."""

EXIT_INTERRUPTED = 130
"""The job was interrupted (Ctrl-C / SIGINT): the session tore down its pool
and flushed the records completed so far, then the CLI exited with the
conventional ``128 + SIGINT`` code so shells and CI see a signal death."""

_EXIT_CODES: Dict[str, int] = {
    STATUS_COMPLETE: EXIT_OK,
    STATUS_ERROR: EXIT_FAILURE,
    STATUS_NO_SOLUTION: EXIT_EMPTY_SLICE,
}


# ----------------------------------------------------------------------
# Summary-row status strings (live sweep printer + store report tables)
# ----------------------------------------------------------------------
SUMMARY_OK = "ok"
"""Rendered status of a scenario summary whose every run passed."""

SUMMARY_FAIL = "FAIL"
"""Rendered status of a scenario summary with errors or violations."""


def summary_status(ok: bool) -> str:
    """The rendered status cell for a scenario summary."""
    return SUMMARY_OK if ok else SUMMARY_FAIL


class JobStatusError(RuntimeError):
    """An illegal lifecycle transition (or a status query on a bad state)."""


def exit_code_for(status: str) -> int:
    """Map a *terminal* job status to its process exit code."""
    try:
        return _EXIT_CODES[status]
    except KeyError:
        raise JobStatusError(
            f"status {status!r} is not terminal; terminal states are "
            f"{sorted(TERMINAL_STATUSES)}"
        ) from None


class JobLifecycle:
    """The per-execution state machine; illegal transitions raise.

    One instance is created per :meth:`ExecutionSession.submit` call and
    drives the status events streamed to the caller.  It is deliberately
    tiny: a current state plus the transition table above — the point is
    that *every* status a job ever reports came through :meth:`transition`,
    so an executor bug (finishing twice, regressing from a terminal state)
    surfaces as a :class:`JobStatusError` instead of a misleading event
    stream.
    """

    def __init__(self) -> None:
        self._status = STATUS_INITIALIZED

    @property
    def status(self) -> str:
        return self._status

    @property
    def terminal(self) -> bool:
        return self._status in TERMINAL_STATUSES

    def transition(self, new_status: str) -> str:
        """Move to ``new_status``; returns it.  Illegal edges raise."""
        allowed = _TRANSITIONS.get(new_status, None)
        if allowed is None:
            raise JobStatusError(
                f"unknown job status {new_status!r}; known: {sorted(_TRANSITIONS)}"
            )
        if new_status not in _TRANSITIONS[self._status]:
            raise JobStatusError(
                f"illegal job transition {self._status!r} -> {new_status!r}"
            )
        self._status = new_status
        return new_status
