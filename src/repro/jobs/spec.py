"""Job specifications: pure, picklable descriptions of work to execute.

A *job* is everything a client needs to say about one unit of orchestrated
work — which scenarios, which seeds, which knobs — and nothing about *how*
it runs (no pools, no store connections, no file handles).  Each job type
is a frozen dataclass whose fields are plain scalars and tuples, so a spec
can be pickled to a worker, serialised over a wire, or content-addressed:

* :class:`SweepJob` — execute ``scenarios × seeds`` (the ``run`` command);
* :class:`AnalyzeJob` — classify validity-property families and optionally
  cross-check them against recorded summaries (``analyze``);
* :class:`FuzzJob` — one coverage-guided mutation campaign (``fuzz``);
* :class:`ReportJob` — aggregate a stored slice into summaries (``report``);
* :class:`CompareJob` — diff the store against a reference (``compare``).

Every job has a canonical :meth:`payload` (JSON-ready, deterministic) and a
:meth:`fingerprint` derived through the same
:func:`~repro.store.fingerprint.payload_fingerprint` convention the run
store keys on, so identical requests hash identically no matter who built
them.  :func:`job_from_payload` is the inverse — the entry point a future
HTTP service will feed wire payloads through — and
``job_from_payload(job.payload()) == job`` round-trips exactly for every
job type.

Scenario-bearing jobs carry their scenarios as *canonical payload strings*
(:func:`specs_to_payloads`), not live :class:`ScenarioSpec` objects: the
strings are hashable, picklable and wire-safe, and
:func:`payloads_to_specs` rebuilds the exact specs on the executing side.
Invalid field combinations raise :class:`JobSpecError` at construction
time, so a malformed request dies before it ever reaches a session.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, ClassVar, Dict, List, Mapping, Optional, Sequence, Tuple, Type

from ..experiments.runner import DEFAULT_SEED
from ..experiments.scenario import ScenarioSpec, default_matrix, find_scenarios, make_scenario
from ..store.fingerprint import canonical_form, payload_fingerprint, spec_from_payload, spec_payload

DEFAULT_FUZZ_BASES = ("binary+none+partition", "quad+none+synchronous")
"""Default fuzz bases: one leaderless and one leader-based protocol, with
room for the mutation walk to move both toward their resilience bounds."""


class JobSpecError(ValueError):
    """The job specification itself is invalid (a configuration error).

    Raised at spec construction or resolution time — before any kernel has
    run — so the CLI maps it to :data:`~repro.jobs.status.EXIT_CONFIG` and a
    service would map it to a 4xx response.
    """


def _canonical_dumps(payload: Any) -> str:
    """The one serialisation every payload string in a job spec uses."""
    return json.dumps(canonical_form(payload), sort_keys=True, separators=(",", ":"))


def specs_to_payloads(specs: Sequence[ScenarioSpec]) -> Tuple[str, ...]:
    """Encode scenarios as canonical payload strings (hashable, wire-safe)."""
    return tuple(_canonical_dumps(spec_payload(spec)) for spec in specs)


def payloads_to_specs(payloads: Sequence[str]) -> List[ScenarioSpec]:
    """Rebuild the exact :class:`ScenarioSpec` objects a job was built from."""
    try:
        return [spec_from_payload(json.loads(text)) for text in payloads]
    except (KeyError, TypeError, ValueError, json.JSONDecodeError) as exc:
        raise JobSpecError(f"job carries an invalid scenario payload: {exc}") from None


def select_scenarios(
    scenario_names: Optional[Sequence[str]] = None,
    protocols: Optional[Sequence[str]] = None,
    adversaries: Optional[Sequence[str]] = None,
    delays: Optional[Sequence[str]] = None,
) -> List[ScenarioSpec]:
    """Resolve a matrix slice: explicit names win, else filter the default matrix."""
    if scenario_names:
        return list(find_scenarios(scenario_names))
    return [
        spec
        for spec in default_matrix()
        if (not protocols or spec.protocol in protocols)
        and (not adversaries or spec.adversary in adversaries)
        and (not delays or spec.delay in delays)
    ]


def resolve_fuzz_bases(names: Sequence[str]) -> List[ScenarioSpec]:
    """Resolve fuzz-base names: default-matrix names, else registry keys.

    Extension-registered adversaries and delay models (``splitbrain``,
    ``stalled``) are not in the default matrix, so a
    ``protocol+adversary+delay`` combination that names registered keys is
    built directly.
    """
    by_name = {spec.name: spec for spec in default_matrix()}
    specs = []
    for name in names:
        if name in by_name:
            specs.append(by_name[name])
            continue
        parts = name.split("+")
        if len(parts) != 3:
            raise JobSpecError(
                f"unknown fuzz base {name!r}: not a default-matrix scenario and not a "
                "protocol+adversary+delay combination"
            )
        specs.append(make_scenario(parts[0], parts[1], parts[2]))
    return specs


def _as_tuple(job: Any, name: str, values: Any) -> None:
    object.__setattr__(job, name, tuple(values))


@dataclass(frozen=True)
class SweepJob:
    """Execute every scenario with every seed (the ``run`` command's core)."""

    kind: ClassVar[str] = "sweep"

    scenario_payloads: Tuple[str, ...]
    seeds: Tuple[int, ...] = (DEFAULT_SEED,)
    rerun: bool = False
    collect_records: bool = False

    def __post_init__(self) -> None:
        _as_tuple(self, "scenario_payloads", self.scenario_payloads)
        _as_tuple(self, "seeds", tuple(int(seed) for seed in self.seeds))
        if not self.scenario_payloads:
            raise JobSpecError("no scenarios selected")
        if not self.seeds:
            raise JobSpecError("a sweep needs at least one seed")
        if len(set(self.seeds)) != len(self.seeds):
            raise JobSpecError(
                "a sweep's seed list repeats seeds: every (scenario, seed) pair is "
                "deterministic, so a repeated seed would just sweep the same runs twice"
            )

    def payload(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "scenarios": [json.loads(text) for text in self.scenario_payloads],
            "seeds": list(self.seeds),
            "rerun": self.rerun,
            "collect_records": self.collect_records,
        }

    def fingerprint(self) -> str:
        return payload_fingerprint(self.payload())

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "SweepJob":
        return cls(
            scenario_payloads=tuple(
                _canonical_dumps(record) for record in payload["scenarios"]
            ),
            seeds=tuple(payload["seeds"]),
            rerun=bool(payload.get("rerun", False)),
            collect_records=bool(payload.get("collect_records", False)),
        )


_ANALYZE_FAMILIES = ("named", "enumerated", "sampled")


@dataclass(frozen=True)
class AnalyzeJob:
    """Classify validity-property families, optionally cross-checking runs."""

    kind: ClassVar[str] = "analyze"

    families: Tuple[str, ...] = _ANALYZE_FAMILIES
    cross_check_reference: Optional[str] = None
    rerun: bool = False

    def __post_init__(self) -> None:
        _as_tuple(self, "families", self.families)
        if not self.families:
            raise JobSpecError("an analyze job needs at least one property family")
        unknown = sorted(set(self.families) - set(_ANALYZE_FAMILIES))
        if unknown:
            raise JobSpecError(
                f"unknown property families {unknown}; known: {list(_ANALYZE_FAMILIES)}"
            )
        if self.cross_check_reference is not None:
            object.__setattr__(self, "cross_check_reference", str(self.cross_check_reference))

    def payload(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "families": list(self.families),
            "cross_check_reference": self.cross_check_reference,
            "rerun": self.rerun,
        }

    def fingerprint(self) -> str:
        return payload_fingerprint(self.payload())

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "AnalyzeJob":
        return cls(
            families=tuple(payload.get("families", _ANALYZE_FAMILIES)),
            cross_check_reference=payload.get("cross_check_reference"),
            rerun=bool(payload.get("rerun", False)),
        )


@dataclass(frozen=True)
class FuzzJob:
    """One coverage-guided mutation campaign over scenario space."""

    kind: ClassVar[str] = "fuzz"

    base_payloads: Tuple[str, ...]
    budget: int = 200
    fuzz_seed: int = DEFAULT_SEED
    base_seed: int = DEFAULT_SEED
    shrink: bool = True

    def __post_init__(self) -> None:
        _as_tuple(self, "base_payloads", self.base_payloads)
        if not self.base_payloads:
            raise JobSpecError("fuzzing needs at least one base scenario")
        if self.budget < 1:
            raise JobSpecError("fuzz budget must be at least 1")

    def payload(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "bases": [json.loads(text) for text in self.base_payloads],
            "budget": self.budget,
            "fuzz_seed": self.fuzz_seed,
            "base_seed": self.base_seed,
            "shrink": self.shrink,
        }

    def fingerprint(self) -> str:
        return payload_fingerprint(self.payload())

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "FuzzJob":
        return cls(
            base_payloads=tuple(_canonical_dumps(record) for record in payload["bases"]),
            budget=int(payload.get("budget", 200)),
            fuzz_seed=int(payload.get("fuzz_seed", DEFAULT_SEED)),
            base_seed=int(payload.get("base_seed", DEFAULT_SEED)),
            shrink=bool(payload.get("shrink", True)),
        )


@dataclass(frozen=True)
class ReportJob:
    """Aggregate a stored slice into per-scenario summary tables."""

    kind: ClassVar[str] = "report"

    scenarios: Tuple[str, ...] = ()
    protocols: Tuple[str, ...] = ()
    adversaries: Tuple[str, ...] = ()
    delays: Tuple[str, ...] = ()
    any_code: bool = False

    def __post_init__(self) -> None:
        for name in ("scenarios", "protocols", "adversaries", "delays"):
            _as_tuple(self, name, getattr(self, name))

    def payload(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "scenarios": list(self.scenarios),
            "protocols": list(self.protocols),
            "adversaries": list(self.adversaries),
            "delays": list(self.delays),
            "any_code": self.any_code,
        }

    def fingerprint(self) -> str:
        return payload_fingerprint(self.payload())

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "ReportJob":
        return cls(
            scenarios=tuple(payload.get("scenarios", ())),
            protocols=tuple(payload.get("protocols", ())),
            adversaries=tuple(payload.get("adversaries", ())),
            delays=tuple(payload.get("delays", ())),
            any_code=bool(payload.get("any_code", False)),
        )


@dataclass(frozen=True)
class CompareJob:
    """Diff the session's store against a reference store or JSON baseline."""

    kind: ClassVar[str] = "compare"

    reference: str
    scenarios: Tuple[str, ...] = ()
    tolerance: float = 0.2
    any_code: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "reference", str(self.reference))
        _as_tuple(self, "scenarios", self.scenarios)
        if not self.reference:
            raise JobSpecError("a compare job needs a reference path")

    def payload(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "reference": self.reference,
            "scenarios": list(self.scenarios),
            "tolerance": self.tolerance,
            "any_code": self.any_code,
        }

    def fingerprint(self) -> str:
        return payload_fingerprint(self.payload())

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "CompareJob":
        return cls(
            reference=payload["reference"],
            scenarios=tuple(payload.get("scenarios", ())),
            tolerance=float(payload.get("tolerance", 0.2)),
            any_code=bool(payload.get("any_code", False)),
        )


JOB_TYPES: Dict[str, Type[Any]] = {
    job_type.kind: job_type
    for job_type in (SweepJob, AnalyzeJob, FuzzJob, ReportJob, CompareJob)
}
"""Every job type by its wire ``kind`` (the dispatch table services use)."""


def job_from_payload(payload: Mapping[str, Any]) -> Any:
    """Rebuild a job spec from its :meth:`payload` form (wire entry point)."""
    if not isinstance(payload, Mapping):
        raise JobSpecError(f"a job payload must be a mapping, got {type(payload).__name__}")
    kind = payload.get("kind")
    job_type = JOB_TYPES.get(kind)
    if job_type is None:
        raise JobSpecError(f"unknown job kind {kind!r}; known: {sorted(JOB_TYPES)}")
    try:
        return job_type.from_payload(payload)
    except (KeyError, TypeError) as exc:
        raise JobSpecError(f"{kind} job payload has missing or invalid fields: {exc}") from None
