"""Persistent run store: content-addressed caching for scenario sweeps.

Every :class:`~repro.experiments.runner.RunResult` is a deterministic pure
function of ``(scenario, seed, code)`` — so it only ever needs to be
computed once.  This package persists those results the way open-science
collaborations publish immutable result archives: an accumulating,
queryable database instead of one-shot sweep processes.

* :mod:`repro.store.fingerprint` — content hashes: a scenario fingerprint
  over the canonical :class:`~repro.experiments.scenario.ScenarioSpec`
  payload and a code fingerprint over the semantic module tree plus the
  registered builders' source (cache entries auto-invalidate when the
  semantics change);
* :mod:`repro.store.store` — :class:`RunStore`, an SQLite (WAL) database
  keyed by ``(scenario_fp, seed, code_fp)`` with batched writes and an
  in-memory LRU read path, safe to share between sweep processes;
* :mod:`repro.store.query` — aggregate stored slices back into
  :class:`~repro.experiments.aggregate.ScenarioSummary` tables, render
  text/markdown reports, and diff a store against another store or a JSON
  baseline (the ``report`` / ``compare`` CLI subcommands).

Wired into sweeps via ``Runner.iter_runs(..., store=...)`` and the CLI:
``python -m repro.experiments run --store runs.db`` resumes interrupted
sweeps for free and ``--rerun`` forces recomputation.
"""

from .fingerprint import (
    ANALYSIS_PACKAGES,
    FINGERPRINT_VERSION,
    SEMANTIC_PACKAGES,
    analysis_code_fingerprint,
    canonical_form,
    code_fingerprint,
    payload_fingerprint,
    scenario_fingerprint,
    spec_from_payload,
    spec_payload,
)
from .query import (
    EmptySliceError,
    compare_with_reference,
    load_reference_summaries,
    render_markdown,
    render_table,
    summarize_store,
)
from .store import (
    STORE_FORMAT_VERSION,
    CorpusRecord,
    PoisonEntry,
    RunStore,
    StoreFlushError,
    StoreFormatError,
    StoreRecovery,
    StoreStats,
    TelemetrySnapshot,
    is_run_store,
)

__all__ = [
    "ANALYSIS_PACKAGES",
    "FINGERPRINT_VERSION",
    "SEMANTIC_PACKAGES",
    "STORE_FORMAT_VERSION",
    "CorpusRecord",
    "EmptySliceError",
    "PoisonEntry",
    "RunStore",
    "StoreFlushError",
    "StoreFormatError",
    "StoreRecovery",
    "StoreStats",
    "TelemetrySnapshot",
    "analysis_code_fingerprint",
    "canonical_form",
    "code_fingerprint",
    "payload_fingerprint",
    "compare_with_reference",
    "is_run_store",
    "load_reference_summaries",
    "render_markdown",
    "render_table",
    "scenario_fingerprint",
    "spec_from_payload",
    "spec_payload",
    "summarize_store",
]
