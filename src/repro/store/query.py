"""Query layer over a :class:`~repro.store.store.RunStore`.

Turns stored slices back into the same
:class:`~repro.experiments.aggregate.ScenarioSummary` shape the live sweeps
produce, renders them as text / markdown tables, and diffs a store against
a *reference* — another store or a JSON baseline file — reusing
:func:`~repro.experiments.aggregate.diff_against_baseline` so the store CLI
and the sweep regression gate agree on what counts as a regression.
"""

from __future__ import annotations

import pathlib
from typing import Any, Dict, List, Optional, Sequence, Union

from ..experiments.aggregate import (
    ScenarioSummary,
    StreamingAggregator,
    diff_against_baseline,
    load_baseline,
    summaries_to_payload,
)
from ..jobs.status import summary_status
from .store import RunStore, is_run_store


class EmptySliceError(ValueError):
    """A report/compare slice yielded no usable records.

    Raised when a requested store slice is empty (or all-stale: every record
    lives under another code fingerprint) — such a slice would summarize to
    nothing and trivially pass any diff, so it must be a loud, distinct
    condition the CLI can map to its own exit code rather than a silent
    "no regressions".
    """


def summarize_store(
    store: RunStore,
    scenarios: Optional[Sequence[str]] = None,
    protocols: Optional[Sequence[str]] = None,
    adversaries: Optional[Sequence[str]] = None,
    delays: Optional[Sequence[str]] = None,
    any_code: bool = False,
) -> Dict[str, ScenarioSummary]:
    """Aggregate a stored slice exactly like a live sweep would."""
    aggregator = StreamingAggregator()
    aggregator.add_many(
        store.iter_records(
            scenarios=scenarios,
            protocols=protocols,
            adversaries=adversaries,
            delays=delays,
            any_code=any_code,
        )
    )
    return aggregator.summaries()


_COLUMNS = (
    ("scenario", lambda s: s.scenario),
    ("runs", lambda s: str(s.runs)),
    ("status", lambda s: summary_status(s.ok)),
    ("errors", lambda s: str(s.errors)),
    ("incomplete", lambda s: str(s.incomplete)),
    ("agree-viol", lambda s: str(s.agreement_violations)),
    ("valid-viol", lambda s: str(s.validity_violations)),
    ("msgs-mean", lambda s: f"{s.messages.mean:.1f}"),
    ("words-mean", lambda s: f"{s.words.mean:.1f}"),
    ("latency-mean", lambda s: f"{s.latency.mean:.1f}"),
)


def _rows(summaries: Dict[str, ScenarioSummary]) -> List[List[str]]:
    return [[render(summaries[name]) for _, render in _COLUMNS] for name in sorted(summaries)]


def render_table(summaries: Dict[str, ScenarioSummary]) -> str:
    """A plain-text summary table (column-aligned, stable ordering)."""
    header = [name for name, _ in _COLUMNS]
    rows = [header] + _rows(summaries)
    widths = [max(len(row[i]) for row in rows) for i in range(len(header))]
    lines = ["  ".join(cell.ljust(width) for cell, width in zip(row, widths)).rstrip() for row in rows]
    lines.insert(1, "  ".join("-" * width for width in widths))
    return "\n".join(lines)


def render_markdown(summaries: Dict[str, ScenarioSummary]) -> str:
    """The same table as GitHub-flavoured markdown."""
    header = [name for name, _ in _COLUMNS]
    lines = [
        "| " + " | ".join(header) + " |",
        "| " + " | ".join("---" for _ in header) + " |",
    ]
    for row in _rows(summaries):
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)


def load_reference_summaries(
    path: Union[str, pathlib.Path],
    any_code: bool = False,
) -> Dict[str, Dict[str, Any]]:
    """Load a comparison reference: a run store *or* a JSON baseline file.

    Returns the baseline payload shape (plain dicts keyed by scenario name),
    which is what :func:`diff_against_baseline` consumes.
    """
    path = pathlib.Path(path)
    if not path.exists():
        raise FileNotFoundError(f"reference {path} does not exist")
    if is_run_store(path):
        from ..jobs.session import open_run_store

        with open_run_store(path) as reference:
            return summaries_to_payload(summarize_store(reference, any_code=any_code))["scenarios"]
    return load_baseline(path)


def compare_with_reference(
    store: RunStore,
    reference_path: Union[str, pathlib.Path],
    relative_tolerance: float = 0.2,
    scenarios: Optional[Sequence[str]] = None,
    any_code: bool = False,
) -> List[str]:
    """Diff a store against a reference store / baseline; returns regressions.

    ``scenarios`` restricts *both* sides to the named slice, so a partial
    store can be compared against a full-matrix baseline without every
    absent scenario reporting as "missing from the sweep".

    An empty side is a configuration error, not a clean diff: a store whose
    records all live under a *different* code fingerprint (e.g. one built at
    an earlier commit) would otherwise summarize to nothing and trivially
    report "no regressions" — so both sides must yield at least one
    scenario, and :class:`EmptySliceError` names the empty one otherwise.
    """
    current = summarize_store(store, scenarios=scenarios, any_code=any_code)
    if not current:
        raise EmptySliceError(
            f"store {store.path} has no records for the requested slice under the current "
            "code fingerprint; pass --any-code to read records from other code versions, "
            "or --rerun the sweep"
        )
    reference = load_reference_summaries(reference_path, any_code=any_code)
    if scenarios is not None:
        wanted = set(scenarios)
        reference = {name: stored for name, stored in reference.items() if name in wanted}
    if not reference:
        raise EmptySliceError(
            f"reference {reference_path} yields no scenarios to compare against (a reference "
            "store built by different code summarizes to nothing unless --any-code is given)"
        )
    return diff_against_baseline(current, reference, relative_tolerance)
