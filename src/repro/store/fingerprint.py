"""Content fingerprints: what makes a stored run result addressable.

A :class:`~repro.experiments.runner.RunResult` is a pure function of three
inputs, and the store keys every record by exactly those three:

* **scenario fingerprint** — a SHA-256 over the *canonical* form of every
  :class:`~repro.experiments.scenario.ScenarioSpec` field (name, registry
  keys, ``n``/``t``, validity property, sorted params, horizon limits).
  Two specs that would build the same execution hash identically no matter
  how they were constructed; changing any knob changes the hash.
* **seed** — stored as-is (it is already a stable integer).
* **code fingerprint** — a SHA-256 over the source of the semantic layers a
  run flows through: every module of the packages in
  :data:`SEMANTIC_PACKAGES`, the scenario/runner modules themselves, and
  the source of every *currently registered* protocol / adversary /
  delay-model builder.  When any of that changes, the fingerprint changes
  and every cached record is automatically invisible (stale entries stay in
  the database under their old fingerprint; ``--rerun`` or a vacuum can
  refresh them).  Hashing builder sources separately from the module tree
  means even a builder monkeypatched at runtime invalidates the cache.

The fingerprints deliberately exclude execution *infrastructure* — worker
count, timeouts, pool start method — because those do not change what a run
computes (a timed-out run is never persisted, see
:meth:`~repro.store.store.RunStore.put`).
"""

from __future__ import annotations

import dataclasses
import hashlib
import inspect
import pathlib
from functools import lru_cache
from typing import Any, Dict, Mapping, Tuple

from ..experiments.scenario import ADVERSARIES, DELAY_MODELS, PROTOCOLS, ScenarioSpec

FINGERPRINT_VERSION = 1
"""Bump to invalidate every existing fingerprint (format/semantics change)."""

SEMANTIC_PACKAGES: Tuple[str, ...] = (
    "core",
    "crypto",
    "sim",
    "broadcast",
    "coding",
    "consensus",
)
"""``repro`` sub-packages whose source participates in the code fingerprint.

These are the layers a run's events actually flow through.  Presentation
layers (``analysis``, ``experiments.cli``, ``experiments.aggregate``, this
``store`` package) are excluded: editing a report formatter must not throw
away a database of results.
"""

_SEMANTIC_MODULES: Tuple[str, ...] = ("experiments/scenario.py", "experiments/runner.py")

ANALYSIS_PACKAGES: Tuple[str, ...] = ("core", "analysis")
"""``repro`` sub-packages whose source participates in the *analysis* code
fingerprint: the exact decision procedures live in ``core`` and the batch
classifier (plus the closed-form oracles it dispatches to) in ``analysis``.
An :class:`~repro.analysis.pipeline.AnalysisVerdict` is a pure function of
``(property task, analysis code)`` only — no simulator, no protocol stacks —
so cached verdicts survive edits to ``sim``/``consensus``/``coding`` that
would invalidate every cached *run*."""


def canonical_form(value: Any) -> Any:
    """Reduce a value to a JSON-serialisable canonical shape.

    Tuples become lists, mapping keys become strings (JSON sorts them), and
    anything exotic falls back to ``repr`` — the same convention
    :func:`~repro.experiments.runner.canonical_value` uses for decisions.
    """
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    if isinstance(value, Mapping):
        return {str(key): canonical_form(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [canonical_form(item) for item in value]
    if isinstance(value, (set, frozenset)):
        return sorted(repr(item) for item in value)
    return repr(value)


def spec_payload(spec: ScenarioSpec) -> Dict[str, Any]:
    """Every spec field in canonical, JSON-ready form (the hashed payload)."""
    return canonical_form(dataclasses.asdict(spec))


def _digest(payload: Any) -> str:
    import json

    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def spec_from_payload(payload: Mapping[str, Any]) -> ScenarioSpec:
    """Rebuild a :class:`ScenarioSpec` from its :func:`spec_payload` form.

    The inverse used by counterexample replay (``run --spec file.json``) and
    the fuzz corpus: a spec whose param values are plain JSON scalars round-
    trips exactly (``spec_from_payload(spec_payload(s)) == s``), which covers
    every spec the registries and the fuzzer produce.  Exotic param values
    were already reduced to ``repr`` strings by :func:`canonical_form`, so
    they cannot round-trip — by construction no registered builder needs
    them.
    """
    params = tuple(sorted((str(key), value) for key, value in payload.get("params", [])))
    return ScenarioSpec(
        name=payload["name"],
        protocol=payload["protocol"],
        adversary=payload["adversary"],
        delay=payload["delay"],
        n=int(payload["n"]),
        t=int(payload["t"]),
        property_key=payload["property_key"],
        params=params,
        time_limit=float(payload["time_limit"]),
        max_events=int(payload["max_events"]),
    )


def scenario_fingerprint(spec: ScenarioSpec) -> str:
    """Stable content hash of one scenario specification."""
    return _digest({"fingerprint_version": FINGERPRINT_VERSION, "spec": spec_payload(spec)})


def payload_fingerprint(payload: Any) -> str:
    """Stable content hash of an arbitrary canonical payload.

    The versioned sibling of :func:`scenario_fingerprint` for non-scenario
    content keys — the analysis pipeline hashes its
    :meth:`~repro.analysis.pipeline.PropertyTask.payload` through this, so
    every fingerprint in the store shares one digest convention and the
    version bump story.
    """
    return _digest({"fingerprint_version": FINGERPRINT_VERSION, "payload": canonical_form(payload)})


def _builder_source(builder: Any) -> str:
    """Source text of a registered builder, or a stable stand-in.

    ``repr`` would embed a memory address (different every process), so the
    fallback names the function instead — stable, at the cost of missing a
    semantic change in a source-less builder (C extension, exec'd code).
    """
    try:
        return inspect.getsource(builder)
    except (OSError, TypeError):
        module = getattr(builder, "__module__", "?")
        qualname = getattr(builder, "__qualname__", repr(type(builder)))
        return f"<no-source {module}.{qualname}>"


@lru_cache(maxsize=1)
def _module_tree_digest() -> str:
    """Hash of every semantic module file (computed once per process)."""
    root = pathlib.Path(__file__).resolve().parent.parent  # src/repro
    digest = hashlib.sha256()
    paths = sorted(
        path
        for package in SEMANTIC_PACKAGES
        for path in (root / package).rglob("*.py")
    ) + [root / relative for relative in _SEMANTIC_MODULES]
    for path in paths:
        digest.update(str(path.relative_to(root)).encode("utf-8"))
        digest.update(b"\x00")
        digest.update(path.read_bytes())
        digest.update(b"\x00")
    return digest.hexdigest()


@lru_cache(maxsize=1)
def analysis_code_fingerprint() -> str:
    """Hash of the code a property classification flows through.

    Covers the :data:`ANALYSIS_PACKAGES` module trees (``repro.core`` for the
    formalism and decision procedures, ``repro.analysis`` for the batch
    pipeline and closed-form oracles).  Cached verdicts in a
    :class:`~repro.store.store.RunStore` become invisible the moment any of
    that source changes, exactly like run records under
    :func:`code_fingerprint`.
    """
    root = pathlib.Path(__file__).resolve().parent.parent  # src/repro
    digest = hashlib.sha256()
    digest.update(f"fingerprint_version={FINGERPRINT_VERSION}\n".encode("utf-8"))
    for path in sorted(
        path for package in ANALYSIS_PACKAGES for path in (root / package).rglob("*.py")
    ):
        digest.update(str(path.relative_to(root)).encode("utf-8"))
        digest.update(b"\x00")
        digest.update(path.read_bytes())
        digest.update(b"\x00")
    return digest.hexdigest()


def code_fingerprint() -> str:
    """Hash of the current run-semantics code: module tree + live registries.

    Cheap enough to call per store open (the module tree digest is cached;
    only the ~15 registered builder sources are re-read), yet it tracks
    runtime registry mutations — a test that swaps a protocol builder in
    gets a different fingerprint and therefore a cold cache.
    """
    digest = hashlib.sha256()
    digest.update(f"fingerprint_version={FINGERPRINT_VERSION}\n".encode("utf-8"))
    digest.update(_module_tree_digest().encode("utf-8"))
    for label, registry in (
        ("protocol", PROTOCOLS),
        ("adversary", ADVERSARIES),
        ("delay", DELAY_MODELS),
    ):
        for key in sorted(registry):
            digest.update(f"\x00{label}:{key}\x00".encode("utf-8"))
            digest.update(_builder_source(registry[key]).encode("utf-8"))
    return digest.hexdigest()
