"""The SQLite-backed persistent run store.

:class:`RunStore` keeps every :class:`~repro.experiments.runner.RunResult`
ever computed, keyed by ``(scenario fingerprint, seed, code fingerprint)``
(see :mod:`repro.store.fingerprint`).  Because a run is a pure function of
that triple, a stored record *is* the run — re-executing it can only
reproduce the same bytes — so sweeps become incremental: the runner serves
hits straight from the store and only executes (then persists) the misses.

Storage layout and concurrency:

* one SQLite file in **WAL mode** with a generous busy timeout, so several
  sweep processes can share a store file (readers never block the writer);
* under the multiprocessing :class:`~repro.experiments.runner.Runner` only
  the **parent** process touches the store — workers just compute — so the
  store needs no cross-process write coordination of its own;
* writes are **batched**: ``put`` buffers records and flushes them in one
  transaction every ``batch_size`` records (and on ``flush``/``close``/exit,
  including when a sweep generator is abandoned);
* reads go through an in-memory **LRU cache**, so re-aggregating the same
  slice (report, compare, a warm sweep) does not re-parse JSON rows.

Timed-out runs are **never persisted**: a wall-clock timeout depends on the
host, not on the ``(scenario, seed, code)`` triple, so caching it would
freeze a transient condition as truth.  Deterministic failures (protocol
exceptions, violated properties, exhausted event budgets) are results like
any other and are stored.

The store also caches **analysis verdicts**
(:class:`~repro.analysis.pipeline.AnalysisVerdict` records from the
``analyze`` pipeline) in a sibling ``verdicts`` table keyed by
``(task fingerprint, analysis code fingerprint)``: a verdict is a pure
function of the property task and the :mod:`repro.core`/:mod:`repro.analysis`
source, so the same content-addressing argument applies — and because the
two fingerprints are independent, editing a protocol stack invalidates runs
but not verdicts, and vice versa.
"""

from __future__ import annotations

import json
import pathlib
import sqlite3
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from ..experiments.runner import TIMEOUT_ERROR_PREFIX, RunResult
from ..experiments.scenario import ScenarioSpec
from .fingerprint import analysis_code_fingerprint, code_fingerprint, scenario_fingerprint

STORE_FORMAT_VERSION = 1

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS runs (
    scenario_fp TEXT    NOT NULL,
    seed        INTEGER NOT NULL,
    code_fp     TEXT    NOT NULL,
    scenario    TEXT    NOT NULL,
    protocol    TEXT    NOT NULL,
    adversary   TEXT    NOT NULL,
    delay       TEXT    NOT NULL,
    n           INTEGER NOT NULL,
    t           INTEGER NOT NULL,
    ok          INTEGER NOT NULL,
    result_json TEXT    NOT NULL,
    PRIMARY KEY (scenario_fp, seed, code_fp)
);
CREATE INDEX IF NOT EXISTS runs_by_name ON runs (scenario, code_fp);
CREATE TABLE IF NOT EXISTS verdicts (
    task_fp      TEXT    NOT NULL,
    code_fp      TEXT    NOT NULL,
    label        TEXT    NOT NULL,
    family       TEXT    NOT NULL,
    n            INTEGER NOT NULL,
    t            INTEGER NOT NULL,
    solvable     INTEGER NOT NULL,
    verdict_json TEXT    NOT NULL,
    PRIMARY KEY (task_fp, code_fp)
);
CREATE INDEX IF NOT EXISTS verdicts_by_label ON verdicts (label, code_fp);
CREATE TABLE IF NOT EXISTS corpus (
    entry_fp   TEXT    NOT NULL,
    code_fp    TEXT    NOT NULL,
    scenario   TEXT    NOT NULL,
    seed       INTEGER NOT NULL,
    novel      INTEGER NOT NULL,
    violation  INTEGER NOT NULL,
    score      INTEGER NOT NULL,
    entry_json TEXT    NOT NULL,
    PRIMARY KEY (entry_fp, code_fp)
);
CREATE INDEX IF NOT EXISTS corpus_by_scenario ON corpus (scenario, code_fp);
"""

_Key = Tuple[str, int, str]


@dataclass(frozen=True)
class CorpusRecord:
    """One fuzzer corpus entry: a mutated input worth keeping.

    The record is pure data derived from the fuzz campaign's deterministic
    walk: the mutated scenario (as its canonical payload), the run seed, the
    mutation list that produced it, and the canonical coverage it exercised.
    ``entry_fp`` content-addresses the ``(scenario payload, seed)`` pair
    through :func:`~repro.store.fingerprint.payload_fingerprint`, so a warm
    re-fuzz recognises an already-explored input and serves its coverage
    (and its cached :class:`~repro.experiments.runner.RunResult` from the
    ``runs`` table) without executing anything.

    Defined here rather than in :mod:`repro.fuzz` so the store does not
    import the fuzz engine (the engine imports the store).
    """

    entry_fp: str
    scenario: str
    seed: int
    novel: bool
    violation: bool
    score: int
    entry: Dict[str, Any]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "entry_fp": self.entry_fp,
            "scenario": self.scenario,
            "seed": self.seed,
            "novel": self.novel,
            "violation": self.violation,
            "score": self.score,
            "entry": self.entry,
        }

    def canonical_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CorpusRecord":
        return cls(
            entry_fp=data["entry_fp"],
            scenario=data["scenario"],
            seed=data["seed"],
            novel=bool(data["novel"]),
            violation=bool(data["violation"]),
            score=data["score"],
            entry=data["entry"],
        )


@dataclass
class StoreStats:
    """Counters for one store session (reset when the store is opened).

    ``hits``/``misses``/``stored`` count run records;
    ``verdict_hits``/``verdict_misses``/``verdicts_stored`` count analysis
    verdicts — kept separate so "a warm sweep executes 0 runs" and "a warm
    analysis classifies 0 properties" stay independently checkable.
    """

    hits: int = 0
    misses: int = 0
    stored: int = 0
    verdict_hits: int = 0
    verdict_misses: int = 0
    verdicts_stored: int = 0
    corpus_hits: int = 0
    corpus_misses: int = 0
    corpus_stored: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stored": self.stored,
            "verdict_hits": self.verdict_hits,
            "verdict_misses": self.verdict_misses,
            "verdicts_stored": self.verdicts_stored,
            "corpus_hits": self.corpus_hits,
            "corpus_misses": self.corpus_misses,
            "corpus_stored": self.corpus_stored,
        }


class StoreFormatError(RuntimeError):
    """The file exists but is not a compatible run store."""


class StoreFlushError(RuntimeError):
    """The final flush on close failed; the pending records were NOT persisted.

    The store stays open (the connection is kept) so the caller can retry
    :meth:`RunStore.flush` or inspect :attr:`RunStore.pending_count` — a
    close that silently dropped buffered results would let an interrupted
    sweep masquerade as fully persisted.
    """


class RunStore:
    """Content-addressed persistent cache of :class:`RunResult` records.

    Args:
        path: SQLite file (created if missing, parents must exist).
        code_fp: Override the code fingerprint — tests use this to simulate
            a semantics change; normal callers leave it to
            :func:`~repro.store.fingerprint.code_fingerprint`.
        batch_size: Buffered ``put`` records per write transaction.
        cache_size: Entries held by the in-memory read LRU.
        analysis_code_fp: Override the analysis code fingerprint (same
            testing escape hatch, for the ``verdicts`` table).
    """

    def __init__(
        self,
        path: Union[str, pathlib.Path],
        code_fp: Optional[str] = None,
        batch_size: int = 128,
        cache_size: int = 4096,
        analysis_code_fp: Optional[str] = None,
    ):
        if batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        self.path = pathlib.Path(path)
        self.code_fp = code_fp if code_fp is not None else code_fingerprint()
        self.analysis_code_fp = (
            analysis_code_fp if analysis_code_fp is not None else analysis_code_fingerprint()
        )
        self.batch_size = batch_size
        self.cache_size = cache_size
        self.stats = StoreStats()
        self._pending: Dict[_Key, Tuple[ScenarioSpec, RunResult]] = {}
        self._pending_verdicts: Dict[Tuple[str, str], Tuple[Any, Any]] = {}
        self._pending_corpus: Dict[Tuple[str, str], CorpusRecord] = {}
        self._corpus_cache: Dict[Tuple[str, str], CorpusRecord] = {}
        self._verdict_cache: Dict[Tuple[str, str], Any] = {}
        self._lru: "OrderedDict[_Key, RunResult]" = OrderedDict()
        self._fp_cache: Dict[ScenarioSpec, str] = {}
        self._conn: Optional[sqlite3.Connection] = None
        try:
            self._conn = sqlite3.connect(str(self.path))
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            self._conn.execute("PRAGMA busy_timeout=30000")
            self._conn.executescript(_SCHEMA)
            self._check_format()
            self._conn.commit()
        except sqlite3.Error as exc:
            if self._conn is not None:
                self._conn.close()
                self._conn = None
            raise StoreFormatError(f"cannot open run store {self.path}: {exc}") from exc

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _check_format(self) -> None:
        row = self._conn.execute("SELECT value FROM meta WHERE key='format_version'").fetchone()
        if row is None:
            self._conn.execute(
                "INSERT INTO meta (key, value) VALUES ('format_version', ?)",
                (str(STORE_FORMAT_VERSION),),
            )
        elif row[0] != str(STORE_FORMAT_VERSION):
            raise sqlite3.DatabaseError(
                f"store format_version {row[0]!r}, this code reads {STORE_FORMAT_VERSION!r}"
            )

    @property
    def pending_count(self) -> int:
        """Buffered records (runs + verdicts + corpus entries) not yet committed."""
        return len(self._pending) + len(self._pending_verdicts) + len(self._pending_corpus)

    def close(self) -> None:
        """Flush pending writes and release the connection (idempotent).

        The store is only marked closed once the final flush has committed:
        if the flush fails, a :class:`StoreFlushError` is raised, the
        connection is kept, and the buffered records stay pending — the
        caller can retry :meth:`flush` (or accept the loss explicitly) rather
        than discovering much later that the tail of a sweep evaporated.
        """
        conn = self._conn
        if conn is None:
            return
        try:
            self._flush_into(conn)
        except sqlite3.Error as exc:
            raise StoreFlushError(
                f"run store {self.path} failed to flush {self.pending_count} pending "
                f"record(s) on close: {exc}"
            ) from exc
        self._conn = None
        conn.close()

    def __enter__(self) -> "RunStore":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - interpreter shutdown is untestable
        try:
            self.close()
        except Exception:
            pass

    def _connection(self) -> sqlite3.Connection:
        if self._conn is None:
            raise RuntimeError(f"run store {self.path} is closed")
        return self._conn

    # ------------------------------------------------------------------
    # Keys
    # ------------------------------------------------------------------
    def fingerprint(self, spec: ScenarioSpec) -> str:
        """The scenario fingerprint, memoised per spec object value."""
        cached = self._fp_cache.get(spec)
        if cached is None:
            cached = self._fp_cache[spec] = scenario_fingerprint(spec)
        return cached

    def key(self, spec: ScenarioSpec, seed: int) -> _Key:
        return (self.fingerprint(spec), int(seed), self.code_fp)

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------
    def _lru_put(self, key: _Key, result: RunResult) -> None:
        lru = self._lru
        lru[key] = result
        lru.move_to_end(key)
        while len(lru) > self.cache_size:
            lru.popitem(last=False)

    def get(self, spec: ScenarioSpec, seed: int) -> Optional[RunResult]:
        """The stored record for ``(spec, seed)`` under the current code, or None."""
        key = self.key(spec, seed)
        cached = self._lru.get(key)
        if cached is not None:
            self._lru.move_to_end(key)
            self.stats.hits += 1
            return cached
        pending = self._pending.get(key)
        if pending is not None:
            self.stats.hits += 1
            return pending[1]
        row = self._connection().execute(
            "SELECT result_json FROM runs WHERE scenario_fp=? AND seed=? AND code_fp=?", key
        ).fetchone()
        if row is None:
            self.stats.misses += 1
            return None
        result = RunResult.from_dict(json.loads(row[0]))
        self._lru_put(key, result)
        self.stats.hits += 1
        return result

    def __contains__(self, spec_seed: Tuple[ScenarioSpec, int]) -> bool:
        spec, seed = spec_seed
        key = self.key(spec, seed)
        if key in self._lru or key in self._pending:
            return True
        row = self._connection().execute(
            "SELECT 1 FROM runs WHERE scenario_fp=? AND seed=? AND code_fp=?", key
        ).fetchone()
        return row is not None

    # ------------------------------------------------------------------
    # Write path (batched)
    # ------------------------------------------------------------------
    def put(self, spec: ScenarioSpec, result: RunResult) -> bool:
        """Buffer one record for persistence; returns False when skipped.

        Wall-clock timeout records are skipped: they are host conditions,
        not functions of the content key, and must be recomputed next time.
        """
        if result.error is not None and result.error.startswith(TIMEOUT_ERROR_PREFIX):
            return False
        key = self.key(spec, result.seed)
        self._pending[key] = (spec, result)
        self._lru_put(key, result)
        self.stats.stored += 1
        if len(self._pending) >= self.batch_size:
            self.flush()
        return True

    def put_many(self, pairs: Sequence[Tuple[ScenarioSpec, RunResult]]) -> int:
        return sum(1 for spec, result in pairs if self.put(spec, result))

    def flush(self) -> None:
        """Write every buffered record in one transaction."""
        self._flush_into(self._connection())

    def _flush_into(self, conn: sqlite3.Connection) -> None:
        if not self._pending and not self._pending_verdicts and not self._pending_corpus:
            return
        if self._pending:
            rows = [
                (
                    key[0],
                    key[1],
                    key[2],
                    spec.name,
                    spec.protocol,
                    spec.adversary,
                    spec.delay,
                    spec.n,
                    spec.t,
                    1 if result.ok else 0,
                    result.canonical_json(),
                )
                for key, (spec, result) in self._pending.items()
            ]
            conn.executemany(
                "INSERT OR REPLACE INTO runs "
                "(scenario_fp, seed, code_fp, scenario, protocol, adversary, delay, n, t, ok, result_json) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                rows,
            )
        if self._pending_verdicts:
            verdict_rows = [
                (
                    key[0],
                    key[1],
                    verdict.label,
                    verdict.family,
                    verdict.n,
                    verdict.t,
                    1 if verdict.solvable else 0,
                    verdict.canonical_json(),
                )
                for key, (_task, verdict) in self._pending_verdicts.items()
            ]
            conn.executemany(
                "INSERT OR REPLACE INTO verdicts "
                "(task_fp, code_fp, label, family, n, t, solvable, verdict_json) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                verdict_rows,
            )
        if self._pending_corpus:
            corpus_rows = [
                (
                    key[0],
                    key[1],
                    record.scenario,
                    record.seed,
                    1 if record.novel else 0,
                    1 if record.violation else 0,
                    record.score,
                    record.canonical_json(),
                )
                for key, record in self._pending_corpus.items()
            ]
            conn.executemany(
                "INSERT OR REPLACE INTO corpus "
                "(entry_fp, code_fp, scenario, seed, novel, violation, score, entry_json) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                corpus_rows,
            )
        conn.commit()
        self._pending.clear()
        self._pending_verdicts.clear()
        self._pending_corpus.clear()

    # ------------------------------------------------------------------
    # Analysis verdicts (the ``analyze`` pipeline's cache)
    # ------------------------------------------------------------------
    def verdict_key(self, task: Any) -> Tuple[str, str]:
        """The ``(task fingerprint, analysis code fingerprint)`` content key."""
        return (task.fingerprint(), self.analysis_code_fp)

    def get_verdict(self, task: Any) -> Optional[Any]:
        """The cached verdict for a property task under the current analysis code."""
        from ..analysis.pipeline import AnalysisVerdict

        key = self.verdict_key(task)
        cached = self._verdict_cache.get(key)
        if cached is not None:
            self.stats.verdict_hits += 1
            return cached
        pending = self._pending_verdicts.get(key)
        if pending is not None:
            self.stats.verdict_hits += 1
            return pending[1]
        row = self._connection().execute(
            "SELECT verdict_json FROM verdicts WHERE task_fp=? AND code_fp=?", key
        ).fetchone()
        if row is None:
            self.stats.verdict_misses += 1
            return None
        verdict = AnalysisVerdict.from_dict(json.loads(row[0]))
        self._verdict_cache[key] = verdict
        self.stats.verdict_hits += 1
        return verdict

    def put_verdict(self, task: Any, verdict: Any) -> None:
        """Buffer one verdict for persistence (flushed with the run batch)."""
        key = self.verdict_key(task)
        self._pending_verdicts[key] = (task, verdict)
        self._verdict_cache[key] = verdict
        self.stats.verdicts_stored += 1
        if len(self._pending) + len(self._pending_verdicts) >= self.batch_size:
            self.flush()

    def iter_verdicts(self, any_code: bool = False) -> Iterator[Any]:
        """Stored verdicts in deterministic label order.

        By default only verdicts under the *current* analysis code
        fingerprint are returned; ``any_code=True`` includes stale ones, one
        per label (current-code record preferred), mirroring
        :meth:`iter_records`.
        """
        from ..analysis.pipeline import AnalysisVerdict

        self.flush()
        if not any_code:
            cursor = self._connection().execute(
                "SELECT verdict_json FROM verdicts WHERE code_fp=? ORDER BY label, task_fp",
                (self.analysis_code_fp,),
            )
            for (verdict_json,) in cursor:
                yield AnalysisVerdict.from_dict(json.loads(verdict_json))
            return
        cursor = self._connection().execute(
            "SELECT label, code_fp, verdict_json FROM verdicts ORDER BY label, task_fp, code_fp"
        )
        chosen: "OrderedDict[str, str]" = OrderedDict()
        current_code: Dict[str, bool] = {}
        for label, code_fp, verdict_json in cursor:
            if label not in chosen or (code_fp == self.analysis_code_fp and not current_code[label]):
                chosen[label] = verdict_json
                current_code[label] = code_fp == self.analysis_code_fp
        for verdict_json in chosen.values():
            yield AnalysisVerdict.from_dict(json.loads(verdict_json))

    def count_verdicts(self, any_code: bool = False) -> int:
        self.flush()
        if any_code:
            return self._connection().execute("SELECT COUNT(*) FROM verdicts").fetchone()[0]
        return self._connection().execute(
            "SELECT COUNT(*) FROM verdicts WHERE code_fp=?", (self.analysis_code_fp,)
        ).fetchone()[0]

    # ------------------------------------------------------------------
    # Fuzzer corpus (the ``fuzz`` campaign's persisted seed pool)
    # ------------------------------------------------------------------
    def get_corpus(self, entry_fp: str) -> Optional[CorpusRecord]:
        """The corpus entry for a content fingerprint under the current code."""
        key = (entry_fp, self.code_fp)
        cached = self._corpus_cache.get(key)
        if cached is not None:
            self.stats.corpus_hits += 1
            return cached
        pending = self._pending_corpus.get(key)
        if pending is not None:
            self.stats.corpus_hits += 1
            return pending
        row = self._connection().execute(
            "SELECT entry_json FROM corpus WHERE entry_fp=? AND code_fp=?", key
        ).fetchone()
        if row is None:
            self.stats.corpus_misses += 1
            return None
        record = CorpusRecord.from_dict(json.loads(row[0]))
        self._corpus_cache[key] = record
        self.stats.corpus_hits += 1
        return record

    def put_corpus(self, record: CorpusRecord) -> None:
        """Buffer one corpus entry for persistence (flushed with the run batch)."""
        key = (record.entry_fp, self.code_fp)
        self._pending_corpus[key] = record
        self._corpus_cache[key] = record
        self.stats.corpus_stored += 1
        if self.pending_count >= self.batch_size:
            self.flush()

    def iter_corpus(self, scenario: Optional[str] = None) -> Iterator[CorpusRecord]:
        """Stored corpus entries under the current code, in ``entry_fp`` order."""
        self.flush()
        if scenario is None:
            cursor = self._connection().execute(
                "SELECT entry_json FROM corpus WHERE code_fp=? ORDER BY entry_fp",
                (self.code_fp,),
            )
        else:
            cursor = self._connection().execute(
                "SELECT entry_json FROM corpus WHERE code_fp=? AND scenario=? ORDER BY entry_fp",
                (self.code_fp, scenario),
            )
        for (entry_json,) in cursor:
            yield CorpusRecord.from_dict(json.loads(entry_json))

    def count_corpus(self) -> int:
        self.flush()
        return self._connection().execute(
            "SELECT COUNT(*) FROM corpus WHERE code_fp=?", (self.code_fp,)
        ).fetchone()[0]

    # ------------------------------------------------------------------
    # Bulk reads (report / compare / maintenance)
    # ------------------------------------------------------------------
    def _where(
        self,
        scenarios: Optional[Sequence[str]],
        protocols: Optional[Sequence[str]],
        adversaries: Optional[Sequence[str]],
        delays: Optional[Sequence[str]],
        any_code: bool,
    ) -> Tuple[str, List[Any]]:
        clauses: List[str] = []
        params: List[Any] = []
        if not any_code:
            clauses.append("code_fp = ?")
            params.append(self.code_fp)
        for column, values in (
            ("scenario", scenarios),
            ("protocol", protocols),
            ("adversary", adversaries),
            ("delay", delays),
        ):
            if values:
                placeholders = ", ".join("?" for _ in values)
                clauses.append(f"{column} IN ({placeholders})")
                params.extend(values)
        where = f" WHERE {' AND '.join(clauses)}" if clauses else ""
        return where, params

    def iter_records(
        self,
        scenarios: Optional[Sequence[str]] = None,
        protocols: Optional[Sequence[str]] = None,
        adversaries: Optional[Sequence[str]] = None,
        delays: Optional[Sequence[str]] = None,
        any_code: bool = False,
    ) -> Iterator[RunResult]:
        """Stored records of a slice, in deterministic (scenario, seed) order.

        By default only records under the *current* code fingerprint are
        returned — stale entries from before a semantics change stay
        invisible.  With ``any_code=True`` stale entries are included, but
        each ``(scenario name, seed)`` still yields exactly **one** record —
        the current-code one when it exists, else the record under the first
        ``(scenario_fp, code_fp)`` in lexicographic order — so an aggregate
        never double-counts a pair or blends code/param versions of the same
        named scenario.
        """
        self.flush()
        where, params = self._where(scenarios, protocols, adversaries, delays, any_code)
        cursor = self._connection().execute(
            f"SELECT scenario, seed, code_fp, result_json FROM runs{where} "
            "ORDER BY scenario, seed, scenario_fp, code_fp",
            params,
        )
        if not any_code:  # the primary key already guarantees one row per pair
            for _scenario, _seed, _code_fp, result_json in cursor:
                yield RunResult.from_dict(json.loads(result_json))
            return
        chosen: "OrderedDict[Tuple[str, int], str]" = OrderedDict()
        current_code: Dict[Tuple[str, int], bool] = {}
        for scenario, seed, code_fp, result_json in cursor:
            key = (scenario, seed)
            if key not in chosen or (code_fp == self.code_fp and not current_code[key]):
                chosen[key] = result_json
                current_code[key] = code_fp == self.code_fp
        for result_json in chosen.values():
            yield RunResult.from_dict(json.loads(result_json))

    def count(self, any_code: bool = False) -> int:
        self.flush()
        where, params = self._where(None, None, None, None, any_code)
        return self._connection().execute(f"SELECT COUNT(*) FROM runs{where}", params).fetchone()[0]

    def scenario_names(self, any_code: bool = False) -> List[str]:
        self.flush()
        where, params = self._where(None, None, None, None, any_code)
        cursor = self._connection().execute(
            f"SELECT DISTINCT scenario FROM runs{where} ORDER BY scenario", params
        )
        return [name for (name,) in cursor]

    def code_fingerprints(self) -> List[Tuple[str, int]]:
        """Every code fingerprint in the store with its record count."""
        self.flush()
        cursor = self._connection().execute(
            "SELECT code_fp, COUNT(*) FROM runs GROUP BY code_fp ORDER BY code_fp"
        )
        return [(code_fp, count) for code_fp, count in cursor]

    def vacuum_stale(self) -> int:
        """Delete records from other code fingerprints; returns rows removed.

        Covers every table, each against its own fingerprint: runs and the
        fuzz corpus against the run-semantics code, verdicts against the
        analysis code.
        """
        self.flush()
        conn = self._connection()
        removed = conn.execute("DELETE FROM runs WHERE code_fp != ?", (self.code_fp,)).rowcount
        removed += conn.execute(
            "DELETE FROM verdicts WHERE code_fp != ?", (self.analysis_code_fp,)
        ).rowcount
        removed += conn.execute("DELETE FROM corpus WHERE code_fp != ?", (self.code_fp,)).rowcount
        conn.commit()
        return removed


def is_run_store(path: Union[str, pathlib.Path]) -> bool:
    """True when the file looks like an SQLite database (vs a JSON baseline)."""
    try:
        with open(path, "rb") as handle:
            return handle.read(16) == b"SQLite format 3\x00"
    except OSError:
        return False
