"""The SQLite-backed persistent run store.

:class:`RunStore` keeps every :class:`~repro.experiments.runner.RunResult`
ever computed, keyed by ``(scenario fingerprint, seed, code fingerprint)``
(see :mod:`repro.store.fingerprint`).  Because a run is a pure function of
that triple, a stored record *is* the run — re-executing it can only
reproduce the same bytes — so sweeps become incremental: the runner serves
hits straight from the store and only executes (then persists) the misses.

Storage layout and concurrency:

* one SQLite file in **WAL mode** with a generous busy timeout, so several
  sweep processes can share a store file (readers never block the writer);
* under the multiprocessing :class:`~repro.experiments.runner.Runner` only
  the **parent** process touches the store — workers just compute — so the
  store needs no cross-process write coordination of its own;
* writes are **batched**: ``put`` buffers records and flushes them in one
  transaction every ``batch_size`` records (and on ``flush``/``close``/exit,
  including when a sweep generator is abandoned);
* reads go through an in-memory **LRU cache**, so re-aggregating the same
  slice (report, compare, a warm sweep) does not re-parse JSON rows.

Timed-out runs are **never persisted**: a wall-clock timeout depends on the
host, not on the ``(scenario, seed, code)`` triple, so caching it would
freeze a transient condition as truth.  Deterministic failures (protocol
exceptions, violated properties, exhausted event budgets) are results like
any other and are stored.

The store also caches **analysis verdicts**
(:class:`~repro.analysis.pipeline.AnalysisVerdict` records from the
``analyze`` pipeline) in a sibling ``verdicts`` table keyed by
``(task fingerprint, analysis code fingerprint)``: a verdict is a pure
function of the property task and the :mod:`repro.core`/:mod:`repro.analysis`
source, so the same content-addressing argument applies — and because the
two fingerprints are independent, editing a protocol stack invalidates runs
but not verdicts, and vice versa.
"""

from __future__ import annotations

import json
import os
import pathlib
import sqlite3
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from ..experiments.runner import POISON_ERROR_PREFIX, TIMEOUT_ERROR_PREFIX, RunResult
from ..experiments.scenario import ScenarioSpec
from ..obs.registry import METRICS
from ..resilience.faults import FaultPlan, FaultState
from ..resilience.retry import RetryPolicy
from .fingerprint import analysis_code_fingerprint, code_fingerprint, scenario_fingerprint

STORE_FORMAT_VERSION = 1

# Telemetry instruments (descriptive only — see repro.obs).  They mirror the
# per-session StoreStats into the process-local registry so a campaign's
# store behaviour shows up in the same snapshot as dispatch and supervision.
_OBS_HITS = METRICS.counter("store.hits")
_OBS_MISSES = METRICS.counter("store.misses")
_OBS_STORED = METRICS.counter("store.stored")
_OBS_FLUSH_ATTEMPTS = METRICS.counter("store.flush.attempts")
_OBS_FLUSH_RETRIES = METRICS.counter("store.flush.retries")
_OBS_JOURNAL_SPILLED = METRICS.counter("store.journal.spilled")
_OBS_JOURNAL_REPLAYED = METRICS.counter("store.journal.replayed")
_OBS_POISON_STORED = METRICS.counter("store.poison.stored")
_OBS_FLUSH_WALL = METRICS.timer("store.flush.wall")

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS runs (
    scenario_fp TEXT    NOT NULL,
    seed        INTEGER NOT NULL,
    code_fp     TEXT    NOT NULL,
    scenario    TEXT    NOT NULL,
    protocol    TEXT    NOT NULL,
    adversary   TEXT    NOT NULL,
    delay       TEXT    NOT NULL,
    n           INTEGER NOT NULL,
    t           INTEGER NOT NULL,
    ok          INTEGER NOT NULL,
    result_json TEXT    NOT NULL,
    PRIMARY KEY (scenario_fp, seed, code_fp)
);
CREATE INDEX IF NOT EXISTS runs_by_name ON runs (scenario, code_fp);
CREATE TABLE IF NOT EXISTS verdicts (
    task_fp      TEXT    NOT NULL,
    code_fp      TEXT    NOT NULL,
    label        TEXT    NOT NULL,
    family       TEXT    NOT NULL,
    n            INTEGER NOT NULL,
    t            INTEGER NOT NULL,
    solvable     INTEGER NOT NULL,
    verdict_json TEXT    NOT NULL,
    PRIMARY KEY (task_fp, code_fp)
);
CREATE INDEX IF NOT EXISTS verdicts_by_label ON verdicts (label, code_fp);
CREATE TABLE IF NOT EXISTS corpus (
    entry_fp   TEXT    NOT NULL,
    code_fp    TEXT    NOT NULL,
    scenario   TEXT    NOT NULL,
    seed       INTEGER NOT NULL,
    novel      INTEGER NOT NULL,
    violation  INTEGER NOT NULL,
    score      INTEGER NOT NULL,
    entry_json TEXT    NOT NULL,
    PRIMARY KEY (entry_fp, code_fp)
);
CREATE INDEX IF NOT EXISTS corpus_by_scenario ON corpus (scenario, code_fp);
CREATE TABLE IF NOT EXISTS poison (
    scenario_fp TEXT    NOT NULL,
    seed        INTEGER NOT NULL,
    code_fp     TEXT    NOT NULL,
    scenario    TEXT    NOT NULL,
    attempts    INTEGER NOT NULL,
    reason      TEXT    NOT NULL,
    PRIMARY KEY (scenario_fp, seed, code_fp)
);
CREATE TABLE IF NOT EXISTS telemetry (
    snapshot_id   INTEGER PRIMARY KEY AUTOINCREMENT,
    label         TEXT NOT NULL,
    created       REAL NOT NULL,
    snapshot_json TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS telemetry_by_label ON telemetry (label, snapshot_id);
"""
# The telemetry table is *descriptive*: snapshots are observations about an
# execution (metrics registry state, per-job counter deltas, supervision
# stats), never inputs to one.  It is deliberately additive — created by
# IF NOT EXISTS on open, absent from _INSERTS (no batch/journal/salvage
# path), and outside the format version, so old stores gain it silently and
# telemetry rows never compete with run records for flush durability.

_INSERTS: Dict[str, Tuple[str, int]] = {
    "runs": (
        "INSERT OR REPLACE INTO runs "
        "(scenario_fp, seed, code_fp, scenario, protocol, adversary, delay, n, t, ok, result_json) "
        "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
        11,
    ),
    "verdicts": (
        "INSERT OR REPLACE INTO verdicts "
        "(task_fp, code_fp, label, family, n, t, solvable, verdict_json) "
        "VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
        8,
    ),
    "corpus": (
        "INSERT OR REPLACE INTO corpus "
        "(entry_fp, code_fp, scenario, seed, novel, violation, score, entry_json) "
        "VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
        8,
    ),
    "poison": (
        "INSERT OR REPLACE INTO poison "
        "(scenario_fp, seed, code_fp, scenario, attempts, reason) "
        "VALUES (?, ?, ?, ?, ?, ?)",
        6,
    ),
}
# One insert statement (and column count) per table: shared by the batched
# flush, the disk-full JSONL journal spill, its replay on reopen, and the
# best-effort row salvage out of a quarantined corrupt store.

_Key = Tuple[str, int, str]


@dataclass(frozen=True)
class CorpusRecord:
    """One fuzzer corpus entry: a mutated input worth keeping.

    The record is pure data derived from the fuzz campaign's deterministic
    walk: the mutated scenario (as its canonical payload), the run seed, the
    mutation list that produced it, and the canonical coverage it exercised.
    ``entry_fp`` content-addresses the ``(scenario payload, seed)`` pair
    through :func:`~repro.store.fingerprint.payload_fingerprint`, so a warm
    re-fuzz recognises an already-explored input and serves its coverage
    (and its cached :class:`~repro.experiments.runner.RunResult` from the
    ``runs`` table) without executing anything.

    Defined here rather than in :mod:`repro.fuzz` so the store does not
    import the fuzz engine (the engine imports the store).
    """

    entry_fp: str
    scenario: str
    seed: int
    novel: bool
    violation: bool
    score: int
    entry: Dict[str, Any]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "entry_fp": self.entry_fp,
            "scenario": self.scenario,
            "seed": self.seed,
            "novel": self.novel,
            "violation": self.violation,
            "score": self.score,
            "entry": self.entry,
        }

    def canonical_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CorpusRecord":
        return cls(
            entry_fp=data["entry_fp"],
            scenario=data["scenario"],
            seed=data["seed"],
            novel=bool(data["novel"]),
            violation=bool(data["violation"]),
            score=data["score"],
            entry=data["entry"],
        )


@dataclass(frozen=True)
class PoisonEntry:
    """One quarantined task: a ``(scenario, seed)`` that kept killing workers.

    Persisted in the ``poison`` table so a resumed campaign knows which
    runs were given up on (and why) — they are *not* run records: a poison
    verdict is a host condition, so the pair stays a cache miss and a
    healthier host will simply re-execute it.
    """

    scenario: str
    seed: int
    attempts: int
    reason: str


@dataclass(frozen=True)
class TelemetrySnapshot:
    """One persisted telemetry snapshot (a row of the ``telemetry`` table).

    ``snapshot`` is the JSON payload the executor persisted at the end of a
    job: the process-local metrics registry, the job's own counter deltas,
    the store/supervision stats.  Descriptive only — nothing reads a
    snapshot to make an execution decision.
    """

    snapshot_id: int
    label: str
    created: float
    snapshot: Dict[str, Any]


@dataclass(frozen=True)
class StoreRecovery:
    """What corrupt-store recovery did on open (see :class:`RunStore`)."""

    quarantined_path: str
    salvaged_rows: int
    reason: str


@dataclass
class StoreStats:
    """Counters for one store session (reset when the store is opened).

    ``hits``/``misses``/``stored`` count run records;
    ``verdict_hits``/``verdict_misses``/``verdicts_stored`` count analysis
    verdicts — kept separate so "a warm sweep executes 0 runs" and "a warm
    analysis classifies 0 properties" stay independently checkable.
    """

    hits: int = 0
    misses: int = 0
    stored: int = 0
    verdict_hits: int = 0
    verdict_misses: int = 0
    verdicts_stored: int = 0
    corpus_hits: int = 0
    corpus_misses: int = 0
    corpus_stored: int = 0
    poison_stored: int = 0
    flush_retries: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stored": self.stored,
            "verdict_hits": self.verdict_hits,
            "verdict_misses": self.verdict_misses,
            "verdicts_stored": self.verdicts_stored,
            "corpus_hits": self.corpus_hits,
            "corpus_misses": self.corpus_misses,
            "corpus_stored": self.corpus_stored,
            "poison_stored": self.poison_stored,
            "flush_retries": self.flush_retries,
        }


class StoreFormatError(RuntimeError):
    """The file exists but is not a compatible run store."""


class StoreFlushError(RuntimeError):
    """Flushing failed even after the bounded retry; nothing was dropped.

    Raised by :meth:`RunStore.close` only once the retry budget is spent
    *and* the records could not be spilled to the JSONL side-journal.  The
    store stays open (the connection is kept) so the caller can retry
    :meth:`RunStore.flush` or inspect :attr:`RunStore.pending_count` — a
    close that silently dropped buffered results would let an interrupted
    sweep masquerade as fully persisted.
    """


class _StoreCorruption(StoreFormatError):
    """Internal marker: the file is a run store, but its content is corrupt.

    Subclasses :class:`StoreFormatError` so that, should recovery itself
    fail and the error escape, callers still see the public type.
    """


_CORRUPTION_MARKERS = ("malformed", "corrupt", "not a database", "disk image")


def _looks_corrupt(exc: sqlite3.Error) -> bool:
    message = str(exc).lower()
    return any(marker in message for marker in _CORRUPTION_MARKERS)


def _spillworthy(exc: BaseException) -> bool:
    """Whether a flush failure is the disk-full family the journal can absorb.

    Only environmental write failures degrade to the side-journal: an
    ``OSError`` or an sqlite disk/I-O complaint.  Anything else (a schema
    problem, a programming error) would just replay into the same failure,
    so it surfaces as :class:`StoreFlushError` instead.
    """
    if isinstance(exc, OSError):
        return True
    if isinstance(exc, sqlite3.OperationalError):
        message = str(exc).lower()
        return "disk" in message or "i/o" in message or "readonly" in message
    return False


class RunStore:
    """Content-addressed persistent cache of :class:`RunResult` records.

    Args:
        path: SQLite file (created if missing, parents must exist).
        code_fp: Override the code fingerprint — tests use this to simulate
            a semantics change; normal callers leave it to
            :func:`~repro.store.fingerprint.code_fingerprint`.
        batch_size: Buffered ``put`` records per write transaction.
        cache_size: Entries held by the in-memory read LRU.
        analysis_code_fp: Override the analysis code fingerprint (same
            testing escape hatch, for the ``verdicts`` table).
        retry_policy: Bounds and paces flush retries (on :meth:`close` and
            :meth:`flush_retrying`); defaults to
            :class:`~repro.resilience.retry.RetryPolicy`'s defaults.
        fault_plan: Deterministic fault injection for chaos tests (flush
            failures, corrupt-on-reopen); defaults to the plan in the
            ``REPRO_FAULT_PLAN`` environment variable, else none.

    Opening is resilient:

    * the file's integrity is verified (``PRAGMA quick_check``); a corrupt
      store — valid SQLite header, damaged content — is renamed to a
      ``.corrupt`` quarantine file, a fresh store is built, and every row
      that survives in the quarantined file is salvaged into it (recorded
      in :attr:`recovery`).  A file that was never SQLite still raises
      :class:`StoreFormatError` — that is a caller mistake, not damage;
    * a JSONL side-journal left behind by a disk-full :meth:`close` (see
      below) is replayed into the store and deleted (counted in
      :attr:`journal_replayed`).

    Closing is resilient too: the final flush is retried under
    ``retry_policy``; if every attempt fails with a disk-full-family error,
    the pending rows are spilled to the side-journal (``<path>.journal.jsonl``)
    so the data survives for the next open.  Only when even the spill fails
    does :meth:`close` raise :class:`StoreFlushError` and keep the
    connection for a caller-driven retry.
    """

    def __init__(
        self,
        path: Union[str, pathlib.Path],
        code_fp: Optional[str] = None,
        batch_size: int = 128,
        cache_size: int = 4096,
        analysis_code_fp: Optional[str] = None,
        retry_policy: Optional[RetryPolicy] = None,
        fault_plan: Optional[FaultPlan] = None,
    ):
        if batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        self.path = pathlib.Path(path)
        self.code_fp = code_fp if code_fp is not None else code_fingerprint()
        self.analysis_code_fp = (
            analysis_code_fp if analysis_code_fp is not None else analysis_code_fingerprint()
        )
        self.batch_size = batch_size
        self.cache_size = cache_size
        if fault_plan is None:
            fault_plan = FaultPlan.from_env()
        self.retry_policy = (
            retry_policy
            if retry_policy is not None
            else RetryPolicy(seed=fault_plan.seed if fault_plan is not None else 0)
        )
        self._fault_state = FaultState(plan=fault_plan)
        self.stats = StoreStats()
        self.recovery: Optional[StoreRecovery] = None
        self.journal_replayed = 0
        self._pending: Dict[_Key, Tuple[ScenarioSpec, RunResult]] = {}
        self._pending_verdicts: Dict[Tuple[str, str], Tuple[Any, Any]] = {}
        self._pending_corpus: Dict[Tuple[str, str], CorpusRecord] = {}
        self._pending_poison: Dict[_Key, Tuple[str, int, int, str]] = {}
        self._corpus_cache: Dict[Tuple[str, str], CorpusRecord] = {}
        self._verdict_cache: Dict[Tuple[str, str], Any] = {}
        self._lru: "OrderedDict[_Key, RunResult]" = OrderedDict()
        self._fp_cache: Dict[ScenarioSpec, str] = {}
        self._conn: Optional[sqlite3.Connection] = None
        if fault_plan is not None and fault_plan.corrupt_on_reopen:
            _inject_corruption(self.path)
        try:
            self._conn = self._open_verified()
        except _StoreCorruption as exc:
            quarantined = self._quarantine_corrupt_file()
            self._conn = self._open_verified()
            salvaged = self._salvage_rows(quarantined)
            self.recovery = StoreRecovery(
                quarantined_path=str(quarantined), salvaged_rows=salvaged, reason=str(exc)
            )
        self.journal_replayed = self._replay_journal()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def journal_path(self) -> pathlib.Path:
        """The JSONL side-journal (disk-full spill target, replayed on open)."""
        return pathlib.Path(str(self.path) + ".journal.jsonl")

    def _open_verified(self) -> sqlite3.Connection:
        """Connect, verify integrity, ensure the schema, check the format.

        Raises :class:`_StoreCorruption` when the file carries a valid
        SQLite header but its content fails verification — the signal the
        constructor turns into quarantine-and-rebuild — and plain
        :class:`StoreFormatError` for everything else (not SQLite at all,
        unopenable path, format-version mismatch).
        """
        try:
            conn = sqlite3.connect(str(self.path))
        except sqlite3.Error as exc:
            raise StoreFormatError(f"cannot open run store {self.path}: {exc}") from exc
        try:
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.execute("PRAGMA busy_timeout=30000")
            row = conn.execute("PRAGMA quick_check(1)").fetchone()
            if row is None or row[0] != "ok":
                raise _StoreCorruption(
                    f"run store {self.path} failed its integrity check: "
                    f"{row[0] if row else 'no result'}"
                )
            conn.executescript(_SCHEMA)
            self._check_format(conn)
            conn.commit()
            return conn
        except _StoreCorruption:
            conn.close()
            raise
        except sqlite3.Error as exc:
            conn.close()
            if _looks_corrupt(exc) and is_run_store(self.path):
                raise _StoreCorruption(
                    f"run store {self.path} is corrupt: {exc}"
                ) from exc
            raise StoreFormatError(f"cannot open run store {self.path}: {exc}") from exc

    def _check_format(self, conn: sqlite3.Connection) -> None:
        row = conn.execute("SELECT value FROM meta WHERE key='format_version'").fetchone()
        if row is None:
            conn.execute(
                "INSERT INTO meta (key, value) VALUES ('format_version', ?)",
                (str(STORE_FORMAT_VERSION),),
            )
        elif row[0] != str(STORE_FORMAT_VERSION):
            raise sqlite3.DatabaseError(
                f"store format_version {row[0]!r}, this code reads {STORE_FORMAT_VERSION!r}"
            )

    def _quarantine_corrupt_file(self) -> pathlib.Path:
        """Move the corrupt store (and its WAL droppings) out of the way."""
        quarantined = pathlib.Path(str(self.path) + ".corrupt")
        counter = 1
        while quarantined.exists():
            quarantined = pathlib.Path(f"{self.path}.corrupt.{counter}")
            counter += 1
        os.replace(self.path, quarantined)
        for suffix in ("-wal", "-shm"):
            sidecar = pathlib.Path(str(self.path) + suffix)
            if sidecar.exists():
                os.replace(sidecar, pathlib.Path(str(quarantined) + suffix))
        return quarantined

    def _salvage_rows(self, quarantined: pathlib.Path) -> int:
        """Copy every readable row from the quarantined file into the fresh store.

        Best effort by design: a corrupt database may yield all, some, or
        none of its rows — whatever sqlite can still read is preserved,
        and the quarantined file is kept on disk for manual inspection.
        """
        try:
            source = sqlite3.connect(f"file:{quarantined}?mode=ro", uri=True)
        except sqlite3.Error:
            return 0
        salvaged = 0
        try:
            for table, (insert_sql, columns) in _INSERTS.items():
                try:
                    rows = source.execute(f"SELECT * FROM {table}").fetchall()
                except sqlite3.Error:
                    continue
                good = [row for row in rows if len(row) == columns]
                if good:
                    self._conn.executemany(insert_sql.replace("OR REPLACE", "OR IGNORE"), good)
                    salvaged += len(good)
            self._conn.commit()
        except sqlite3.Error:
            pass
        finally:
            source.close()
        return salvaged

    def _replay_journal(self) -> int:
        """Replay (then delete) the JSONL side-journal a degraded close left.

        Rows were journalled in their table-row form, so replay is the same
        idempotent ``INSERT OR REPLACE`` a flush would have issued.
        Unparseable lines are skipped rather than blocking the open — the
        journal was written while the disk was failing.
        """
        journal = self.journal_path
        try:
            text = journal.read_text(encoding="utf-8")
        except FileNotFoundError:
            return 0
        except OSError:
            return 0
        replayed = 0
        by_table: Dict[str, List[Tuple]] = {}
        for line in text.splitlines():
            if not line.strip():
                continue
            try:
                entry = json.loads(line)
                table, row = entry["table"], tuple(entry["row"])
            except (json.JSONDecodeError, KeyError, TypeError):
                continue
            if table in _INSERTS and len(row) == _INSERTS[table][1]:
                by_table.setdefault(table, []).append(row)
        for table, rows in by_table.items():
            try:
                self._conn.executemany(_INSERTS[table][0], rows)
                replayed += len(rows)
            except sqlite3.Error:
                continue
        self._conn.commit()
        try:
            journal.unlink()
        except OSError:
            pass
        _OBS_JOURNAL_REPLAYED.inc(replayed)
        return replayed

    @property
    def pending_count(self) -> int:
        """Buffered records (runs + verdicts + corpus + poison) not yet committed."""
        return (
            len(self._pending)
            + len(self._pending_verdicts)
            + len(self._pending_corpus)
            + len(self._pending_poison)
        )

    def flush_retrying(self, raise_on_failure: bool = True) -> bool:
        """Flush with the bounded retry of :attr:`retry_policy`.

        Returns True when everything committed.  On total failure, raises
        :class:`StoreFlushError` (default) or returns False — the pending
        records stay buffered either way.  This is the flush the executor's
        error paths use: salvaging completed records is best-effort there,
        and a second failure must not mask the original job error.
        """
        policy = self.retry_policy
        last_error: Optional[BaseException] = None
        for attempt in range(1, policy.max_attempts + 1):
            try:
                self.flush()
                return True
            except (sqlite3.Error, OSError) as exc:
                last_error = exc
                if attempt == policy.max_attempts:
                    break
                self.stats.flush_retries += 1
                _OBS_FLUSH_RETRIES.inc()
                time.sleep(policy.backoff(attempt, token="flush"))
        if raise_on_failure:
            raise StoreFlushError(
                f"run store {self.path} failed to flush {self.pending_count} pending "
                f"record(s) after {policy.max_attempts} attempt(s): {last_error}"
            ) from last_error
        return False

    def close(self) -> None:
        """Flush pending writes (with retry) and release the connection.

        Idempotent.  The final flush is retried under :attr:`retry_policy`
        with seeded backoff.  If every attempt fails with a disk-full-family
        error, the pending rows are spilled to the JSONL side-journal and
        the close still succeeds — the records are replayed into the store
        on its next open.  Only when the spill fails too (or the failure is
        not environmental, e.g. a schema problem) does close raise
        :class:`StoreFlushError`, keep the connection, and leave the records
        pending for a caller-driven retry.
        """
        conn = self._conn
        if conn is None:
            return
        policy = self.retry_policy
        last_error: Optional[BaseException] = None
        for attempt in range(1, policy.max_attempts + 1):
            try:
                self._flush_into(conn)
                last_error = None
                break
            except (sqlite3.Error, OSError) as exc:
                last_error = exc
                if attempt < policy.max_attempts:
                    self.stats.flush_retries += 1
                    _OBS_FLUSH_RETRIES.inc()
                    time.sleep(policy.backoff(attempt, token="close"))
        if last_error is not None:
            if not _spillworthy(last_error):
                raise StoreFlushError(
                    f"run store {self.path} failed to flush {self.pending_count} pending "
                    f"record(s) after {policy.max_attempts} attempt(s): {last_error}"
                ) from last_error
            try:
                self._spill_to_journal()
            except OSError as spill_error:
                raise StoreFlushError(
                    f"run store {self.path} failed to flush {self.pending_count} pending "
                    f"record(s) after {policy.max_attempts} attempt(s) ({last_error}); "
                    f"the journal spill failed too: {spill_error}"
                ) from last_error
        self._conn = None
        conn.close()

    def __enter__(self) -> "RunStore":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - interpreter shutdown is untestable
        try:
            self.close()
        except Exception:
            pass

    def _connection(self) -> sqlite3.Connection:
        if self._conn is None:
            raise RuntimeError(f"run store {self.path} is closed")
        return self._conn

    # ------------------------------------------------------------------
    # Keys
    # ------------------------------------------------------------------
    def fingerprint(self, spec: ScenarioSpec) -> str:
        """The scenario fingerprint, memoised per spec object value."""
        cached = self._fp_cache.get(spec)
        if cached is None:
            cached = self._fp_cache[spec] = scenario_fingerprint(spec)
        return cached

    def key(self, spec: ScenarioSpec, seed: int) -> _Key:
        return (self.fingerprint(spec), int(seed), self.code_fp)

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------
    def _lru_put(self, key: _Key, result: RunResult) -> None:
        lru = self._lru
        lru[key] = result
        lru.move_to_end(key)
        while len(lru) > self.cache_size:
            lru.popitem(last=False)

    def get(self, spec: ScenarioSpec, seed: int) -> Optional[RunResult]:
        """The stored record for ``(spec, seed)`` under the current code, or None."""
        key = self.key(spec, seed)
        cached = self._lru.get(key)
        if cached is not None:
            self._lru.move_to_end(key)
            self.stats.hits += 1
            _OBS_HITS.inc()
            return cached
        pending = self._pending.get(key)
        if pending is not None:
            self.stats.hits += 1
            _OBS_HITS.inc()
            return pending[1]
        row = self._connection().execute(
            "SELECT result_json FROM runs WHERE scenario_fp=? AND seed=? AND code_fp=?", key
        ).fetchone()
        if row is None:
            self.stats.misses += 1
            _OBS_MISSES.inc()
            return None
        result = RunResult.from_dict(json.loads(row[0]))
        self._lru_put(key, result)
        self.stats.hits += 1
        _OBS_HITS.inc()
        return result

    def __contains__(self, spec_seed: Tuple[ScenarioSpec, int]) -> bool:
        spec, seed = spec_seed
        key = self.key(spec, seed)
        if key in self._lru or key in self._pending:
            return True
        row = self._connection().execute(
            "SELECT 1 FROM runs WHERE scenario_fp=? AND seed=? AND code_fp=?", key
        ).fetchone()
        return row is not None

    # ------------------------------------------------------------------
    # Write path (batched)
    # ------------------------------------------------------------------
    def put(self, spec: ScenarioSpec, result: RunResult) -> bool:
        """Buffer one record for persistence; returns False when skipped.

        Wall-clock timeout records are skipped: they are host conditions,
        not functions of the content key, and must be recomputed next time.
        """
        if result.error is not None and result.error.startswith(
            (TIMEOUT_ERROR_PREFIX, POISON_ERROR_PREFIX)
        ):
            # Timeouts and poison quarantines are host conditions, not
            # functions of the content key; persisting them would freeze a
            # transient condition as truth.  (Poison verdicts are recorded
            # separately, via put_poison.)
            return False
        key = self.key(spec, result.seed)
        self._pending[key] = (spec, result)
        self._lru_put(key, result)
        self.stats.stored += 1
        _OBS_STORED.inc()
        if len(self._pending) >= self.batch_size:
            self.flush_retrying(raise_on_failure=False)
        return True

    def put_many(self, pairs: Sequence[Tuple[ScenarioSpec, RunResult]]) -> int:
        return sum(1 for spec, result in pairs if self.put(spec, result))

    def flush(self) -> None:
        """Write every buffered record in one transaction."""
        self._flush_into(self._connection())

    def _pending_rows(self) -> Dict[str, List[Tuple]]:
        """The buffered records as table rows (shared by flush/spill/journal)."""
        rows: Dict[str, List[Tuple]] = {}
        if self._pending:
            rows["runs"] = [
                (
                    key[0],
                    key[1],
                    key[2],
                    spec.name,
                    spec.protocol,
                    spec.adversary,
                    spec.delay,
                    spec.n,
                    spec.t,
                    1 if result.ok else 0,
                    result.canonical_json(),
                )
                for key, (spec, result) in self._pending.items()
            ]
        if self._pending_verdicts:
            rows["verdicts"] = [
                (
                    key[0],
                    key[1],
                    verdict.label,
                    verdict.family,
                    verdict.n,
                    verdict.t,
                    1 if verdict.solvable else 0,
                    verdict.canonical_json(),
                )
                for key, (_task, verdict) in self._pending_verdicts.items()
            ]
        if self._pending_corpus:
            rows["corpus"] = [
                (
                    key[0],
                    key[1],
                    record.scenario,
                    record.seed,
                    1 if record.novel else 0,
                    1 if record.violation else 0,
                    record.score,
                    record.canonical_json(),
                )
                for key, record in self._pending_corpus.items()
            ]
        if self._pending_poison:
            rows["poison"] = [
                (key[0], key[1], key[2], scenario, attempts, reason)
                for key, (scenario, _seed, attempts, reason) in self._pending_poison.items()
            ]
        return rows

    def _clear_pending(self) -> None:
        self._pending.clear()
        self._pending_verdicts.clear()
        self._pending_corpus.clear()
        self._pending_poison.clear()

    def _flush_into(self, conn: sqlite3.Connection) -> None:
        rows_by_table = self._pending_rows()
        if not rows_by_table:
            return
        _OBS_FLUSH_ATTEMPTS.inc()
        if self._fault_state.next_flush_fails():
            # Counted per flush *with pending rows*, so a plan's "fail
            # attempt 2" means the second real write, deterministically.
            raise OSError(28, "injected flush failure (REPRO_FAULT_PLAN)")
        with _OBS_FLUSH_WALL.time():
            for table, rows in rows_by_table.items():
                conn.executemany(_INSERTS[table][0], rows)
            conn.commit()
        self._clear_pending()

    def _spill_to_journal(self) -> int:
        """Append every pending record to the JSONL side-journal.

        The disk-full degradation: when the database itself cannot accept
        the rows, their table-row form is appended to ``<path>.journal.jsonl``
        (a plain-text append needs far less free space and no sqlite
        machinery) and replayed by the next open.  Returns rows spilled.
        """
        rows_by_table = self._pending_rows()
        if not rows_by_table:
            return 0
        spilled = 0
        with open(self.journal_path, "a", encoding="utf-8") as handle:
            for table, rows in rows_by_table.items():
                for row in rows:
                    handle.write(json.dumps({"table": table, "row": list(row)}) + "\n")
                    spilled += 1
            handle.flush()
            os.fsync(handle.fileno())
        self._clear_pending()
        _OBS_JOURNAL_SPILLED.inc(spilled)
        return spilled

    # ------------------------------------------------------------------
    # Poison quarantine (tasks that kept killing their workers)
    # ------------------------------------------------------------------
    def put_poison(self, spec: ScenarioSpec, seed: int, attempts: int, reason: str) -> None:
        """Record that ``(spec, seed)`` was quarantined as a poison task."""
        key = self.key(spec, seed)
        self._pending_poison[key] = (spec.name, int(seed), int(attempts), str(reason))
        self.stats.poison_stored += 1
        _OBS_POISON_STORED.inc()
        if self.pending_count >= self.batch_size:
            self.flush_retrying(raise_on_failure=False)

    def iter_poison(self) -> Iterator[PoisonEntry]:
        """Quarantined tasks under the current code, in (scenario, seed) order."""
        self.flush()
        cursor = self._connection().execute(
            "SELECT scenario, seed, attempts, reason FROM poison WHERE code_fp=? "
            "ORDER BY scenario, seed",
            (self.code_fp,),
        )
        for scenario, seed, attempts, reason in cursor:
            yield PoisonEntry(scenario=scenario, seed=seed, attempts=attempts, reason=reason)

    def count_poison(self) -> int:
        self.flush()
        return self._connection().execute(
            "SELECT COUNT(*) FROM poison WHERE code_fp=?", (self.code_fp,)
        ).fetchone()[0]

    # ------------------------------------------------------------------
    # Telemetry snapshots (descriptive only — never read to decide anything)
    # ------------------------------------------------------------------
    def put_telemetry(self, label: str, snapshot: Dict[str, Any]) -> Optional[int]:
        """Persist one telemetry snapshot; returns its id, or None on failure.

        Written immediately (one row, committed) rather than through the
        batched flush: telemetry must never compete with run records for
        flush durability, and a failure to record an observation is itself
        only an observation — it is swallowed, never raised.
        """
        try:
            conn = self._connection()
            cursor = conn.execute(
                "INSERT INTO telemetry (label, created, snapshot_json) VALUES (?, ?, ?)",
                (str(label), time.time(), json.dumps(snapshot, sort_keys=True)),
            )
            conn.commit()
            return cursor.lastrowid
        except (sqlite3.Error, OSError, RuntimeError, TypeError, ValueError):
            return None

    def get_telemetry(
        self, snapshot_id: Optional[int] = None, label: Optional[str] = None
    ) -> Optional[TelemetrySnapshot]:
        """The snapshot with ``snapshot_id``, or the latest (matching ``label``)."""
        query = "SELECT snapshot_id, label, created, snapshot_json FROM telemetry"
        params: Tuple[Any, ...] = ()
        if snapshot_id is not None:
            query += " WHERE snapshot_id=?"
            params = (snapshot_id,)
        elif label is not None:
            query += " WHERE label=?"
            params = (label,)
        query += " ORDER BY snapshot_id DESC LIMIT 1"
        row = self._connection().execute(query, params).fetchone()
        if row is None:
            return None
        try:
            snapshot = json.loads(row[3])
        except json.JSONDecodeError:
            return None
        return TelemetrySnapshot(snapshot_id=row[0], label=row[1], created=row[2], snapshot=snapshot)

    def iter_telemetry(self, label: Optional[str] = None) -> Iterator[TelemetrySnapshot]:
        """Every stored snapshot (optionally for one label), oldest first."""
        query = "SELECT snapshot_id, label, created, snapshot_json FROM telemetry"
        params: Tuple[Any, ...] = ()
        if label is not None:
            query += " WHERE label=?"
            params = (label,)
        query += " ORDER BY snapshot_id"
        for row in self._connection().execute(query, params):
            try:
                snapshot = json.loads(row[3])
            except json.JSONDecodeError:
                continue
            yield TelemetrySnapshot(
                snapshot_id=row[0], label=row[1], created=row[2], snapshot=snapshot
            )

    def count_telemetry(self) -> int:
        return self._connection().execute("SELECT COUNT(*) FROM telemetry").fetchone()[0]

    # ------------------------------------------------------------------
    # Analysis verdicts (the ``analyze`` pipeline's cache)
    # ------------------------------------------------------------------
    def verdict_key(self, task: Any) -> Tuple[str, str]:
        """The ``(task fingerprint, analysis code fingerprint)`` content key."""
        return (task.fingerprint(), self.analysis_code_fp)

    def get_verdict(self, task: Any) -> Optional[Any]:
        """The cached verdict for a property task under the current analysis code."""
        from ..analysis.pipeline import AnalysisVerdict

        key = self.verdict_key(task)
        cached = self._verdict_cache.get(key)
        if cached is not None:
            self.stats.verdict_hits += 1
            return cached
        pending = self._pending_verdicts.get(key)
        if pending is not None:
            self.stats.verdict_hits += 1
            return pending[1]
        row = self._connection().execute(
            "SELECT verdict_json FROM verdicts WHERE task_fp=? AND code_fp=?", key
        ).fetchone()
        if row is None:
            self.stats.verdict_misses += 1
            return None
        verdict = AnalysisVerdict.from_dict(json.loads(row[0]))
        self._verdict_cache[key] = verdict
        self.stats.verdict_hits += 1
        return verdict

    def put_verdict(self, task: Any, verdict: Any) -> None:
        """Buffer one verdict for persistence (flushed with the run batch)."""
        key = self.verdict_key(task)
        self._pending_verdicts[key] = (task, verdict)
        self._verdict_cache[key] = verdict
        self.stats.verdicts_stored += 1
        if len(self._pending) + len(self._pending_verdicts) >= self.batch_size:
            self.flush_retrying(raise_on_failure=False)

    def iter_verdicts(self, any_code: bool = False) -> Iterator[Any]:
        """Stored verdicts in deterministic label order.

        By default only verdicts under the *current* analysis code
        fingerprint are returned; ``any_code=True`` includes stale ones, one
        per label (current-code record preferred), mirroring
        :meth:`iter_records`.
        """
        from ..analysis.pipeline import AnalysisVerdict

        self.flush()
        if not any_code:
            cursor = self._connection().execute(
                "SELECT verdict_json FROM verdicts WHERE code_fp=? ORDER BY label, task_fp",
                (self.analysis_code_fp,),
            )
            for (verdict_json,) in cursor:
                yield AnalysisVerdict.from_dict(json.loads(verdict_json))
            return
        cursor = self._connection().execute(
            "SELECT label, code_fp, verdict_json FROM verdicts ORDER BY label, task_fp, code_fp"
        )
        chosen: "OrderedDict[str, str]" = OrderedDict()
        current_code: Dict[str, bool] = {}
        for label, code_fp, verdict_json in cursor:
            if label not in chosen or (code_fp == self.analysis_code_fp and not current_code[label]):
                chosen[label] = verdict_json
                current_code[label] = code_fp == self.analysis_code_fp
        for verdict_json in chosen.values():
            yield AnalysisVerdict.from_dict(json.loads(verdict_json))

    def count_verdicts(self, any_code: bool = False) -> int:
        self.flush()
        if any_code:
            return self._connection().execute("SELECT COUNT(*) FROM verdicts").fetchone()[0]
        return self._connection().execute(
            "SELECT COUNT(*) FROM verdicts WHERE code_fp=?", (self.analysis_code_fp,)
        ).fetchone()[0]

    # ------------------------------------------------------------------
    # Fuzzer corpus (the ``fuzz`` campaign's persisted seed pool)
    # ------------------------------------------------------------------
    def get_corpus(self, entry_fp: str) -> Optional[CorpusRecord]:
        """The corpus entry for a content fingerprint under the current code."""
        key = (entry_fp, self.code_fp)
        cached = self._corpus_cache.get(key)
        if cached is not None:
            self.stats.corpus_hits += 1
            return cached
        pending = self._pending_corpus.get(key)
        if pending is not None:
            self.stats.corpus_hits += 1
            return pending
        row = self._connection().execute(
            "SELECT entry_json FROM corpus WHERE entry_fp=? AND code_fp=?", key
        ).fetchone()
        if row is None:
            self.stats.corpus_misses += 1
            return None
        record = CorpusRecord.from_dict(json.loads(row[0]))
        self._corpus_cache[key] = record
        self.stats.corpus_hits += 1
        return record

    def put_corpus(self, record: CorpusRecord) -> None:
        """Buffer one corpus entry for persistence (flushed with the run batch)."""
        key = (record.entry_fp, self.code_fp)
        self._pending_corpus[key] = record
        self._corpus_cache[key] = record
        self.stats.corpus_stored += 1
        if self.pending_count >= self.batch_size:
            self.flush_retrying(raise_on_failure=False)

    def iter_corpus(self, scenario: Optional[str] = None) -> Iterator[CorpusRecord]:
        """Stored corpus entries under the current code, in ``entry_fp`` order."""
        self.flush()
        if scenario is None:
            cursor = self._connection().execute(
                "SELECT entry_json FROM corpus WHERE code_fp=? ORDER BY entry_fp",
                (self.code_fp,),
            )
        else:
            cursor = self._connection().execute(
                "SELECT entry_json FROM corpus WHERE code_fp=? AND scenario=? ORDER BY entry_fp",
                (self.code_fp, scenario),
            )
        for (entry_json,) in cursor:
            yield CorpusRecord.from_dict(json.loads(entry_json))

    def count_corpus(self) -> int:
        self.flush()
        return self._connection().execute(
            "SELECT COUNT(*) FROM corpus WHERE code_fp=?", (self.code_fp,)
        ).fetchone()[0]

    # ------------------------------------------------------------------
    # Bulk reads (report / compare / maintenance)
    # ------------------------------------------------------------------
    def _where(
        self,
        scenarios: Optional[Sequence[str]],
        protocols: Optional[Sequence[str]],
        adversaries: Optional[Sequence[str]],
        delays: Optional[Sequence[str]],
        any_code: bool,
    ) -> Tuple[str, List[Any]]:
        clauses: List[str] = []
        params: List[Any] = []
        if not any_code:
            clauses.append("code_fp = ?")
            params.append(self.code_fp)
        for column, values in (
            ("scenario", scenarios),
            ("protocol", protocols),
            ("adversary", adversaries),
            ("delay", delays),
        ):
            if values:
                placeholders = ", ".join("?" for _ in values)
                clauses.append(f"{column} IN ({placeholders})")
                params.extend(values)
        where = f" WHERE {' AND '.join(clauses)}" if clauses else ""
        return where, params

    def iter_records(
        self,
        scenarios: Optional[Sequence[str]] = None,
        protocols: Optional[Sequence[str]] = None,
        adversaries: Optional[Sequence[str]] = None,
        delays: Optional[Sequence[str]] = None,
        any_code: bool = False,
    ) -> Iterator[RunResult]:
        """Stored records of a slice, in deterministic (scenario, seed) order.

        By default only records under the *current* code fingerprint are
        returned — stale entries from before a semantics change stay
        invisible.  With ``any_code=True`` stale entries are included, but
        each ``(scenario name, seed)`` still yields exactly **one** record —
        the current-code one when it exists, else the record under the first
        ``(scenario_fp, code_fp)`` in lexicographic order — so an aggregate
        never double-counts a pair or blends code/param versions of the same
        named scenario.
        """
        self.flush()
        where, params = self._where(scenarios, protocols, adversaries, delays, any_code)
        cursor = self._connection().execute(
            f"SELECT scenario, seed, code_fp, result_json FROM runs{where} "
            "ORDER BY scenario, seed, scenario_fp, code_fp",
            params,
        )
        if not any_code:  # the primary key already guarantees one row per pair
            for _scenario, _seed, _code_fp, result_json in cursor:
                yield RunResult.from_dict(json.loads(result_json))
            return
        chosen: "OrderedDict[Tuple[str, int], str]" = OrderedDict()
        current_code: Dict[Tuple[str, int], bool] = {}
        for scenario, seed, code_fp, result_json in cursor:
            key = (scenario, seed)
            if key not in chosen or (code_fp == self.code_fp and not current_code[key]):
                chosen[key] = result_json
                current_code[key] = code_fp == self.code_fp
        for result_json in chosen.values():
            yield RunResult.from_dict(json.loads(result_json))

    def count(self, any_code: bool = False) -> int:
        self.flush()
        where, params = self._where(None, None, None, None, any_code)
        return self._connection().execute(f"SELECT COUNT(*) FROM runs{where}", params).fetchone()[0]

    def scenario_names(self, any_code: bool = False) -> List[str]:
        self.flush()
        where, params = self._where(None, None, None, None, any_code)
        cursor = self._connection().execute(
            f"SELECT DISTINCT scenario FROM runs{where} ORDER BY scenario", params
        )
        return [name for (name,) in cursor]

    def code_fingerprints(self) -> List[Tuple[str, int]]:
        """Every code fingerprint in the store with its record count."""
        self.flush()
        cursor = self._connection().execute(
            "SELECT code_fp, COUNT(*) FROM runs GROUP BY code_fp ORDER BY code_fp"
        )
        return [(code_fp, count) for code_fp, count in cursor]

    def vacuum_stale(self) -> int:
        """Delete records from other code fingerprints; returns rows removed.

        Covers every table, each against its own fingerprint: runs and the
        fuzz corpus against the run-semantics code, verdicts against the
        analysis code.
        """
        self.flush()
        conn = self._connection()
        removed = conn.execute("DELETE FROM runs WHERE code_fp != ?", (self.code_fp,)).rowcount
        removed += conn.execute(
            "DELETE FROM verdicts WHERE code_fp != ?", (self.analysis_code_fp,)
        ).rowcount
        removed += conn.execute("DELETE FROM corpus WHERE code_fp != ?", (self.code_fp,)).rowcount
        removed += conn.execute("DELETE FROM poison WHERE code_fp != ?", (self.code_fp,)).rowcount
        conn.commit()
        return removed


def is_run_store(path: Union[str, pathlib.Path]) -> bool:
    """True when the file looks like an SQLite database (vs a JSON baseline)."""
    try:
        with open(path, "rb") as handle:
            return handle.read(16) == b"SQLite format 3\x00"
    except OSError:
        return False


def _inject_corruption(path: Union[str, pathlib.Path]) -> None:
    """Scribble over a store file's interior (the corrupt-on-reopen fault).

    The SQLite header magic is left intact on purpose: recovery only
    triggers for files that *are* stores (:func:`is_run_store`), so the
    injected damage must look like a corrupted store, not like a file that
    was never SQLite.  No-op when the file is missing or too small to
    damage meaningfully.
    """
    try:
        size = os.path.getsize(path)
    except OSError:
        return
    if size <= 512:
        return
    # A blind mid-file scribble can land on a free page, which quick_check
    # happily ignores.  Target a table root page instead: it is always in
    # use, so the damage is guaranteed to be detected.  The victim is the
    # highest-numbered root (the most recently created table), which keeps
    # the older tables' rows salvageable.
    page_size = 4096
    root_page = 0
    try:
        probe = sqlite3.connect(f"file:{path}?mode=ro", uri=True)
        try:
            page_size = probe.execute("PRAGMA page_size").fetchone()[0]
            row = probe.execute(
                "SELECT max(rootpage) FROM sqlite_master WHERE type = 'table' AND rootpage > 1"
            ).fetchone()
            root_page = row[0] or 0
        finally:
            probe.close()
    except sqlite3.Error:
        pass
    offsets = [max(512, size // 2)]
    if root_page:
        offsets.append((root_page - 1) * page_size)
    with open(path, "r+b") as handle:
        for offset in offsets:
            length = min(256, size - offset)
            if length <= 0 or offset < 512:
                continue
            handle.seek(offset)
            handle.write(b"\xff" * length)
