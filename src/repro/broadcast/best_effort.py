"""Best-effort broadcast (the paper's ``beb`` building block).

Best-effort broadcast simply sends a message to every process over the
authenticated point-to-point links.  It gives no guarantees when the sender
is faulty; when the sender is correct, reliability of the links ensures that
every correct process eventually delivers the message.  Both vector-consensus
algorithms of the paper use it for their ``proposal`` and ``confirm``
messages.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..sim.process import Process, ProtocolModule

DeliverCallback = Callable[[int, Any], None]


class BestEffortBroadcast(ProtocolModule):
    """Best-effort broadcast module.

    Args:
        process: Owning process.
        name: Module name (unique among siblings).
        parent: Parent module, if any.
        on_deliver: Callback invoked as ``on_deliver(sender, message)`` for
            every received broadcast message.
    """

    def __init__(
        self,
        process: Process,
        name: str = "beb",
        parent: Optional[ProtocolModule] = None,
        on_deliver: Optional[DeliverCallback] = None,
    ):
        super().__init__(process, name, parent)
        self._on_deliver = on_deliver

    def set_deliver_callback(self, on_deliver: DeliverCallback) -> None:
        """Attach (or replace) the delivery callback."""
        self._on_deliver = on_deliver

    def broadcast_message(self, message: Any) -> None:
        """Broadcast ``message`` to all ``n`` processes (including ourselves)."""
        self.broadcast(message)

    def send_message(self, receiver: int, message: Any) -> None:
        """Point-to-point variant, for protocols that reply to a single process."""
        self.send(receiver, message)

    def on_message(self, sender: int, payload: Any) -> None:
        if self._on_deliver is not None:
            self._on_deliver(sender, payload)
