"""Broadcast abstractions: best-effort, Byzantine-reliable and slow broadcast."""

from .best_effort import BestEffortBroadcast
from .reliable import ByzantineReliableBroadcast
from .slow import SlowBroadcast

__all__ = ["BestEffortBroadcast", "ByzantineReliableBroadcast", "SlowBroadcast"]
