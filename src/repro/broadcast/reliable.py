"""Byzantine reliable broadcast (Bracha) — the ``brb`` building block.

The non-authenticated vector consensus (Algorithm 3 of the paper) relies on
Bracha's signature-free Byzantine reliable broadcast, which guarantees:

* *Validity*: if a correct process broadcasts ``m``, it eventually delivers ``m``.
* *Consistency*: no two correct processes deliver different messages from the
  same origin.
* *Integrity*: at most one message is delivered per origin, and if the origin
  is correct it is the message that origin broadcast.
* *Totality*: if a correct process delivers a message from an origin, every
  correct process eventually delivers a message from that origin.

This implementation multiplexes every origin over one module: each process
may broadcast one message, and deliveries are reported as
``on_deliver(origin, message)``.  The echo/ready thresholds are the standard
ones for ``n > 3t``: ``ceil((n + t + 1) / 2)`` echoes to send ``ready``,
``t + 1`` readies to amplify, ``2t + 1`` readies to deliver.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Set, Tuple

from ..crypto.hashing import digest
from ..sim.process import Process, ProtocolModule

DeliverCallback = Callable[[int, Any], None]

_SEND = "send"
_ECHO = "echo"
_READY = "ready"


class ByzantineReliableBroadcast(ProtocolModule):
    """Bracha reliable broadcast for every origin in the system."""

    def __init__(
        self,
        process: Process,
        name: str = "brb",
        parent: Optional[ProtocolModule] = None,
        on_deliver: Optional[DeliverCallback] = None,
    ):
        super().__init__(process, name, parent)
        self._on_deliver = on_deliver
        n, t = self.system.n, self.system.t
        self.echo_threshold = (n + t) // 2 + 1
        self.ready_amplification_threshold = t + 1
        self.delivery_threshold = 2 * t + 1
        # Per-origin state, keyed by origin process index.
        self._echoed: Set[Tuple[int, str]] = set()
        self._readied: Set[Tuple[int, str]] = set()
        self._delivered: Set[int] = set()
        self._echo_senders: Dict[Tuple[int, str], Set[int]] = {}
        self._ready_senders: Dict[Tuple[int, str], Set[int]] = {}
        self._payloads: Dict[Tuple[int, str], Any] = {}

    def set_deliver_callback(self, on_deliver: DeliverCallback) -> None:
        self._on_deliver = on_deliver

    # ------------------------------------------------------------------
    def broadcast_message(self, message: Any) -> None:
        """Reliably broadcast ``message`` with this process as the origin."""
        self.broadcast((_SEND, message))

    # ------------------------------------------------------------------
    def on_message(self, sender: int, payload: Any) -> None:
        if not isinstance(payload, tuple) or not payload:
            return
        kind = payload[0]
        if kind == _SEND and len(payload) == 2:
            self._handle_send(sender, payload[1])
        elif kind == _ECHO and len(payload) == 3:
            self._handle_echo(sender, payload[1], payload[2])
        elif kind == _READY and len(payload) == 3:
            self._handle_ready(sender, payload[1], payload[2])

    def _handle_send(self, origin: int, message: Any) -> None:
        key = (origin, digest(message))
        if (origin, digest(message)) in self._echoed:
            return
        if any(existing[0] == origin for existing in self._echoed):
            # The origin equivocated; echo only its first message.
            return
        self._echoed.add(key)
        self._payloads[key] = message
        self.broadcast((_ECHO, origin, message))

    def _handle_echo(self, sender: int, origin: int, message: Any) -> None:
        key = (origin, digest(message))
        self._payloads.setdefault(key, message)
        senders = self._echo_senders.setdefault(key, set())
        senders.add(sender)
        if len(senders) >= self.echo_threshold:
            self._send_ready(key, message)

    def _handle_ready(self, sender: int, origin: int, message: Any) -> None:
        key = (origin, digest(message))
        self._payloads.setdefault(key, message)
        senders = self._ready_senders.setdefault(key, set())
        senders.add(sender)
        if len(senders) >= self.ready_amplification_threshold:
            self._send_ready(key, message)
        if len(senders) >= self.delivery_threshold:
            self._deliver(key)

    def _send_ready(self, key: Tuple[int, str], message: Any) -> None:
        if key in self._readied:
            return
        self._readied.add(key)
        self.broadcast((_READY, key[0], message))

    def _deliver(self, key: Tuple[int, str]) -> None:
        origin = key[0]
        if origin in self._delivered:
            return
        self._delivered.add(origin)
        if self._on_deliver is not None:
            self._on_deliver(origin, self._payloads[key])
