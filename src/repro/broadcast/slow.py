"""Slow broadcast (Algorithm 4 of the paper).

Slow broadcast staggers the dissemination of large payloads: process ``P_i``
sends its payload to one process at a time, waiting ``delta * n * i`` time
between consecutive sends (0-based ``i``; the paper's ``P_1`` waits nothing).
If the system is synchronous, the waiting time of a later process is enough
for every earlier process to finish its whole broadcast — which is exactly
why only one correct process ends up paying the full linear-size broadcast
after GST in the vector-dissemination protocol (Algorithm 5), keeping the
communication complexity quadratic.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..sim.process import Process, ProtocolModule

DeliverCallback = Callable[[Any, int], None]


class SlowBroadcast(ProtocolModule):
    """Algorithm 4: staggered one-by-one broadcast."""

    def __init__(
        self,
        process: Process,
        name: str = "slow",
        parent: Optional[ProtocolModule] = None,
        on_deliver: Optional[DeliverCallback] = None,
    ):
        super().__init__(process, name, parent)
        self._on_deliver = on_deliver
        self._payload: Any = None
        self._next_receiver = 0
        self._stopped = False
        delta = process.simulation.delay_model.delta
        self.wait_between_sends = delta * self.n * self.pid

    def set_deliver_callback(self, on_deliver: DeliverCallback) -> None:
        self._on_deliver = on_deliver

    # ------------------------------------------------------------------
    def broadcast_message(self, payload: Any) -> None:
        """Start the slow broadcast of ``payload``."""
        if self._payload is not None:
            raise RuntimeError("slow broadcast supports a single payload per instance")
        self._payload = payload
        self._send_next()

    def stop(self) -> None:
        """Stop participating (called when vector dissemination completes)."""
        self._stopped = True

    def _send_next(self) -> None:
        if self._stopped or self._payload is None or self._next_receiver >= self.n:
            return
        self.send(self._next_receiver, ("slow_broadcast", self._payload))
        self._next_receiver += 1
        if self._next_receiver < self.n:
            if self.wait_between_sends <= 0:
                self._send_next()
            else:
                self.set_timer(self.wait_between_sends, "next_send")

    def on_timer(self, tag: Any) -> None:
        if tag == "next_send":
            self._send_next()

    def on_message(self, sender: int, payload: Any) -> None:
        if self._stopped or not isinstance(payload, tuple) or len(payload) != 2:
            return
        if payload[0] != "slow_broadcast":
            return
        if self._on_deliver is not None:
            self._on_deliver(payload[1], sender)
