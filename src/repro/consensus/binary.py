"""Signature-free binary Byzantine consensus (the paper's "binary DBFT" building block).

Algorithm 3 (non-authenticated vector consensus) uses one binary Byzantine
consensus instance per process, citing binary DBFT (Crain et al., 2018).
This module provides a signature-free binary consensus in the
Mostefaoui-Raynal style that DBFT builds on:

* a *BV-broadcast* phase filters out values proposed only by Byzantine
  processes: a value enters ``bin_values`` only after ``2t + 1`` processes
  echoed it, and a correct process echoes a value only after ``t + 1``
  processes sent it, so every value in ``bin_values`` was proposed by at
  least one correct process (non-intrusion);
* an *AUX* phase collects ``n - t`` auxiliary announcements whose values all
  lie inside ``bin_values``;
* if the collected values are a single ``{v}`` the estimate becomes ``v`` and
  the process decides when ``v`` equals the round's fallback value; otherwise
  the estimate adopts the fallback value.

DBFT replaces the randomised common coin with a weak rotating coordinator.
Here the fallback value is the deterministic, common-to-all ``round mod 2``
(the derandomisation also used in DBFT's deterministic instantiation), which
preserves Agreement and binary Strong Validity unconditionally, and
guarantees Termination within two rounds of every correct process holding
the same estimate — which the shipped adversaries (silent, crash, message
dropping, equivocating proposers) cannot prevent.  A fully adaptive
scheduler could delay (never violate) termination; see DESIGN.md.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Set

from ..sim import instrument
from ..sim.process import Process, ProtocolModule
from .interfaces import ConsensusModule, DecisionCallback

_BVAL = "bval"
_AUX = "aux"
_ROUNDS_AFTER_DECISION = 2


class BinaryConsensus(ConsensusModule):
    """One instance of signature-free binary Byzantine consensus."""

    def __init__(
        self,
        process: Process,
        name: str = "binary",
        parent: Optional[ProtocolModule] = None,
        on_decide: Optional[DecisionCallback] = None,
    ):
        super().__init__(process, name, parent, on_decide)
        self.round = 0
        self.estimate: Optional[int] = None
        self._halt_round: Optional[int] = None
        # Per-round message state.
        self._bval_senders: Dict[int, Dict[int, Set[int]]] = {}
        self._bval_sent: Dict[int, Set[int]] = {}
        self._bin_values: Dict[int, Set[int]] = {}
        self._aux_sent: Set[int] = set()
        self._aux_received: Dict[int, Dict[int, int]] = {}
        self._round_done: Set[int] = set()

    # ------------------------------------------------------------------
    def _handle_proposal(self, value: Any) -> None:
        if value not in (0, 1):
            raise ValueError(f"binary consensus proposals must be 0 or 1, got {value!r}")
        self.estimate = int(value)
        self._start_round(1)

    def fallback_value(self, round_number: int) -> int:
        """The common deterministic fallback value of a round (plays the coin's role)."""
        return round_number % 2

    # ------------------------------------------------------------------
    # Round machinery
    # ------------------------------------------------------------------
    def _start_round(self, round_number: int) -> None:
        if self._halted(round_number):
            return
        self.round = round_number
        self._broadcast_bval(round_number, self.estimate)
        self._progress(round_number)

    def _halted(self, round_number: int) -> bool:
        return self._halt_round is not None and round_number > self._halt_round

    def _broadcast_bval(self, round_number: int, value: int) -> None:
        sent = self._bval_sent.setdefault(round_number, set())
        if value in sent:
            return
        sent.add(value)
        self.broadcast((_BVAL, round_number, value))

    def on_message(self, sender: int, payload: Any) -> None:
        if not isinstance(payload, tuple) or len(payload) != 3:
            return
        kind, round_number, value = payload
        if not isinstance(round_number, int) or round_number < 1 or value not in (0, 1):
            return
        if self._halted(round_number):
            return
        if kind == _BVAL:
            self._on_bval(sender, round_number, value)
        elif kind == _AUX:
            self._on_aux(sender, round_number, value)

    def _on_bval(self, sender: int, round_number: int, value: int) -> None:
        senders = self._bval_senders.setdefault(round_number, {}).setdefault(value, set())
        senders.add(sender)
        if instrument.SINK is not None:
            # Coverage: how close each BV threshold is to tipping for this value.
            instrument.SINK.add(
                (
                    "binary.bval",
                    instrument.bucket(round_number),
                    value,
                    instrument.margin(len(senders), 2 * self.system.t + 1),
                )
            )
        if len(senders) >= self.system.t + 1:
            # Echo: at least one correct process sent this value.
            self._broadcast_bval(round_number, value)
        if len(senders) >= 2 * self.system.t + 1:
            self._bin_values.setdefault(round_number, set()).add(value)
            self._progress(round_number)

    def _on_aux(self, sender: int, round_number: int, value: int) -> None:
        self._aux_received.setdefault(round_number, {})[sender] = value
        self._progress(round_number)

    def _progress(self, round_number: int) -> None:
        """Drive the round forward whenever its preconditions may have become true."""
        if self.estimate is None or round_number != self.round or round_number in self._round_done:
            return
        bin_values = self._bin_values.get(round_number, set())
        if not bin_values:
            return
        if round_number not in self._aux_sent:
            self._aux_sent.add(round_number)
            self.broadcast((_AUX, round_number, min(bin_values)))
        supported = {
            sender: value
            for sender, value in self._aux_received.get(round_number, {}).items()
            if value in bin_values
        }
        if instrument.SINK is not None:
            instrument.SINK.add(
                (
                    "binary.aux",
                    instrument.bucket(round_number),
                    instrument.margin(len(supported), self.system.quorum),
                )
            )
        if len(supported) < self.system.quorum:
            return
        values = set(supported.values())
        self._round_done.add(round_number)
        fallback = self.fallback_value(round_number)
        if len(values) == 1:
            (only_value,) = values
            self.estimate = only_value
            if only_value == fallback:
                self._decide_and_schedule_halt(only_value, round_number)
        else:
            self.estimate = fallback
        if instrument.SINK is not None:
            instrument.SINK.add(
                ("binary.round", instrument.bucket(round_number), len(values), self.estimate)
            )
        self._start_round(round_number + 1)

    def _decide_and_schedule_halt(self, value: int, round_number: int) -> None:
        if self._halt_round is None:
            # Keep participating for two more rounds so that every other correct
            # process can reach its own decision, then go quiet.
            self._halt_round = round_number + _ROUNDS_AFTER_DECISION
        self._decide(value)
