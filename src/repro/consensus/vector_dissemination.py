"""Vector dissemination (Algorithm 5 of the paper).

Every correct process disseminates a (serialised) vector of ``n - t`` values
and must eventually *acquire* a hash-signature pair ``(H, tsig)`` such that
(1) the threshold signature is valid for ``H`` (integrity) and (2) at least
``t + 1`` correct processes have cached a vector hashing to ``H``
(redundancy — which is exactly what ADD later needs to reconstruct the
vector everywhere).

The protocol is Algorithm 5 verbatim: slow-broadcast the vector, acknowledge
received vectors with partial signatures of their hash, combine ``n - t``
acknowledgements into a threshold signature, broadcast it, and rebroadcast
the first valid threshold signature seen before acquiring it and going
quiet.  Slow broadcast keeps the post-GST communication quadratic.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Set, Tuple

from ..broadcast.best_effort import BestEffortBroadcast
from ..broadcast.slow import SlowBroadcast
from ..crypto.hashing import digest
from ..crypto.threshold import PartialSignature, ThresholdScheme, ThresholdSignature
from ..sim.process import Process, ProtocolModule

AcquireCallback = Callable[[str, ThresholdSignature], None]
CacheValidator = Callable[[bytes], bool]

_STORED = "stored"
_CONFIRM = "confirm"


class VectorDissemination(ProtocolModule):
    """Algorithm 5: disseminate a blob, acquire a hash/threshold-signature pair."""

    def __init__(
        self,
        process: Process,
        name: str = "disseminator",
        parent: Optional[ProtocolModule] = None,
        on_acquire: Optional[AcquireCallback] = None,
        cache_validator: Optional[CacheValidator] = None,
    ):
        super().__init__(process, name, parent)
        self._on_acquire = on_acquire
        self._cache_validator = cache_validator
        self.scheme = ThresholdScheme(self.authority, threshold=self.system.quorum)
        self.slow = SlowBroadcast(process, name="slow", parent=self, on_deliver=self._on_slow_deliver)
        self.beb = BestEffortBroadcast(process, name="beb", parent=self, on_deliver=self._on_beb_deliver)
        self.own_hash: Optional[str] = None
        self.cached_vectors: Dict[str, bytes] = {}
        self._stored_from: Set[int] = set()
        self._partials: Dict[int, PartialSignature] = {}
        self._acknowledged_senders: Set[int] = set()
        self._acquired: Optional[Tuple[str, ThresholdSignature]] = None
        self._confirmed = False

    # ------------------------------------------------------------------
    def disseminate(self, blob: bytes) -> None:
        """Disseminate this process's serialised vector (line 8 of Algorithm 5)."""
        if self.own_hash is not None:
            raise RuntimeError("vector dissemination supports a single blob per instance")
        self.own_hash = digest(blob)
        self.cached_vectors[self.own_hash] = blob
        self.slow.broadcast_message(blob)

    @property
    def acquired(self) -> Optional[Tuple[str, ThresholdSignature]]:
        return self._acquired

    # ------------------------------------------------------------------
    def _on_slow_deliver(self, blob: Any, sender: int) -> None:
        if self._acquired is not None or not isinstance(blob, (bytes, bytearray)):
            return
        if sender in self._acknowledged_senders:
            return
        blob = bytes(blob)
        if self._cache_validator is not None and not self._cache_validator(blob):
            return
        self._acknowledged_senders.add(sender)
        blob_hash = digest(blob)
        self.cached_vectors[blob_hash] = blob
        share = self.scheme.partial_sign(self.pid, ("vector", blob_hash))
        self.send(sender, (_STORED, blob_hash, share))

    def on_message(self, sender: int, payload: Any) -> None:
        if self._acquired is not None or not isinstance(payload, tuple) or len(payload) != 3:
            return
        kind, blob_hash, credential = payload
        if kind == _STORED:
            self._on_stored(sender, blob_hash, credential)

    def _on_stored(self, sender: int, blob_hash: str, share: Any) -> None:
        if blob_hash != self.own_hash or sender in self._stored_from:
            return
        if not isinstance(share, PartialSignature) or share.signer != sender:
            return
        if not self.scheme.verify_partial(share, ("vector", blob_hash)):
            return
        self._stored_from.add(sender)
        self._partials[sender] = share
        if len(self._partials) >= self.system.quorum and not self._confirmed:
            self._confirmed = True
            combined = self.scheme.combine(self._partials.values(), ("vector", blob_hash))
            self.beb.broadcast_message((_CONFIRM, blob_hash, combined))

    def _on_beb_deliver(self, sender: int, payload: Any) -> None:
        if self._acquired is not None or not isinstance(payload, tuple) or len(payload) != 3:
            return
        kind, blob_hash, signature = payload
        if kind != _CONFIRM or not isinstance(signature, ThresholdSignature):
            return
        if not self.scheme.verify(signature, ("vector", blob_hash)):
            return
        # Rebroadcast once, acquire, and stop participating (lines 23-25).
        self.beb.broadcast_message((_CONFIRM, blob_hash, signature))
        self._acquired = (blob_hash, signature)
        self.slow.stop()
        if self._on_acquire is not None:
            self._on_acquire(blob_hash, signature)
