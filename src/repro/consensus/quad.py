"""Quad: a partially synchronous, leader-based Byzantine consensus with O(n^2) messages.

The paper uses Quad (Civit et al., DISC 2022) as a closed box with the
following contract:

* processes propose and decide *value-proof* pairs ``(v, Sigma)``;
* there is an external predicate ``verify(v, Sigma)``; correct processes
  propose only pairs with ``verify(v, Sigma) = true`` and every decided pair
  satisfies the predicate;
* Termination and Agreement hold under partial synchrony with ``n > 3t``;
* the message complexity after GST is ``O(n^2)``.

This module reimplements that contract faithfully in spirit: a view-based,
leader-driven protocol with two voting phases (prepare / commit), threshold
signatures for the quorum certificates, a locking rule for safety across
views, and timer-driven view advancement.  Each view costs ``O(n)`` messages
(the leader communicates with everyone, votes go only to the leader), a
decision is reached within ``O(t)`` views after GST under a correct leader,
and every correct process relays the final decision certificate once, so the
total message complexity is ``O(n^2)`` — matching the contract the paper
relies on.  The original Quad achieves view synchronization with RareSync;
here view timers are synchronized by the simulator's drift-free clocks after
GST, which preserves both the complexity accounting and the behaviour the
upper-bound experiments measure (see DESIGN.md, substitutions table).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

from ..crypto.hashing import digest
from ..crypto.threshold import PartialSignature, ThresholdScheme, ThresholdSignature
from ..sim import instrument
from ..sim.process import Process, ProtocolModule
from .interfaces import ConsensusModule, DecisionCallback

VerifyFunction = Callable[[Any, Any], bool]

_NEW_VIEW = "new_view"
_PROPOSE = "propose"
_PREPARE_VOTE = "prepare_vote"
_PRECOMMIT = "precommit"
_COMMIT_VOTE = "commit_vote"
_DECIDE = "decide"


@dataclass(frozen=True)
class PrepareCertificate:
    """A quorum certificate proving that ``n - t`` processes prepared a value in a view."""

    view: int
    value_digest: str
    signature: ThresholdSignature

    def stable_fields(self) -> tuple:
        return (self.view, self.value_digest, self.signature.stable_fields())

    @property
    def words(self) -> int:
        return 2


class Quad(ConsensusModule):
    """Leader-based value-proof consensus (the paper's Quad contract).

    Args:
        process: Owning process.
        verify: The external validity predicate over value-proof pairs.
        name: Module name.
        parent: Parent module.
        on_decide: Callback receiving the decided ``(value, proof)`` pair.
        view_duration: View timer length, in multiples of the known ``delta``.
    """

    def __init__(
        self,
        process: Process,
        verify: VerifyFunction,
        name: str = "quad",
        parent: Optional[ProtocolModule] = None,
        on_decide: Optional[DecisionCallback] = None,
        view_duration: float = 8.0,
    ):
        super().__init__(process, name, parent, on_decide)
        self.verify = verify
        self.view_duration = view_duration * process.simulation.delay_model.delta
        self.scheme = ThresholdScheme(self.authority, threshold=self.system.quorum)

        self.view = 0
        self.locked: Optional[Tuple[Any, Any, int]] = None  # (value, proof, view)
        self.highest_prepare: Optional[Tuple[PrepareCertificate, Any, Any]] = None  # (cert, value, proof)
        self._relayed_decision = False

        # Leader-side, per-view state.
        self._new_view_messages: Dict[int, Dict[int, Optional[Tuple[PrepareCertificate, Any, Any]]]] = {}
        self._prepare_votes: Dict[int, Dict[int, PartialSignature]] = {}
        self._commit_votes: Dict[int, Dict[int, PartialSignature]] = {}
        self._proposed_in_view: set = set()
        self._precommitted_in_view: set = set()
        self._decided_in_view: set = set()
        self._current_view_value: Dict[int, Tuple[Any, Any]] = {}

    # ------------------------------------------------------------------
    # Interface
    # ------------------------------------------------------------------
    def leader_of(self, view: int) -> int:
        """Round-robin leader assignment."""
        return (view - 1) % self.n

    def _handle_proposal(self, value: Any) -> None:
        pair = value
        if not isinstance(pair, tuple) or len(pair) != 2:
            raise ValueError("Quad proposals are (value, proof) pairs")
        if not self.verify(pair[0], pair[1]):
            raise ValueError("a correct process must propose a pair satisfying verify()")
        if self.view == 0:
            self._enter_view(1)
        else:
            # The proposal arrived while a view was already running (e.g. the
            # vector-consensus layer gathered its quorum late); if we lead the
            # current view, try to propose now.
            self._try_lead(self.view)

    # ------------------------------------------------------------------
    # View management
    # ------------------------------------------------------------------
    def _enter_view(self, view: int) -> None:
        if self.has_decided() or view <= self.view:
            return
        self.view = view
        self.set_timer(self.view_duration, ("view_timeout", view))
        self.send(self.leader_of(view), (_NEW_VIEW, view, self._highest_prepare_payload()))
        self._try_lead(view)

    def on_timer(self, tag: Any) -> None:
        if not isinstance(tag, tuple) or tag[0] != "view_timeout":
            return
        expired_view = tag[1]
        if expired_view == self.view and not self.has_decided():
            self._enter_view(self.view + 1)

    def _highest_prepare_payload(self) -> Optional[tuple]:
        if self.highest_prepare is None:
            return None
        cert, value, proof = self.highest_prepare
        return (cert, value, proof)

    # ------------------------------------------------------------------
    # Message handling
    # ------------------------------------------------------------------
    def on_message(self, sender: int, payload: Any) -> None:
        if self.has_decided() and payload and payload[0] != _DECIDE:
            return
        if not isinstance(payload, tuple) or not payload:
            return
        kind = payload[0]
        handlers = {
            _NEW_VIEW: self._on_new_view,
            _PROPOSE: self._on_propose,
            _PREPARE_VOTE: self._on_prepare_vote,
            _PRECOMMIT: self._on_precommit,
            _COMMIT_VOTE: self._on_commit_vote,
            _DECIDE: self._on_decide_message,
        }
        handler = handlers.get(kind)
        if handler is not None:
            handler(sender, payload)

    # ----------------------------- leader side -----------------------
    def _on_new_view(self, sender: int, payload: tuple) -> None:
        _, view, prepare_payload = payload
        if view < self.view or self.leader_of(view) != self.pid:
            return
        entry = self._validated_prepare(prepare_payload)
        self._new_view_messages.setdefault(view, {})[sender] = entry
        self._try_lead(view)

    def _validated_prepare(self, prepare_payload: Optional[tuple]) -> Optional[tuple]:
        if prepare_payload is None:
            return None
        cert, value, proof = prepare_payload
        if not isinstance(cert, PrepareCertificate):
            return None
        if cert.value_digest != digest(value):
            return None
        if not self.scheme.verify(cert.signature, ("prepare", cert.view, cert.value_digest)):
            return None
        if not self.verify(value, proof):
            return None
        return (cert, value, proof)

    def _try_lead(self, view: int) -> None:
        if view != self.view or self.leader_of(view) != self.pid or view in self._proposed_in_view:
            return
        received = self._new_view_messages.get(view, {})
        own_prepare = self._highest_prepare_payload()
        candidates = dict(received)
        candidates[self.pid] = self._validated_prepare(own_prepare)
        if instrument.SINK is not None:
            instrument.SINK.add(
                (
                    "quad.lead",
                    instrument.bucket(view),
                    instrument.margin(len(candidates), self.system.quorum),
                )
            )
        if len(candidates) < self.system.quorum:
            return
        best = None
        for entry in candidates.values():
            if entry is None:
                continue
            if best is None or entry[0].view > best[0].view:
                best = entry
        if best is not None:
            value, proof = best[1], best[2]
            justification = best[0]
        elif self.proposed_value is not None:
            value, proof = self.proposed_value
            justification = None
        else:
            return  # No safe candidate and our own proposal has not arrived yet.
        self._proposed_in_view.add(view)
        self.broadcast((_PROPOSE, view, value, proof, justification))

    def _on_prepare_vote(self, sender: int, payload: tuple) -> None:
        _, view, value_digest, share = payload
        if self.leader_of(view) != self.pid or view in self._precommitted_in_view:
            return
        if view not in self._current_view_value:
            return
        value, proof = self._current_view_value[view]
        if value_digest != digest(value):
            return
        if not self.scheme.verify_partial(share, ("prepare", view, value_digest)):
            return
        votes = self._prepare_votes.setdefault(view, {})
        votes[sender] = share
        if instrument.SINK is not None:
            instrument.SINK.add(
                (
                    "quad.prepare",
                    instrument.bucket(view),
                    instrument.margin(len(votes), self.system.quorum),
                )
            )
        if len(votes) >= self.system.quorum:
            certificate = PrepareCertificate(
                view=view,
                value_digest=value_digest,
                signature=self.scheme.combine(votes.values(), ("prepare", view, value_digest)),
            )
            self._precommitted_in_view.add(view)
            self.broadcast((_PRECOMMIT, view, value, proof, certificate))

    def _on_commit_vote(self, sender: int, payload: tuple) -> None:
        _, view, value_digest, share = payload
        if self.leader_of(view) != self.pid or view in self._decided_in_view:
            return
        if view not in self._current_view_value:
            return
        value, proof = self._current_view_value[view]
        if value_digest != digest(value):
            return
        if not self.scheme.verify_partial(share, ("commit", view, value_digest)):
            return
        votes = self._commit_votes.setdefault(view, {})
        votes[sender] = share
        if instrument.SINK is not None:
            instrument.SINK.add(
                (
                    "quad.commit",
                    instrument.bucket(view),
                    instrument.margin(len(votes), self.system.quorum),
                )
            )
        if len(votes) >= self.system.quorum:
            commit_certificate = self.scheme.combine(votes.values(), ("commit", view, value_digest))
            self._decided_in_view.add(view)
            self.broadcast((_DECIDE, view, value, proof, commit_certificate))

    # ----------------------------- replica side ----------------------
    def _on_propose(self, sender: int, payload: tuple) -> None:
        _, view, value, proof, justification = payload
        if view != self.view or sender != self.leader_of(view):
            return
        if not self.verify(value, proof):
            return
        safe = self._safe_to_vote(value, justification)
        if instrument.SINK is not None:
            instrument.SINK.add(("quad.propose", instrument.bucket(view), safe, self.locked is not None))
        if not safe:
            return
        if sender == self.pid:
            self._current_view_value[view] = (value, proof)
        value_digest = digest(value)
        share = self.scheme.partial_sign(self.pid, ("prepare", view, value_digest))
        # Remember what the leader proposed so the leader role (possibly us) can
        # match votes to it.
        self._current_view_value.setdefault(view, (value, proof))
        self.send(self.leader_of(view), (_PREPARE_VOTE, view, value_digest, share))

    def _safe_to_vote(self, value: Any, justification: Optional[PrepareCertificate]) -> bool:
        if self.locked is None:
            return True
        locked_value, _, locked_view = self.locked
        if value == locked_value:
            return True
        if justification is None or not isinstance(justification, PrepareCertificate):
            return False
        if justification.value_digest != digest(value):
            return False
        if not self.scheme.verify(justification.signature, ("prepare", justification.view, justification.value_digest)):
            return False
        return justification.view >= locked_view

    def _on_precommit(self, sender: int, payload: tuple) -> None:
        _, view, value, proof, certificate = payload
        if sender != self.leader_of(view):
            return
        if not isinstance(certificate, PrepareCertificate) or certificate.view != view:
            return
        if certificate.value_digest != digest(value):
            return
        if not self.scheme.verify(certificate.signature, ("prepare", view, certificate.value_digest)):
            return
        if not self.verify(value, proof):
            return
        if self.locked is None or view >= self.locked[2]:
            self.locked = (value, proof, view)
            if instrument.SINK is not None:
                instrument.SINK.add(("quad.lock", instrument.bucket(view)))
        if self.highest_prepare is None or certificate.view > self.highest_prepare[0].view:
            self.highest_prepare = (certificate, value, proof)
        share = self.scheme.partial_sign(self.pid, ("commit", view, certificate.value_digest))
        self.send(self.leader_of(view), (_COMMIT_VOTE, view, certificate.value_digest, share))

    def _on_decide_message(self, sender: int, payload: tuple) -> None:
        _, view, value, proof, commit_certificate = payload
        if not isinstance(commit_certificate, ThresholdSignature):
            return
        if not self.scheme.verify(commit_certificate, ("commit", view, digest(value))):
            return
        if not self.verify(value, proof):
            return
        if not self._relayed_decision:
            # One relay per correct process guarantees that everyone decides even
            # if the leader crashes right after producing the certificate, at a
            # one-off cost of O(n^2) messages overall.
            self._relayed_decision = True
            self.broadcast((_DECIDE, view, value, proof, commit_certificate))
        self._decide((value, proof))
