"""Common interfaces for the consensus building blocks.

Every consensus module in this package exposes the paper's
``propose(v)`` / ``decide(v')`` interface.  Decisions are reported through a
callback so that modules can be stacked (Universal on top of vector
consensus on top of Quad) exactly the way the paper's pseudocode composes
its building blocks.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..sim.process import Process, ProtocolModule

DecisionCallback = Callable[[Any], None]


class ConsensusModule(ProtocolModule):
    """Base class for modules exposing ``propose``/``decide``."""

    def __init__(
        self,
        process: Process,
        name: str,
        parent: Optional[ProtocolModule] = None,
        on_decide: Optional[DecisionCallback] = None,
    ):
        super().__init__(process, name, parent)
        self._on_decide = on_decide
        self.decided_value: Optional[Any] = None
        self.proposed_value: Optional[Any] = None

    # ------------------------------------------------------------------
    def set_decision_callback(self, on_decide: DecisionCallback) -> None:
        """Attach (or replace) the decision callback."""
        self._on_decide = on_decide

    def propose(self, value: Any) -> None:
        """Propose a value.  A correct process proposes exactly once."""
        if self.proposed_value is not None:
            raise RuntimeError(f"{self.name}: a correct process proposes exactly once")
        self.proposed_value = value
        self._handle_proposal(value)

    def has_decided(self) -> bool:
        return self.decided_value is not None

    # ------------------------------------------------------------------
    def _decide(self, value: Any) -> None:
        """Record the (first) decision and notify the parent."""
        if self.decided_value is not None:
            return
        self.decided_value = value
        if self._on_decide is not None:
            self._on_decide(value)

    def _handle_proposal(self, value: Any) -> None:
        """Protocol-specific proposal handling (override)."""
        raise NotImplementedError
