"""Authenticated vector consensus (Algorithm 1 of the paper).

Vector consensus lets correct processes agree on an input configuration with
exactly ``n - t`` process-proposal pairs, satisfying *Vector Validity*: if
the decided vector attributes value ``v`` to a correct process ``P``, then
``P`` really proposed ``v``.

Algorithm 1 achieves this with ``O(n^2)`` messages assuming a PKI:

1. every process best-effort broadcasts a signed ``proposal`` message
   (line 9);
2. upon receiving ``n - t`` proposal messages, a process assembles them into
   an input configuration ``vector`` and a proof ``Sigma`` (the signed
   messages themselves) and proposes ``(vector, Sigma)`` to Quad
   (lines 14-17);
3. Quad's external validity predicate checks that every pair of the vector is
   backed by a correctly signed proposal message, so whatever pair Quad
   decides satisfies Vector Validity, and the process decides the vector
   (lines 18-19).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from ..core.input_config import InputConfiguration, ProcessProposal
from ..crypto.signatures import Signature
from ..sim.process import Process, ProtocolModule
from .interfaces import ConsensusModule, DecisionCallback
from .quad import Quad


@dataclass(frozen=True)
class SignedProposal:
    """A ``<proposal, v>_sigma_i`` message: a proposal signed by its sender."""

    sender: int
    value: Any
    signature: Signature

    def stable_fields(self) -> tuple:
        return (self.sender, self.value, self.signature.stable_fields())

    @property
    def words(self) -> int:
        return 2


class VectorConsensusProof:
    """The proof ``Sigma``: one signed proposal message per pair of the vector."""

    def __init__(self, proposals: Dict[int, SignedProposal]):
        self.proposals = dict(proposals)

    def stable_fields(self) -> tuple:
        return tuple(sorted((pid, sp.stable_fields()) for pid, sp in self.proposals.items()))

    @property
    def words(self) -> int:
        return max(1, 2 * len(self.proposals))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VectorConsensusProof):
            return NotImplemented
        return self.proposals == other.proposals

    def __hash__(self) -> int:
        return hash(self.stable_fields())


def make_vector_verify(process: Process):
    """Build Quad's external ``verify`` predicate for vector consensus.

    ``verify(vector, Sigma)`` holds iff the vector has exactly ``n - t``
    pairs and every process-proposal pair is accompanied by a proposal
    message properly signed by that process.
    """
    system = process.system
    authority = process.authority

    def verify(vector: Any, proof: Any) -> bool:
        if not isinstance(vector, InputConfiguration) or not isinstance(proof, VectorConsensusProof):
            return False
        if vector.size != system.quorum:
            return False
        for pair in vector.pairs:
            signed = proof.proposals.get(pair.process)
            if signed is None or signed.value != pair.proposal or signed.sender != pair.process:
                return False
            if not authority.verify(signed.signature, ("proposal", signed.value), expected_signer=pair.process):
                return False
        return True

    return verify


class AuthenticatedVectorConsensus(ConsensusModule):
    """Algorithm 1: authenticated vector consensus with ``O(n^2)`` messages."""

    def __init__(
        self,
        process: Process,
        name: str = "vector",
        parent: Optional[ProtocolModule] = None,
        on_decide: Optional[DecisionCallback] = None,
    ):
        super().__init__(process, name, parent, on_decide)
        self._received: Dict[int, SignedProposal] = {}
        self._proposed_to_quad = False
        self.quad = Quad(
            process,
            verify=make_vector_verify(process),
            name="quad",
            parent=self,
            on_decide=self._on_quad_decision,
        )

    # ------------------------------------------------------------------
    def _handle_proposal(self, value: Any) -> None:
        signature = self.authority.sign(self.pid, ("proposal", value))
        self.broadcast(SignedProposal(sender=self.pid, value=value, signature=signature))

    def on_message(self, sender: int, payload: Any) -> None:
        if not isinstance(payload, SignedProposal):
            return
        if self._proposed_to_quad or sender in self._received:
            return
        if payload.sender != sender:
            return
        if not self.authority.verify(payload.signature, ("proposal", payload.value), expected_signer=sender):
            return
        self._received[sender] = payload
        if len(self._received) == self.system.quorum:
            vector = InputConfiguration(
                ProcessProposal(pid, signed.value) for pid, signed in self._received.items()
            )
            proof = VectorConsensusProof(self._received)
            self._proposed_to_quad = True
            self.quad.propose((vector, proof))

    def _on_quad_decision(self, pair: Any) -> None:
        vector, _proof = pair
        self._decide(vector)
