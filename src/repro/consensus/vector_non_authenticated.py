"""Non-authenticated vector consensus (Algorithm 3 of the paper, Appendix B.2).

This variant uses no cryptography at all.  It follows the classical reduction
from binary to multivalued consensus:

1. every process reliably broadcasts its proposal (Bracha broadcast, line 10);
2. when the proposal of process ``P_j`` is delivered, the process proposes
   ``1`` to the ``j``-th binary consensus instance (line 15) — unless the
   "stop proposing ones" phase has started;
3. once ``n - t`` binary instances have decided ``1``, the process proposes
   ``0`` to every instance it has not yet proposed to (line 20);
4. when *all* instances have decided, and the proposals of the first
   ``n - t`` processes whose instances decided ``1`` have been delivered, the
   process decides the input configuration assembled from those proposals
   (lines 21-23).

Its message complexity is dominated by the ``n`` reliable-broadcast instances
and the ``n`` binary-consensus instances, i.e. two orders of magnitude more
than Algorithm 1 — the gap the E6 experiment measures.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..broadcast.reliable import ByzantineReliableBroadcast
from ..core.input_config import InputConfiguration, ProcessProposal
from ..sim.process import Process, ProtocolModule
from .binary import BinaryConsensus
from .interfaces import ConsensusModule, DecisionCallback


class NonAuthenticatedVectorConsensus(ConsensusModule):
    """Algorithm 3: signature-free vector consensus from Bracha broadcast + binary consensus."""

    def __init__(
        self,
        process: Process,
        name: str = "vector",
        parent: Optional[ProtocolModule] = None,
        on_decide: Optional[DecisionCallback] = None,
    ):
        super().__init__(process, name, parent, on_decide)
        self.brb = ByzantineReliableBroadcast(
            process, name="brb", parent=self, on_deliver=self._on_proposal_delivered
        )
        self.instances: Dict[int, BinaryConsensus] = {}
        for origin in range(self.n):
            self.instances[origin] = BinaryConsensus(
                process,
                name=f"dbft-{origin}",
                parent=self,
                on_decide=self._make_instance_callback(origin),
            )
        self._proposals: Dict[int, Any] = {}
        self._instance_decisions: Dict[int, int] = {}
        self._proposing_ones = True
        self._proposed_to: set = set()

    # ------------------------------------------------------------------
    def _handle_proposal(self, value: Any) -> None:
        self.brb.broadcast_message(("proposal", value))

    def _on_proposal_delivered(self, origin: int, message: Any) -> None:
        if not isinstance(message, tuple) or len(message) != 2 or message[0] != "proposal":
            return
        if origin in self._proposals:
            return
        self._proposals[origin] = message[1]
        if self._proposing_ones and origin not in self._proposed_to:
            self._proposed_to.add(origin)
            self.instances[origin].propose(1)
        self._maybe_decide()

    def _make_instance_callback(self, origin: int):
        def on_instance_decide(value: int) -> None:
            self._instance_decisions[origin] = value
            self._maybe_stop_proposing_ones()
            self._maybe_decide()

        return on_instance_decide

    # ------------------------------------------------------------------
    def _maybe_stop_proposing_ones(self) -> None:
        if not self._proposing_ones:
            return
        ones = sum(1 for value in self._instance_decisions.values() if value == 1)
        if ones >= self.system.quorum:
            self._proposing_ones = False
            for origin in range(self.n):
                if origin not in self._proposed_to:
                    self._proposed_to.add(origin)
                    self.instances[origin].propose(0)

    def _maybe_decide(self) -> None:
        if self.has_decided():
            return
        if len(self._instance_decisions) < self.n:
            return
        winners = [origin for origin in range(self.n) if self._instance_decisions[origin] == 1]
        if len(winners) < self.system.quorum:
            # Cannot happen when the protocol is used correctly (at least the
            # n - t instances of correct processes eventually decide 1), but
            # guard against it instead of assembling an undersized vector.
            return
        chosen = winners[: self.system.quorum]
        if any(origin not in self._proposals for origin in chosen):
            return  # Totality of reliable broadcast will eventually deliver them.
        vector = InputConfiguration(
            ProcessProposal(origin, self._proposals[origin]) for origin in chosen
        )
        self._decide(vector)
