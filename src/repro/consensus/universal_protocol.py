"""Universal (Algorithm 2): consensus with any solvable, non-trivial validity property.

Universal composes a vector-consensus building block with the ``Lambda``
function of the target validity property:

* ``propose(v)`` forwards the proposal to vector consensus (line 4);
* when vector consensus decides an input configuration ``vector`` of
  ``n - t`` process-proposal pairs, the process decides ``Lambda(vector)``
  (line 6).

The module is independent of the concrete vector-consensus implementation
(exactly as in the paper): plugging in the authenticated Algorithm 1 gives
``O(n^2)`` message complexity, the non-authenticated Algorithm 3 gives a
signature-free variant, and the Algorithm 6 backend gives
``O(n^2 log n)`` communication complexity.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from ..core.universal import UniversalSpec
from ..sim.process import Process, ProtocolModule
from .interfaces import ConsensusModule, DecisionCallback

BackendFactory = Callable[..., ConsensusModule]


BACKEND_NAMES = ("authenticated", "non-authenticated", "compact")


def resolve_backend(name: str) -> BackendFactory:
    """Resolve a vector-consensus backend by name (imported lazily).

    * ``authenticated`` — Algorithm 1 (PKI + Quad, ``O(n^2)`` messages).
    * ``non-authenticated`` — Algorithm 3 (Bracha broadcast + binary
      consensus, signature-free, ``O(n^4)`` messages).
    * ``compact`` — Algorithm 6 (vector dissemination + Quad on hashes + ADD,
      ``O(n^2 log n)`` communication).
    """
    if name == "authenticated":
        from .vector_authenticated import AuthenticatedVectorConsensus

        return AuthenticatedVectorConsensus
    if name == "non-authenticated":
        from .vector_non_authenticated import NonAuthenticatedVectorConsensus

        return NonAuthenticatedVectorConsensus
    if name == "compact":
        from .vector_compact import CompactVectorConsensus

        return CompactVectorConsensus
    raise ValueError(f"unknown vector-consensus backend {name!r}; available: {sorted(BACKEND_NAMES)}")


class Universal(ConsensusModule):
    """The Universal consensus module (Algorithm 2)."""

    def __init__(
        self,
        process: Process,
        spec: UniversalSpec,
        backend: str = "authenticated",
        name: str = "universal",
        parent: Optional[ProtocolModule] = None,
        on_decide: Optional[DecisionCallback] = None,
    ):
        super().__init__(process, name, parent, on_decide)
        self.spec = spec
        self.backend_name = backend
        self.vector_consensus = resolve_backend(backend)(
            process,
            name="vec_cons",
            parent=self,
            on_decide=self._on_vector_decision,
        )
        self.decided_vector = None

    def _handle_proposal(self, value: Any) -> None:
        self.vector_consensus.propose(value)

    def _on_vector_decision(self, vector: Any) -> None:
        self.decided_vector = vector
        self._decide(self.spec.decide(vector))


class UniversalProcess(Process):
    """A process running Universal for one consensus variant.

    Args:
        pid: Process index.
        simulation: The owning simulation.
        spec: The consensus variant (validity property plus ``Lambda``).
        proposal: The value this process proposes.
        backend: Vector-consensus backend name.
    """

    def __init__(
        self,
        pid: int,
        simulation,
        spec: UniversalSpec,
        proposal: Any,
        backend: str = "authenticated",
    ):
        super().__init__(pid, simulation)
        self.spec = spec
        self.proposal = proposal
        self.backend = backend
        self.universal: Optional[Universal] = None

    def on_start(self) -> None:
        self.universal = Universal(
            self,
            spec=self.spec,
            backend=self.backend,
            on_decide=self.decide,
        )
        self.universal.propose(self.proposal)


def universal_process_factory(
    spec: UniversalSpec, proposals: Dict[int, Any], backend: str = "authenticated"
) -> Callable[[int, Any], UniversalProcess]:
    """Factory for :meth:`repro.sim.Simulation.populate`.

    Args:
        spec: The consensus variant to solve.
        proposals: Mapping from process index to its proposal.
        backend: Vector-consensus backend name.
    """

    def build(pid: int, simulation) -> UniversalProcess:
        return UniversalProcess(pid, simulation, spec=spec, proposal=proposals[pid], backend=backend)

    return build
