"""Vector consensus with O(n^2 log n) communication (Algorithm 6 of the paper).

Algorithm 6 removes the linear-size proposals from the consensus critical
path: instead of agreeing on the full vector (as Algorithm 1 does, paying
``O(n^3)`` communication), processes agree — via Quad — only on a *hash* of a
disseminated vector together with a threshold signature proving that enough
processes stored it, and then reconstruct the vector itself with ADD:

1. best-effort broadcast a signed ``proposal`` message (line 11);
2. upon ``n - t`` proposals, assemble the vector and hand it to vector
   dissemination (Algorithm 5), which slow-broadcasts it and acquires a
   ``(hash, threshold-signature)`` pair (lines 16-19);
3. propose the acquired pair to Quad, whose external validity predicate is
   "the threshold signature is valid for the hash" (lines 20-21);
4. when Quad decides a hash, feed the locally cached vector (or nothing, if
   this process never cached a matching vector) into ADD with that hash as
   the expected digest (lines 22-24);
5. decide the vector ADD outputs (lines 25-26).

The price is latency: slow broadcast is linear in ``delta * n^2`` in the
worst case, which the latency experiment (E10) measures.
"""

from __future__ import annotations

import pickle
from typing import Any, Dict, Optional

from ..broadcast.best_effort import BestEffortBroadcast
from ..coding.add import AsynchronousDataDissemination
from ..core.input_config import InputConfiguration, ProcessProposal
from ..crypto.threshold import ThresholdScheme, ThresholdSignature
from ..sim.process import Process, ProtocolModule
from .interfaces import ConsensusModule, DecisionCallback
from .quad import Quad
from .vector_authenticated import SignedProposal, VectorConsensusProof, make_vector_verify
from .vector_dissemination import VectorDissemination


def serialise_vector(vector: InputConfiguration, proof: VectorConsensusProof) -> bytes:
    """Serialise a (vector, proof) pair into the blob handled by dissemination and ADD."""
    return pickle.dumps((vector.as_mapping(), proof), protocol=4)


def deserialise_vector(blob: bytes) -> tuple:
    """Inverse of :func:`serialise_vector`; returns ``(vector, proof)``."""
    mapping, proof = pickle.loads(blob)
    vector = InputConfiguration(ProcessProposal(pid, value) for pid, value in mapping.items())
    return vector, proof


class CompactVectorConsensus(ConsensusModule):
    """Algorithm 6: vector consensus with sub-cubic communication."""

    def __init__(
        self,
        process: Process,
        name: str = "vector",
        parent: Optional[ProtocolModule] = None,
        on_decide: Optional[DecisionCallback] = None,
    ):
        super().__init__(process, name, parent, on_decide)
        self._pair_verify = make_vector_verify(process)
        self.scheme = ThresholdScheme(self.authority, threshold=self.system.quorum)
        self.beb = BestEffortBroadcast(process, name="beb", parent=self, on_deliver=self._on_proposal)
        self.disseminator = VectorDissemination(
            process,
            name="disseminator",
            parent=self,
            on_acquire=self._on_acquire,
            cache_validator=self._validate_blob,
        )
        self.add = AsynchronousDataDissemination(
            process, name="add", parent=self, on_output=self._on_add_output
        )
        self.quad = Quad(
            process,
            verify=self._verify_hash_signature,
            name="quad",
            parent=self,
            on_decide=self._on_quad_decision,
        )
        self._received: Dict[int, SignedProposal] = {}
        self._disseminated = False
        self._proposed_to_quad = False

    # ------------------------------------------------------------------
    # Quad's external validity predicate: a valid (n - t)-threshold signature.
    # ------------------------------------------------------------------
    def _verify_hash_signature(self, blob_hash: Any, signature: Any) -> bool:
        if not isinstance(blob_hash, str) or not isinstance(signature, ThresholdSignature):
            return False
        return self.scheme.verify(signature, ("vector", blob_hash))

    def _validate_blob(self, blob: bytes) -> bool:
        """The caching check the paper mentions: cached vectors must carry valid proposal messages."""
        try:
            vector, proof = deserialise_vector(blob)
        except Exception:
            return False
        return self._pair_verify(vector, proof)

    # ------------------------------------------------------------------
    def _handle_proposal(self, value: Any) -> None:
        signature = self.authority.sign(self.pid, ("proposal", value))
        self.beb.broadcast_message(SignedProposal(sender=self.pid, value=value, signature=signature))

    def _on_proposal(self, sender: int, payload: Any) -> None:
        if not isinstance(payload, SignedProposal) or self._disseminated:
            return
        if payload.sender != sender or sender in self._received:
            return
        if not self.authority.verify(payload.signature, ("proposal", payload.value), expected_signer=sender):
            return
        self._received[sender] = payload
        if len(self._received) == self.system.quorum:
            vector = InputConfiguration(
                ProcessProposal(pid, signed.value) for pid, signed in self._received.items()
            )
            proof = VectorConsensusProof(self._received)
            self._disseminated = True
            self.disseminator.disseminate(serialise_vector(vector, proof))

    def _on_acquire(self, blob_hash: str, signature: ThresholdSignature) -> None:
        if self._proposed_to_quad:
            return
        self._proposed_to_quad = True
        self.quad.propose((blob_hash, signature))

    def _on_quad_decision(self, pair: Any) -> None:
        blob_hash, _signature = pair
        cached = self.disseminator.cached_vectors.get(blob_hash)
        self.add.input(cached, expected_hash=blob_hash)

    def _on_add_output(self, blob: bytes) -> None:
        vector, _proof = deserialise_vector(blob)
        self._decide(vector)
