"""Consensus protocols: Quad, binary consensus, vector consensus (Algorithms 1, 3, 6) and Universal."""

from .binary import BinaryConsensus
from .interfaces import ConsensusModule
from .quad import PrepareCertificate, Quad
from .universal_protocol import Universal, UniversalProcess, resolve_backend, universal_process_factory
from .vector_authenticated import (
    AuthenticatedVectorConsensus,
    SignedProposal,
    VectorConsensusProof,
    make_vector_verify,
)
from .vector_compact import CompactVectorConsensus, deserialise_vector, serialise_vector
from .vector_dissemination import VectorDissemination
from .vector_non_authenticated import NonAuthenticatedVectorConsensus

__all__ = [
    "ConsensusModule",
    "Quad",
    "PrepareCertificate",
    "BinaryConsensus",
    "AuthenticatedVectorConsensus",
    "NonAuthenticatedVectorConsensus",
    "CompactVectorConsensus",
    "VectorDissemination",
    "serialise_vector",
    "deserialise_vector",
    "SignedProposal",
    "VectorConsensusProof",
    "make_vector_verify",
    "Universal",
    "UniversalProcess",
    "universal_process_factory",
    "resolve_backend",
]
