"""Property tests for the partial-synchrony delay-model contract.

The contract (enforced in exactly one place, ``DelayModel.delivery_time``):
every message from a correct sender is delivered within::

    send_time + min_delay  <=  delivery  <=  max(send_time, gst) + delta

These tests sweep every registered delay model under a family of adversarial
``schedule_hook``s and assert the bound holds for every correct-sender
delivery — including the regression case that motivated the refactor
(``PartitionDelayModel`` with an explicit ``gst`` before the release time,
which previously let cross-group messages from correct senders land after
``GST + delta``, and ignored ``schedule_hook`` entirely).
"""

import random

import pytest

from repro.experiments import DELAY_MODELS, make_scenario
from repro.sim import DelayModel, JitteredDelayModel, PartitionDelayModel

SEEDS = (0, 2023, 77)

# Adversarial schedule hooks: each tries to push deliveries outside the
# contract window in a different way.
HOOKS = {
    "none": None,
    "huge": lambda s, r, t, d: 1_000_000.0,
    "negative": lambda s, r, t, d: -5.0,
    "zero": lambda s, r, t, d: 0.0,
    "nudge": lambda s, r, t, d: d + 0.4,
    "selective": lambda s, r, t, d: 900.0 if (s + r) % 2 == 0 else None,
}


def contract_holds(model: DelayModel, sender: int, receiver: int, send_time: float) -> None:
    delivery = model.delivery_time(sender, receiver, send_time, sender_correct=True)
    earliest = send_time + model.min_delay
    latest = max(send_time, model.gst) + model.delta
    assert earliest <= delivery <= latest, (
        f"{type(model).__name__}: correct-sender delivery {delivery} outside "
        f"[{earliest}, {latest}] for send_time={send_time}"
    )


@pytest.mark.parametrize("delay_key", sorted(DELAY_MODELS))
@pytest.mark.parametrize("hook_key", sorted(HOOKS))
def test_registered_models_respect_contract_under_adversarial_hooks(delay_key, hook_key):
    spec = make_scenario("binary", delay=delay_key, n=7, t=2)
    for seed in SEEDS:
        model = DELAY_MODELS[delay_key](spec, seed)
        model.schedule_hook = HOOKS[hook_key]
        sampler = random.Random(seed * 31 + 7)
        for _ in range(200):
            sender = sampler.randrange(spec.n)
            receiver = sampler.randrange(spec.n)
            send_time = sampler.uniform(0.0, 3.0 * max(model.gst, model.delta))
            contract_holds(model, sender, receiver, send_time)


def test_byzantine_senders_keep_causality_floor_but_no_upper_bound():
    model = DelayModel(gst=0.0, delta=2.0, min_delay=0.5, seed=1, schedule_hook=lambda s, r, t, d: 1_000.0)
    assert model.delivery_time(0, 1, 5.0, sender_correct=False) == 1_000.0
    model.schedule_hook = lambda s, r, t, d: -100.0
    assert model.delivery_time(0, 1, 5.0, sender_correct=False) == 5.5


def test_delivery_time_is_final():
    with pytest.raises(TypeError, match="_candidate_delay"):

        class Rogue(DelayModel):
            def delivery_time(self, sender, receiver, send_time, sender_correct):
                return 0.0


def test_latest_delivery_is_final_too():
    # Overriding the ceiling computation would bypass the contract clamp.
    with pytest.raises(TypeError, match="_candidate_delay"):

        class Looser(DelayModel):
            def latest_delivery(self, send_time):
                return send_time + 1_000.0


class TestPartitionModelRegression:
    def test_explicit_gst_before_release_cannot_violate_contract(self):
        # Regression: an explicit gst < release_time used to let cross-group
        # messages from correct senders land after max(send, gst) + delta.
        model = PartitionDelayModel(
            group_a={0}, group_c={2}, release_time=50.0, delta=1.0, min_delay=0.1, seed=1, gst=2.0
        )
        for send_time in (0.0, 1.0, 3.0, 49.0):
            contract_holds(model, 0, 2, send_time)
            contract_holds(model, 2, 0, send_time)
        # Byzantine cross-group messages stay partitioned until release.
        assert model.delivery_time(0, 2, 1.0, sender_correct=False) > 50.0

    def test_partition_still_blocks_until_release_when_gst_is_release(self):
        model = PartitionDelayModel(group_a={0}, group_c={2}, release_time=50.0, delta=1.0, seed=1)
        assert model.delivery_time(0, 2, 1.0, True) > 50.0
        assert model.delivery_time(0, 1, 1.0, True) < 50.0
        contract_holds(model, 0, 2, 1.0)

    def test_partition_model_honours_schedule_hook(self):
        # Regression: schedule_hook used to be silently ignored.
        seen = []

        def hook(sender, receiver, send_time, candidate):
            seen.append((sender, receiver, send_time, candidate))
            return 7.0

        model = PartitionDelayModel(
            group_a={0}, group_c={2}, release_time=5.0, delta=1.0, seed=1, schedule_hook=hook
        )
        assert model.delivery_time(0, 1, 1.0, sender_correct=True) == 6.0  # clamped to gst + delta
        assert model.delivery_time(0, 1, 6.5, sender_correct=True) == 7.0  # within contract
        assert len(seen) == 2


class TestJitteredModel:
    def test_post_gst_behaves_like_default(self):
        model = JitteredDelayModel(gst=5.0, delta=2.0, min_delay=0.5, seed=3)
        for send_time in (5.0, 9.0, 42.0):
            delivery = model.delivery_time(0, 1, send_time, sender_correct=True)
            assert send_time + 0.5 <= delivery <= send_time + 2.0

    def test_pre_gst_tail_is_heavy_but_clamped(self):
        model = JitteredDelayModel(gst=10.0, delta=1.0, min_delay=0.1, seed=5, alpha=1.1)
        deliveries = [model.delivery_time(0, 1, 0.0, sender_correct=True) for _ in range(500)]
        assert max(deliveries) <= 11.0  # gst + delta
        assert min(deliveries) >= 0.1
        # Heavy tail: some messages straggle well beyond the typical delay.
        assert any(delivery > 5.0 for delivery in deliveries)
        assert sum(1 for delivery in deliveries if delivery < 1.0) > len(deliveries) // 2

    def test_alpha_must_be_positive(self):
        with pytest.raises(ValueError):
            JitteredDelayModel(alpha=0.0)
