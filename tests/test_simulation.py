"""Tests for the partially synchronous simulator substrate."""

import pytest

from repro.core import SystemConfig
from repro.sim import (
    DelayModel,
    Envelope,
    PartitionDelayModel,
    Process,
    ProtocolModule,
    Simulation,
    SimulationError,
    SynchronousDelayModel,
    silent_factory,
    word_size,
)


class PingModule(ProtocolModule):
    """Toy protocol: everybody broadcasts 'ping' and records what it hears."""

    def __init__(self, process, name="ping", parent=None):
        super().__init__(process, name, parent)
        self.received = []

    def start(self):
        self.broadcast(("ping", self.pid))

    def on_message(self, sender, payload):
        self.received.append((sender, payload))


class PingProcess(Process):
    def on_start(self):
        self.ping = PingModule(self)
        self.ping.start()


class DeciderProcess(Process):
    """Decides a constant after one timer tick (exercises timers and decisions)."""

    def on_start(self):
        self.set_timer_raw(1.0, (), "decide")

    def on_timer(self, tag):
        if tag == "decide":
            self.decide("constant")


def build(n=4, t=1, delay_model=None, faulty=(), factory=None):
    system = SystemConfig(n, t)
    sim = Simulation(system, delay_model=delay_model or SynchronousDelayModel(seed=3))
    sim.populate(factory or (lambda pid, s: PingProcess(pid, s)), faulty=faulty)
    return sim


class TestDelayModel:
    def test_post_gst_delays_bounded_by_delta(self):
        model = DelayModel(gst=10.0, delta=2.0, min_delay=0.5, seed=1)
        for send_time in [10.0, 15.0, 100.0]:
            delivery = model.delivery_time(0, 1, send_time, sender_correct=True)
            assert send_time + 0.5 <= delivery <= send_time + 2.0

    def test_pre_gst_delivery_by_gst_plus_delta(self):
        model = DelayModel(gst=10.0, delta=2.0, min_delay=0.5, seed=1)
        for send_time in [0.0, 5.0, 9.9]:
            delivery = model.delivery_time(0, 1, send_time, sender_correct=True)
            assert send_time < delivery <= 12.0

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            DelayModel(delta=0)
        with pytest.raises(ValueError):
            DelayModel(delta=1.0, min_delay=2.0)
        with pytest.raises(ValueError):
            DelayModel(gst=-1.0)

    def test_schedule_hook_can_delay_but_not_violate_contract(self):
        hook = lambda sender, receiver, send_time, default: 1_000.0
        model = DelayModel(gst=0.0, delta=2.0, min_delay=0.5, seed=1, schedule_hook=hook)
        delivery = model.delivery_time(0, 1, 5.0, sender_correct=True)
        assert delivery <= 7.0
        byzantine_delivery = model.delivery_time(0, 1, 5.0, sender_correct=False)
        assert byzantine_delivery == 1_000.0

    def test_partition_model_delays_cross_group_messages(self):
        model = PartitionDelayModel(group_a={0}, group_c={2}, release_time=50.0, delta=1.0, seed=1)
        assert model.delivery_time(0, 2, 1.0, True) > 50.0
        assert model.delivery_time(2, 0, 1.0, True) > 50.0
        assert model.delivery_time(0, 1, 1.0, True) < 50.0

    def test_partition_groups_must_be_disjoint(self):
        with pytest.raises(ValueError):
            PartitionDelayModel(group_a={0}, group_c={0}, release_time=1.0)


class TestSimulationBasics:
    def test_ping_all_to_all_delivery(self):
        sim = build()
        sim.run()
        for pid in sim.correct_processes:
            received = sim.processes[pid].ping.received
            assert {sender for sender, _ in received} == set(range(4))

    def test_message_complexity_counts_correct_senders_only(self):
        sim = build(faulty=[3])
        sim.run()
        # 3 correct processes broadcast to 4 destinations each.
        assert sim.metrics.message_complexity == 12
        assert sim.metrics.total_messages == 12

    def test_pre_gst_messages_excluded_from_paper_metric(self):
        system = SystemConfig(4, 1)
        sim = Simulation(system, delay_model=DelayModel(gst=100.0, delta=1.0, seed=1))
        sim.populate(lambda pid, s: PingProcess(pid, s))
        sim.run(until=50.0)
        assert sim.metrics.message_complexity == 0
        assert sim.metrics.total_messages == 16

    def test_decisions_and_agreement(self):
        sim = build(factory=lambda pid, s: DeciderProcess(pid, s))
        sim.run_until_all_correct_decide()
        assert sim.all_correct_decided()
        assert sim.agreement_holds()
        assert set(sim.decisions().values()) == {"constant"}

    def test_populate_rejects_too_many_faulty(self):
        system = SystemConfig(4, 1)
        sim = Simulation(system)
        with pytest.raises(ValueError):
            sim.populate(lambda pid, s: PingProcess(pid, s), faulty=[0, 1])

    def test_correct_process_cannot_start_after_gst(self):
        system = SystemConfig(4, 1)
        sim = Simulation(system, delay_model=DelayModel(gst=5.0))
        with pytest.raises(ValueError):
            sim.add_process(PingProcess(0, sim), correct=True, start_time=10.0)

    def test_duplicate_process_rejected(self):
        sim = build()
        with pytest.raises(ValueError):
            sim.add_process(PingProcess(0, sim))

    def test_silent_faulty_send_nothing(self):
        sim = build(faulty=[2], factory=lambda pid, s: PingProcess(pid, s))
        sim.run()
        assert sim.metrics.per_sender_messages.get(2, 0) == 0

    def test_max_events_guard(self):
        class FloodProcess(Process):
            def on_start(self):
                self.set_timer_raw(0.1, (), "tick")

            def on_timer(self, tag):
                self.set_timer_raw(0.1, (), "tick")

        system = SystemConfig(4, 1)
        sim = Simulation(system)
        sim.populate(lambda pid, s: FloodProcess(pid, s))
        with pytest.raises(SimulationError):
            sim.run(max_events=100)

    def test_run_until_time_horizon(self):
        sim = build(factory=lambda pid, s: DeciderProcess(pid, s))
        sim.run(until=0.5)
        assert not sim.all_correct_decided()
        sim.run()
        assert sim.all_correct_decided()

    def test_determinism_across_runs(self):
        first = build(delay_model=SynchronousDelayModel(seed=7))
        first.run()
        second = build(delay_model=SynchronousDelayModel(seed=7))
        second.run()
        assert first.metrics.summary() == second.metrics.summary()


class TestWordSize:
    def test_atomic_values(self):
        assert word_size(1) == 1
        assert word_size("hash") == 1
        assert word_size(None) == 0

    def test_containers_sum(self):
        assert word_size((1, 2, 3)) == 3
        assert word_size({"a": 1}) == 2

    def test_input_configuration_costs_its_size(self):
        from repro.core import InputConfiguration

        config = InputConfiguration.from_mapping({0: 1, 1: 2, 2: 3})
        assert word_size(config) == 3

    def test_signature_costs_one_word(self):
        from repro.crypto import KeyAuthority

        assert word_size(KeyAuthority(4).sign(0, "m")) == 1

    def test_bytes_cost_one_word_per_64_bytes(self):
        assert word_size(b"") == 1  # even an empty blob occupies a word
        assert word_size(b"x" * 64) == 1
        assert word_size(b"x" * 65) == 2
        assert word_size(bytearray(200)) == 4

    def test_nested_empty_containers_floor_at_one_word(self):
        assert word_size(()) == 1
        assert word_size([]) == 1
        assert word_size(((), ())) == 2  # each empty element still costs its floor
        assert word_size([[], {}]) == 2
        assert word_size({}) == 1
        assert word_size(frozenset()) == 1

    def test_subclass_words_override_beats_builtin_fast_paths(self):
        class SizedInt(int):
            @property
            def words(self):
                return 5

        class SizedBytes(bytes):
            @property
            def words(self):
                return 2

        class SizedTuple(tuple):
            @property
            def words(self):
                return 7

        assert word_size(SizedInt(3)) == 5
        assert word_size(SizedBytes(b"x" * 1000)) == 2  # override, not len//64
        assert word_size(SizedTuple((1, 2, 3))) == 7  # override, not element sum
        # The override is floored at one word and must be an int to count.
        class ZeroWords(int):
            @property
            def words(self):
                return 0

        class BogusWords(int):
            @property
            def words(self):
                return "many"

        assert word_size(ZeroWords(9)) == 1
        assert word_size(BogusWords(9)) == 1  # falls through to the int rule


class TestModuleRouting:
    def test_messages_routed_by_path(self):
        class TwoModuleProcess(Process):
            def on_start(self):
                self.first = PingModule(self, name="first")
                self.second = PingModule(self, name="second")
                self.first.broadcast("from-first")

        system = SystemConfig(4, 1)
        sim = Simulation(system, delay_model=SynchronousDelayModel(seed=2))
        sim.populate(lambda pid, s: TwoModuleProcess(pid, s))
        sim.run()
        for pid in sim.correct_processes:
            process = sim.processes[pid]
            assert len(process.first.received) == 4
            assert len(process.second.received) == 0

    def test_duplicate_module_path_rejected(self):
        sim = build()
        process = sim.processes[0]
        PingModule(process, name="unique")
        with pytest.raises(ValueError):
            PingModule(process, name="unique")

    def test_unrouted_messages_ignored(self):
        sim = build()
        process = sim.processes[0]
        process.deliver_message(
            type("D", (), {"sender": 1, "receiver": 0, "envelope": Envelope(("ghost",), "x"), "send_time": 0.0})()
        )
