"""Integration tests for the consensus stack: Quad, binary consensus, vector consensus, Universal."""

import pytest

from repro.core import InputConfiguration, SystemConfig, UniversalSpec, VectorValidity
from repro.consensus import (
    BinaryConsensus,
    Quad,
    UniversalProcess,
    universal_process_factory,
)
from repro.sim import (
    DelayModel,
    Process,
    Simulation,
    SynchronousDelayModel,
    crash_factory,
    silent_factory,
)


# ----------------------------------------------------------------------
# Binary consensus
# ----------------------------------------------------------------------
class BinaryProcess(Process):
    def __init__(self, pid, simulation, proposal):
        super().__init__(pid, simulation)
        self.proposal = proposal

    def on_start(self):
        self.consensus = BinaryConsensus(self, on_decide=self.decide)
        self.consensus.propose(self.proposal)


def run_binary(proposals, n=4, t=1, faulty=(), seed=1, gst=0.0):
    system = SystemConfig(n, t)
    delay = DelayModel(gst=gst, delta=1.0, seed=seed) if gst else SynchronousDelayModel(seed=seed)
    sim = Simulation(system, delay_model=delay)
    sim.populate(
        lambda pid, s: BinaryProcess(pid, s, proposals[pid]), faulty=faulty, faulty_factory=silent_factory
    )
    sim.run_until_all_correct_decide(until=5_000)
    return sim


class TestBinaryConsensus:
    def test_unanimous_zero(self):
        sim = run_binary({0: 0, 1: 0, 2: 0, 3: 0})
        assert set(sim.decisions().values()) == {0}

    def test_unanimous_one(self):
        sim = run_binary({0: 1, 1: 1, 2: 1, 3: 1})
        assert set(sim.decisions().values()) == {1}

    def test_mixed_proposals_agreement(self):
        sim = run_binary({0: 0, 1: 1, 2: 0, 3: 1})
        assert sim.all_correct_decided()
        assert sim.agreement_holds()
        assert set(sim.decisions().values()) <= {0, 1}

    def test_with_silent_faulty_process(self):
        sim = run_binary({0: 1, 1: 1, 2: 1, 3: 1}, faulty=[3])
        assert set(sim.decisions().values()) == {1}
        assert sim.all_correct_decided()

    def test_strong_binary_validity_with_faulty(self):
        # All correct propose 0; the faulty process cannot force a decision of 1.
        sim = run_binary({0: 0, 1: 0, 2: 0, 3: 1}, faulty=[3])
        assert set(sim.decisions().values()) == {0}

    def test_larger_system_with_faults(self):
        proposals = {pid: pid % 2 for pid in range(7)}
        sim = run_binary(proposals, n=7, t=2, faulty=[5, 6])
        assert sim.all_correct_decided()
        assert sim.agreement_holds()

    def test_rejects_non_binary_proposal(self):
        system = SystemConfig(4, 1)
        sim = Simulation(system)
        process = BinaryProcess(0, sim, proposal=2)
        sim.add_process(process)
        with pytest.raises(ValueError):
            process.on_start()

    def test_proposing_twice_is_an_error(self):
        system = SystemConfig(4, 1)
        sim = Simulation(system)
        process = BinaryProcess(0, sim, proposal=1)
        sim.add_process(process)
        process.on_start()
        with pytest.raises(RuntimeError):
            process.consensus.propose(0)


# ----------------------------------------------------------------------
# Quad
# ----------------------------------------------------------------------
class QuadProcess(Process):
    """Runs Quad directly with a trivially verifiable proof scheme."""

    def __init__(self, pid, simulation, value):
        super().__init__(pid, simulation)
        self.value = value

    def on_start(self):
        self.quad = Quad(self, verify=lambda value, proof: proof == ("ok", value), on_decide=self.decide)
        self.quad.propose((self.value, ("ok", self.value)))


def run_quad(values, n=4, t=1, faulty=(), seed=1, gst=0.0):
    system = SystemConfig(n, t)
    delay = DelayModel(gst=gst, delta=1.0, seed=seed) if gst else SynchronousDelayModel(seed=seed)
    sim = Simulation(system, delay_model=delay)
    sim.populate(
        lambda pid, s: QuadProcess(pid, s, values[pid]), faulty=faulty, faulty_factory=silent_factory
    )
    sim.run_until_all_correct_decide(until=5_000)
    return sim


class TestQuad:
    def test_agreement_and_termination_all_correct(self):
        sim = run_quad({0: "a", 1: "b", 2: "c", 3: "d"})
        assert sim.all_correct_decided()
        assert sim.agreement_holds()

    def test_decided_pair_satisfies_verify(self):
        sim = run_quad({0: "a", 1: "b", 2: "c", 3: "d"})
        value, proof = next(iter(sim.decisions().values()))
        assert proof == ("ok", value)

    def test_silent_leader_triggers_view_change(self):
        # Process 0 leads view 1; making it silent forces a view change and a
        # decision under the next leader.
        sim = run_quad({0: "a", 1: "b", 2: "c", 3: "d"}, faulty=[0])
        assert sim.all_correct_decided()
        assert sim.agreement_holds()
        decided_value, _ = next(iter(sim.decisions().values()))
        assert decided_value in {"b", "c", "d"}

    def test_quadratic_message_complexity_shape(self):
        small = run_quad({pid: pid for pid in range(4)}, n=4, t=1)
        large = run_quad({pid: pid for pid in range(10)}, n=10, t=3)
        ratio = large.metrics.message_complexity / max(1, small.metrics.message_complexity)
        # n grows by 2.5x, so a quadratic protocol grows by ~6.25x; allow a wide
        # band but rule out cubic blow-ups.
        assert ratio < 2.5**3

    def test_correct_process_must_propose_verifiable_pair(self):
        system = SystemConfig(4, 1)
        sim = Simulation(system)
        process = QuadProcess(0, sim, "x")
        sim.add_process(process)
        process.quad = Quad(process, verify=lambda v, p: False, on_decide=process.decide)
        with pytest.raises(ValueError):
            process.quad.propose(("x", "bad proof"))

    def test_gst_after_start(self):
        sim = run_quad({0: "a", 1: "b", 2: "c", 3: "d"}, gst=15.0, seed=3)
        assert sim.all_correct_decided()
        assert sim.agreement_holds()


# ----------------------------------------------------------------------
# Universal end-to-end (both vector-consensus backends)
# ----------------------------------------------------------------------
def run_universal(
    property_key,
    proposals,
    n=4,
    t=1,
    backend="authenticated",
    faulty=(),
    faulty_factory=silent_factory,
    seed=1,
    gst=0.0,
):
    system = SystemConfig(n, t)
    spec = UniversalSpec.for_standard_property(system, property_key)
    delay = DelayModel(gst=gst, delta=1.0, seed=seed) if gst else SynchronousDelayModel(seed=seed)
    sim = Simulation(system, delay_model=delay)
    sim.populate(
        universal_process_factory(spec, proposals, backend=backend),
        faulty=faulty,
        faulty_factory=faulty_factory,
    )
    sim.run_until_all_correct_decide(until=10_000)
    return sim, spec


def execution_configuration(sim, proposals):
    return InputConfiguration.from_mapping(
        {pid: proposals[pid] for pid in sim.correct_processes}
    )


class TestUniversalAuthenticated:
    def test_strong_validity_unanimous(self):
        proposals = {pid: "v" for pid in range(4)}
        sim, _ = run_universal("strong", proposals)
        assert set(sim.decisions().values()) == {"v"}

    def test_strong_validity_with_silent_byzantine(self):
        proposals = {0: 5, 1: 5, 2: 5, 3: 5}
        sim, spec = run_universal("strong", proposals, faulty=[2])
        assert sim.all_correct_decided()
        assert set(sim.decisions().values()) == {5}

    def test_decision_admissible_for_every_standard_property(self):
        proposals = {0: 1, 1: 2, 2: 2, 3: 3}
        for key in ["strong", "weak", "convex-hull", "median", "free"]:
            sim, spec = run_universal(key, proposals, seed=3)
            assert sim.all_correct_decided(), key
            assert sim.agreement_holds(), key
            config = execution_configuration(sim, proposals)
            for decided in sim.decisions().values():
                assert spec.validity.is_admissible(config, decided), key

    def test_correct_proposal_validity_decision_was_proposed(self):
        proposals = {0: "a", 1: "a", 2: "a", 3: "b"}
        sim, spec = run_universal("correct-proposal", proposals, faulty=[3])
        config = execution_configuration(sim, proposals)
        for decided in sim.decisions().values():
            assert decided in config.distinct_proposals()

    def test_vector_validity_via_identity_lambda(self):
        system = SystemConfig(4, 1)
        spec = UniversalSpec(
            system=system,
            validity=VectorValidity(system),
            decision_rule=lambda vector: vector,
        )
        proposals = {0: "a", 1: "b", 2: "c", 3: "d"}
        sim = Simulation(system, delay_model=SynchronousDelayModel(seed=2))
        sim.populate(universal_process_factory(spec, proposals))
        sim.run_until_all_correct_decide(until=5_000)
        assert sim.agreement_holds()
        vector = next(iter(sim.decisions().values()))
        config = InputConfiguration.from_mapping(proposals)
        for pair in vector.pairs:
            assert config[pair.process] == pair.proposal

    def test_larger_system_with_two_faults(self):
        proposals = {pid: pid % 3 for pid in range(7)}
        sim, spec = run_universal("convex-hull", proposals, n=7, t=2, faulty=[5, 6], seed=4)
        assert sim.all_correct_decided()
        assert sim.agreement_holds()
        config = execution_configuration(sim, proposals)
        for decided in sim.decisions().values():
            assert spec.validity.is_admissible(config, decided)

    def test_gst_after_start_still_terminates(self):
        proposals = {pid: 1 for pid in range(4)}
        sim, _ = run_universal("strong", proposals, gst=25.0, seed=5)
        assert sim.all_correct_decided()
        assert set(sim.decisions().values()) == {1}

    def test_crash_fault_mid_protocol(self):
        proposals = {pid: 1 for pid in range(4)}
        system = SystemConfig(4, 1)
        spec = UniversalSpec.for_standard_property(system, "strong")
        sim = Simulation(system, delay_model=SynchronousDelayModel(seed=6))
        correct = universal_process_factory(spec, proposals)
        sim.populate(correct, faulty=[1], faulty_factory=crash_factory(correct, crash_time=2.0))
        sim.run_until_all_correct_decide(until=10_000)
        assert sim.all_correct_decided()
        assert set(sim.decisions().values()) == {1}

    def test_message_complexity_grows_quadratically_not_cubically(self):
        proposals_small = {pid: 0 for pid in range(4)}
        proposals_large = {pid: 0 for pid in range(13)}
        small, _ = run_universal("strong", proposals_small, n=4, t=1)
        large, _ = run_universal("strong", proposals_large, n=13, t=4)
        ratio = large.metrics.message_complexity / max(1, small.metrics.message_complexity)
        scale = 13 / 4
        assert ratio < scale**3, "authenticated Universal should not blow up cubically"


class TestUniversalNonAuthenticated:
    def test_agreement_and_validity(self):
        proposals = {0: 3, 1: 3, 2: 3, 3: 4}
        sim, spec = run_universal("strong", proposals, backend="non-authenticated", seed=2)
        assert sim.all_correct_decided()
        assert sim.agreement_holds()
        assert set(sim.decisions().values()) == {3}

    def test_with_silent_byzantine(self):
        proposals = {0: 3, 1: 3, 2: 3, 3: 4}
        sim, spec = run_universal(
            "strong", proposals, backend="non-authenticated", faulty=[3], seed=3
        )
        assert sim.all_correct_decided()
        assert set(sim.decisions().values()) == {3}

    def test_costs_more_messages_than_authenticated(self):
        proposals = {pid: 1 for pid in range(4)}
        auth, _ = run_universal("strong", proposals, backend="authenticated", seed=4)
        non_auth, _ = run_universal("strong", proposals, backend="non-authenticated", seed=4)
        assert non_auth.metrics.message_complexity > 2 * auth.metrics.message_complexity
