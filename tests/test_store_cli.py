"""CLI surface of the run store: run --store, report, compare, --list --json.

Drives ``repro.experiments.cli.main`` exactly as CI does and asserts on
exit codes and written artifacts: a warm ``--store`` sweep must be 100%
cache hits with byte-identical summaries, ``compare`` must exit non-zero on
an injected regression, and malformed ``--seeds`` inputs must fail with a
clear error instead of silently sweeping twice.
"""

import json

import pytest

from repro.experiments import DEFAULT_SEED, Runner, execute_run, make_scenario
from repro.experiments.cli import _parse_seeds, main
from repro.store import RunStore

SLICE = ["--scenario", "binary+silent+synchronous", "quad+silent+synchronous"]


def run_cli(*argv):
    return main(list(argv))


class TestSeedValidation:
    def test_count_form(self):
        assert _parse_seeds("3") == [DEFAULT_SEED, DEFAULT_SEED + 1, DEFAULT_SEED + 2]

    def test_comma_form(self):
        assert _parse_seeds("7,5,6") == [7, 5, 6]

    @pytest.mark.parametrize("raw", ["0", "-2"])
    def test_non_positive_count_rejected(self, raw):
        with pytest.raises(ValueError, match="positive"):
            _parse_seeds(raw)

    def test_duplicate_seeds_rejected(self):
        with pytest.raises(ValueError, match="repeats"):
            _parse_seeds("5,6,5")

    def test_garbage_rejected_clearly(self):
        with pytest.raises(ValueError, match="integers"):
            _parse_seeds("5,six")
        with pytest.raises(ValueError, match="count or a comma list"):
            _parse_seeds("many")

    @pytest.mark.parametrize("raw", ["0", "5,5"])
    def test_cli_exit_code_2(self, raw, capsys):
        assert run_cli("run", "--seeds", raw, *SLICE) == 2
        assert "error:" in capsys.readouterr().err


class TestListJson:
    def test_machine_readable_matrix(self, capsys):
        assert run_cli("--list", "--json") == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["code_fingerprint"]
        names = {record["name"] for record in payload["scenarios"]}
        assert "binary+silent+synchronous" in names
        record = next(r for r in payload["scenarios"] if r["name"] == "binary+silent+synchronous")
        assert record["protocol"] == "binary"
        assert record["adversary"] == "silent"
        assert record["delay"] == "synchronous"
        assert record["n"] == 4 and record["t"] == 1
        assert len(record["fingerprint"]) == 64
        assert len({record["fingerprint"] for record in payload["scenarios"]}) == len(names)

    def test_plain_list_unchanged(self, capsys):
        assert run_cli("--list") == 0
        assert "registered scenarios" in capsys.readouterr().out


class TestRunWithStore:
    def test_cold_then_warm_is_all_hits_and_byte_identical(self, tmp_path, capsys):
        db = tmp_path / "runs.db"
        cold_summary = tmp_path / "cold.json"
        warm_summary = tmp_path / "warm.json"
        assert (
            run_cli(
                "run", *SLICE, "--seeds", "2", "--quiet",
                "--store", str(db), "--write-baseline", str(cold_summary),
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "4 executed" in out and "0 cached" in out
        assert (
            run_cli(
                "run", *SLICE, "--seeds", "2", "--quiet",
                "--store", str(db), "--require-cached", "--write-baseline", str(warm_summary),
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "4 cached" in out and "0 executed" in out
        assert cold_summary.read_bytes() == warm_summary.read_bytes()

    def test_require_cached_fails_on_a_cold_store(self, tmp_path, capsys):
        db = tmp_path / "runs.db"
        assert run_cli("run", *SLICE, "--seeds", "1", "--quiet", "--store", str(db), "--require-cached") == 1
        assert "REQUIRE-CACHED" in capsys.readouterr().err

    def test_require_cached_detects_a_partial_store(self, tmp_path, capsys):
        db = tmp_path / "runs.db"
        assert run_cli("run", "--scenario", "binary+silent+synchronous", "--seeds", "1", "--quiet", "--store", str(db)) == 0
        capsys.readouterr()
        assert run_cli("run", *SLICE, "--seeds", "1", "--quiet", "--store", str(db), "--require-cached") == 1
        err = capsys.readouterr().err
        assert "1 of 2 runs were not in the store" in err

    def test_rerun_contradicts_require_cached(self, capsys):
        assert run_cli("run", *SLICE, "--store", "x.db", "--rerun", "--require-cached") == 2
        assert "contradicts" in capsys.readouterr().err

    def test_store_flags_require_store(self, capsys):
        assert run_cli("run", *SLICE, "--rerun") == 2
        assert run_cli("run", *SLICE, "--require-cached") == 2
        assert "--store" in capsys.readouterr().err


class TestReport:
    @pytest.fixture()
    def populated(self, tmp_path):
        db = tmp_path / "runs.db"
        assert run_cli("run", *SLICE, "--seeds", "2", "--quiet", "--store", str(db)) == 0
        return db

    def test_report_table_and_artifacts(self, populated, tmp_path, capsys):
        markdown = tmp_path / "report.md"
        summaries = tmp_path / "summaries.json"
        assert (
            run_cli(
                "report", "--store", str(populated),
                "--markdown", str(markdown), "--json-output", str(summaries),
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "binary+silent+synchronous" in out and "quad+silent+synchronous" in out
        text = markdown.read_text()
        assert text.startswith("| scenario |")
        payload = json.loads(summaries.read_text())
        assert set(payload["scenarios"]) == {
            "binary+silent+synchronous", "quad+silent+synchronous",
        }
        assert payload["scenarios"]["binary+silent+synchronous"]["runs"] == 2

    def test_report_protocol_filter(self, populated, capsys):
        assert run_cli("report", "--store", str(populated), "--protocol", "binary") == 0
        out = capsys.readouterr().out
        assert "binary+silent+synchronous" in out
        assert "quad+silent+synchronous" not in out

    def test_report_missing_store_errors(self, tmp_path, capsys):
        assert run_cli("report", "--store", str(tmp_path / "absent.db")) == 2
        assert "does not exist" in capsys.readouterr().err

    def test_report_empty_slice_exits_3(self, populated, capsys):
        # Empty slice is its own exit code (3), distinct from configuration
        # errors (2): CI can tell "nothing matched" from "you asked wrongly".
        assert run_cli("report", "--store", str(populated), "--protocol", "universal-compact") == 3
        err = capsys.readouterr().err
        assert "no stored records" in err
        assert len(err.strip().splitlines()) == 1


class TestCompare:
    def test_store_matches_its_own_baseline(self, tmp_path, capsys):
        db = tmp_path / "runs.db"
        baseline = tmp_path / "baseline.json"
        assert run_cli("run", *SLICE, "--seeds", "2", "--quiet", "--store", str(db), "--write-baseline", str(baseline)) == 0
        assert run_cli("compare", "--store", str(db), "--against", str(baseline)) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_two_equal_stores_compare_clean(self, tmp_path):
        db_a, db_b = tmp_path / "a.db", tmp_path / "b.db"
        for db in (db_a, db_b):
            assert run_cli("run", *SLICE, "--seeds", "2", "--quiet", "--store", str(db)) == 0
        assert run_cli("compare", "--store", str(db_a), "--against", str(db_b)) == 0

    def test_injected_regression_exits_non_zero(self, tmp_path, capsys):
        db = tmp_path / "runs.db"
        baseline = tmp_path / "baseline.json"
        assert run_cli("run", *SLICE, "--seeds", "2", "--quiet", "--store", str(db), "--write-baseline", str(baseline)) == 0
        # Inject the regression: overwrite one scenario's records with runs
        # of a starved twin (same name, exhausted event budget -> errors).
        healthy = make_scenario("binary", "silent", "synchronous")
        starved = healthy.with_(max_events=5)
        with RunStore(db) as store:
            for seed in (DEFAULT_SEED, DEFAULT_SEED + 1):
                result = execute_run(starved, seed)
                assert result.error is not None
                store.put(healthy, result)
        capsys.readouterr()
        assert run_cli("compare", "--store", str(db), "--against", str(baseline)) == 1
        err = capsys.readouterr().err
        assert "REGRESSION" in err and "errors" in err

    def test_scenario_filter_restricts_both_sides(self, tmp_path):
        db = tmp_path / "runs.db"
        baseline = tmp_path / "baseline.json"
        # Baseline covers two scenarios; the store only one.  Unfiltered the
        # missing scenario is a regression; filtered to the shared slice it
        # compares clean.
        assert run_cli("run", *SLICE, "--seeds", "1", "--quiet", "--write-baseline", str(baseline)) == 0
        assert run_cli("run", "--scenario", "binary+silent+synchronous", "--seeds", "1", "--quiet", "--store", str(db)) == 0
        assert run_cli("compare", "--store", str(db), "--against", str(baseline)) == 1
        assert (
            run_cli(
                "compare", "--store", str(db), "--against", str(baseline),
                "--scenario", "binary+silent+synchronous",
            )
            == 0
        )

    def test_missing_reference_errors(self, tmp_path, capsys):
        db = tmp_path / "runs.db"
        assert run_cli("run", *SLICE, "--seeds", "1", "--quiet", "--store", str(db)) == 0
        assert run_cli("compare", "--store", str(db), "--against", str(tmp_path / "absent.json")) == 2
        assert "does not exist" in capsys.readouterr().err

    def test_stale_code_reference_store_is_an_error_not_a_pass(self, tmp_path, capsys):
        # A reference store whose records live under a different code
        # fingerprint summarizes to nothing — compare must refuse with the
        # empty-slice exit code (3), never print "no regressions" against an
        # empty reference.
        current = tmp_path / "current.db"
        stale = tmp_path / "stale.db"
        assert run_cli("run", *SLICE, "--seeds", "1", "--quiet", "--store", str(current)) == 0
        spec = make_scenario("binary", "silent", "synchronous")
        with RunStore(stale, code_fp="built-by-older-code") as store:
            store.put(spec, execute_run(spec, DEFAULT_SEED))
        capsys.readouterr()
        assert run_cli("compare", "--store", str(current), "--against", str(stale)) == 3
        err = capsys.readouterr().err
        assert "no scenarios" in err and "--any-code" in err
        # Symmetrically: a measured store with only stale records errors too.
        assert run_cli("compare", "--store", str(stale), "--against", str(current)) == 3
        assert "--any-code" in capsys.readouterr().err


class TestStoreFormatErrors:
    def test_run_report_compare_reject_non_store_files_cleanly(self, tmp_path, capsys):
        bogus = tmp_path / "bogus.db"
        bogus.write_text('{"this is": "a JSON file, not SQLite"}\n')
        db = tmp_path / "runs.db"
        assert run_cli("run", *SLICE, "--seeds", "1", "--quiet", "--store", str(db)) == 0
        capsys.readouterr()
        assert run_cli("run", *SLICE, "--seeds", "1", "--quiet", "--store", str(bogus)) == 2
        assert "cannot open run store" in capsys.readouterr().err
        assert run_cli("report", "--store", str(bogus)) == 2
        assert "cannot open run store" in capsys.readouterr().err
        assert run_cli("compare", "--store", str(db), "--against", str(bogus)) == 2
        err = capsys.readouterr().err
        assert "error:" in err

    def test_unopenable_store_path_is_a_clean_cli_error(self, tmp_path, capsys):
        missing_dir = tmp_path / "no" / "such" / "dir" / "runs.db"
        assert run_cli("run", *SLICE, "--seeds", "1", "--quiet", "--store", str(missing_dir)) == 2
        assert "cannot open run store" in capsys.readouterr().err


class TestArgumentValidation:
    """--parallel/--timeout are validated at parse time across subcommands."""

    @pytest.mark.parametrize("command", ["run", "analyze", "fuzz"])
    @pytest.mark.parametrize("value", ["0", "-2"])
    def test_non_positive_parallel_is_a_parse_error(self, command, value, capsys):
        with pytest.raises(SystemExit) as excinfo:
            run_cli(command, "--parallel", value)
        assert excinfo.value.code == 2
        assert "positive integer" in capsys.readouterr().err

    @pytest.mark.parametrize("command", ["run", "fuzz"])
    @pytest.mark.parametrize("value", ["0", "-1.5"])
    def test_non_positive_timeout_is_a_parse_error(self, command, value, capsys):
        with pytest.raises(SystemExit) as excinfo:
            run_cli(command, "--timeout", value)
        assert excinfo.value.code == 2
        assert "positive number" in capsys.readouterr().err

    def test_garbage_parallel_is_a_parse_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            run_cli("run", "--parallel", "four")
        assert excinfo.value.code == 2
        assert "positive integer" in capsys.readouterr().err


class TestSpecReplay:
    """run --spec replays a serialized scenario (the fuzz counterexample path)."""

    def test_replays_a_bare_spec_payload(self, tmp_path, capsys):
        from repro.store.fingerprint import spec_payload

        spec = make_scenario("binary", "silent", "synchronous")
        spec_file = tmp_path / "spec.json"
        spec_file.write_text(json.dumps(spec_payload(spec)))
        assert run_cli("run", "--spec", str(spec_file)) == 0
        out = capsys.readouterr().out
        assert "1 runs over 1 scenarios x 1 seeds" in out
        assert "binary+silent+synchronous" in out

    def test_replays_a_counterexample_record_with_its_seed(self, tmp_path, capsys):
        # The wrapped form the fuzzer emits: {"spec": ..., "seed": ...} — the
        # recorded seed is the default, so the replay is the exact violating run.
        from repro.store.fingerprint import spec_payload

        spec = make_scenario(
            "binary", "none", "partition", params={"release_time": 20_000.0}
        )
        record = {"spec": spec_payload(spec), "seed": DEFAULT_SEED + 3, "violations": []}
        spec_file = tmp_path / "counterexample.json"
        spec_file.write_text(json.dumps(record))
        assert run_cli("run", "--spec", str(spec_file)) == 1
        captured = capsys.readouterr()
        assert f"seed={DEFAULT_SEED + 3}" in captured.err
        assert "termination violated" in captured.err

    def test_explicit_seeds_override_the_recorded_seed(self, tmp_path, capsys):
        from repro.store.fingerprint import spec_payload

        spec = make_scenario("binary", "silent", "synchronous")
        record = {"spec": spec_payload(spec), "seed": 99}
        spec_file = tmp_path / "spec.json"
        spec_file.write_text(json.dumps(record))
        assert run_cli("run", "--spec", str(spec_file), "--seeds", "2") == 0
        assert "x 2 seeds" in capsys.readouterr().out

    def test_roundtrips_through_spec_payload(self):
        from repro.store.fingerprint import spec_from_payload, spec_payload

        spec = make_scenario(
            "quad", "equivocation", "partition", n=7, t=2,
            params={"release_time": 50.0, "gst": 5.0},
        )
        assert spec_from_payload(spec_payload(spec)) == spec

    @pytest.mark.parametrize(
        "content, message",
        [
            ("not json", "not valid JSON"),
            ("[1, 2]", "JSON object"),
            ('{"name": "x"}', "missing or invalid"),
        ],
    )
    def test_bad_spec_files_fail_cleanly(self, tmp_path, capsys, content, message):
        spec_file = tmp_path / "bad.json"
        spec_file.write_text(content)
        assert run_cli("run", "--spec", str(spec_file)) == 2
        assert message in capsys.readouterr().err

    def test_missing_spec_file_fails_cleanly(self, tmp_path, capsys):
        assert run_cli("run", "--spec", str(tmp_path / "nope.json")) == 2
        assert "cannot read spec file" in capsys.readouterr().err
