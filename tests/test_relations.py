"""Tests for the similarity and compatibility relations (Sections 3.4 and 4.1)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    InputConfiguration,
    SystemConfig,
    compatible,
    enumerate_input_configurations,
    similar,
    similar_configurations,
    similarity_classes,
)
from repro.core.relations import is_similarity_witness


def cfg(mapping):
    return InputConfiguration.from_mapping(mapping)


class TestSimilarityExamplesFromPaper:
    """The concrete examples given in Sections 1 and 3.4 of the paper."""

    def test_intro_example_similar(self):
        c = cfg({0: 0, 1: 1})
        c_prime = cfg({0: 0, 2: 0})
        assert similar(c, c_prime)

    def test_intro_example_not_similar(self):
        c = cfg({0: 0, 1: 1})
        other = cfg({0: 0, 1: 0})
        assert not similar(c, other)

    def test_section_34_example(self):
        c = cfg({0: 0, 1: 1, 2: 0})
        assert similar(c, cfg({0: 0, 2: 0}))
        assert not similar(c, cfg({0: 0, 1: 0}))

    def test_disjoint_configurations_are_not_similar(self):
        assert not similar(cfg({0: 0}), cfg({1: 0}))


class TestCompatibilityExamplesFromPaper:
    def test_section_41_example_compatible(self):
        c = cfg({0: 0, 1: 0})
        assert compatible(c, cfg({0: 1, 2: 1}), t=1)

    def test_section_41_example_not_compatible(self):
        c = cfg({0: 0, 1: 0})
        assert not compatible(c, cfg({0: 1, 1: 1, 2: 1}), t=1)

    def test_too_many_common_processes(self):
        a = cfg({0: 0, 1: 0, 2: 0})
        b = cfg({0: 1, 1: 1, 3: 1})
        assert not compatible(a, b, t=1)
        assert compatible(a, b, t=2)

    def test_compatibility_is_irreflexive(self):
        c = cfg({0: 0, 1: 0})
        assert not compatible(c, c, t=2)

    def test_rejects_negative_t(self):
        import pytest

        with pytest.raises(ValueError):
            compatible(cfg({0: 0}), cfg({1: 1}), t=-1)


small_configs = st.builds(
    InputConfiguration.from_mapping,
    st.dictionaries(
        keys=st.integers(min_value=0, max_value=4),
        values=st.integers(min_value=0, max_value=2),
        min_size=1,
        max_size=5,
    ),
)


class TestRelationAlgebraicProperties:
    @given(small_configs, small_configs)
    @settings(max_examples=150)
    def test_similarity_is_symmetric(self, a, b):
        assert similar(a, b) == similar(b, a)

    @given(small_configs)
    @settings(max_examples=50)
    def test_similarity_is_reflexive(self, a):
        assert similar(a, a)

    @given(small_configs, small_configs, st.integers(min_value=0, max_value=4))
    @settings(max_examples=150)
    def test_compatibility_is_symmetric(self, a, b, t):
        assert compatible(a, b, t) == compatible(b, a, t)

    @given(small_configs, st.integers(min_value=0, max_value=4))
    @settings(max_examples=50)
    def test_compatibility_is_irreflexive(self, a, t):
        assert not compatible(a, a, t)

    @given(small_configs, small_configs)
    @settings(max_examples=150)
    def test_similar_configs_share_a_witness(self, a, b):
        if similar(a, b):
            common = a.processes & b.processes
            assert any(is_similarity_witness(a, b, process) for process in common)


class TestSimilarityEnumeration:
    def test_sim_contains_self_when_valid_size(self):
        system = SystemConfig(n=4, t=1)
        config = cfg({0: 0, 1: 0, 2: 1})
        sims = list(similar_configurations(config, system, [0, 1]))
        assert config in sims

    def test_sim_matches_bruteforce_filter(self):
        system = SystemConfig(n=4, t=1)
        config = cfg({0: 0, 1: 1, 2: 0})
        expected = [
            candidate
            for candidate in enumerate_input_configurations(system, [0, 1])
            if similar(config, candidate)
        ]
        assert list(similar_configurations(config, system, [0, 1])) == expected

    def test_unanimous_config_similar_to_all_unanimous_supersets(self):
        system = SystemConfig(n=4, t=1)
        config = InputConfiguration.unanimous([0, 1, 2], "v")
        sims = set(similar_configurations(config, system, ["v", "w"]))
        assert InputConfiguration.unanimous([0, 1, 2, 3], "v") in sims
        assert InputConfiguration.unanimous([1, 2, 3], "v") in sims

    def test_similarity_classes_group_connected_components(self):
        configs = [cfg({0: 0, 1: 0}), cfg({0: 0, 2: 1}), cfg({3: 5, 4: 5})]
        classes = similarity_classes(configs)
        sizes = sorted(len(group) for group in classes)
        assert sizes == [1, 2]
