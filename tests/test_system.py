"""Unit tests for :mod:`repro.core.system`."""

import pytest

from repro.core import SystemConfig


class TestSystemConfigValidation:
    def test_rejects_zero_t(self):
        with pytest.raises(ValueError):
            SystemConfig(n=4, t=0)

    def test_rejects_t_equal_n(self):
        with pytest.raises(ValueError):
            SystemConfig(n=4, t=4)

    def test_rejects_t_above_n(self):
        with pytest.raises(ValueError):
            SystemConfig(n=4, t=5)

    def test_rejects_tiny_system(self):
        with pytest.raises(ValueError):
            SystemConfig(n=1, t=0)

    def test_accepts_minimal_valid_system(self):
        system = SystemConfig(n=2, t=1)
        assert system.quorum == 1

    def test_validate_process_rejects_out_of_range(self):
        system = SystemConfig(n=4, t=1)
        with pytest.raises(ValueError):
            system.validate_process(4)
        with pytest.raises(ValueError):
            system.validate_process(-1)
        system.validate_process(0)
        system.validate_process(3)


class TestDerivedQuantities:
    def test_quorum_is_n_minus_t(self):
        assert SystemConfig(n=7, t=2).quorum == 5

    def test_configuration_size_bounds(self):
        system = SystemConfig(n=10, t=3)
        assert system.min_configuration_size == 7
        assert system.max_configuration_size == 10
        assert list(system.valid_configuration_sizes()) == [7, 8, 9, 10]

    def test_processes_range(self):
        assert list(SystemConfig(n=4, t=1).processes) == [0, 1, 2, 3]

    def test_byzantine_resilience_predicate(self):
        assert SystemConfig(n=4, t=1).tolerates_byzantine_faults()
        assert not SystemConfig(n=3, t=1).tolerates_byzantine_faults()
        assert not SystemConfig(n=6, t=2).tolerates_byzantine_faults()
        assert SystemConfig(n=7, t=2).tolerates_byzantine_faults()

    def test_quorum_intersection(self):
        assert SystemConfig(n=4, t=1).byzantine_quorum_intersection == 1
        assert SystemConfig(n=10, t=3).byzantine_quorum_intersection == 1
        assert SystemConfig(n=6, t=2).byzantine_quorum_intersection == 0


class TestConstructors:
    def test_with_optimal_resilience(self):
        system = SystemConfig.with_optimal_resilience(10)
        assert system.n == 10
        assert system.t == 3
        assert system.tolerates_byzantine_faults()

    def test_with_optimal_resilience_boundary(self):
        assert SystemConfig.with_optimal_resilience(4).t == 1
        assert SystemConfig.with_optimal_resilience(7).t == 2
        assert SystemConfig.with_optimal_resilience(13).t == 4

    def test_with_optimal_resilience_rejects_small_n(self):
        with pytest.raises(ValueError):
            SystemConfig.with_optimal_resilience(3)

    def test_without_byzantine_resilience(self):
        system = SystemConfig.without_byzantine_resilience(2)
        assert system.n == 6
        assert system.t == 2
        assert not system.tolerates_byzantine_faults()

    def test_without_byzantine_resilience_rejects_zero(self):
        with pytest.raises(ValueError):
            SystemConfig.without_byzantine_resilience(0)

    def test_frozen(self):
        system = SystemConfig(n=4, t=1)
        with pytest.raises(Exception):
            system.n = 5
