"""The coverage-guided fuzzer: determinism, persistence, shrinking, discovery.

The campaign's contract is that one ``(bases, budget, fuzz seed, code)``
tuple names one campaign: serial and parallel runs must visit byte-identical
candidates, a warm re-fuzz against the same store must execute zero
simulations, and the two regressions the suite seeds scenario space with —
the PR 2 unhealed-partition liveness hole and the split-brain attack at the
paper's ``n <= 3t`` resilience bound — must be rediscovered and shrunk to
minimal replayable counterexamples.
"""

import json

import pytest

from repro.experiments import DEFAULT_SEED, Runner, execute_run, make_scenario
from repro.experiments.cli import main
from repro.experiments.scenario import default_matrix
from repro.fuzz import (
    CoverageMap,
    apply_mutations,
    fuzz_execute,
    mutation_palette,
    run_fuzz,
    shrink_mutations,
    spec_is_fuzzable,
    violation_kinds,
)
from repro.store import RunStore

BASES = [
    make_scenario("binary", "none", "partition"),
    make_scenario("quad", "none", "synchronous"),
]


def run_cli(*argv):
    return main(list(argv))


class TestMutations:
    def test_palette_is_deterministic_and_nonempty(self):
        palette = mutation_palette()
        assert palette == mutation_palette()
        assert len(palette) > 20
        assert len(set(palette)) == len(palette)

    def test_later_mutation_wins_per_slot(self):
        spec, seed = apply_mutations(
            BASES[0],
            DEFAULT_SEED,
            [
                ("param", "release_time", 2.0),
                ("param", "release_time", 20_000.0),
                ("system", "n_t", (5, 2)),
                ("seed", "offset", 3),
            ],
        )
        assert dict(spec.params)["release_time"] == 20_000.0
        assert (spec.n, spec.t) == (5, 2)
        assert seed == DEFAULT_SEED + 3

    def test_shrunk_sublist_applies_like_the_original_minus_removals(self):
        mutations = [("delay", "", "eventual"), ("param", "gst", 80.0), ("seed", "offset", 1)]
        full_spec, _ = apply_mutations(BASES[0], DEFAULT_SEED, mutations)
        sub_spec, sub_seed = apply_mutations(BASES[0], DEFAULT_SEED, mutations[:2])
        assert sub_spec.delay == full_spec.delay == "eventual"
        assert sub_seed == DEFAULT_SEED

    def test_name_depends_on_content_not_mutation_path(self):
        via_one = apply_mutations(BASES[0], DEFAULT_SEED, [("system", "n_t", (6, 2))])
        via_two = apply_mutations(
            BASES[0], DEFAULT_SEED, [("system", "n_t", (9, 3)), ("system", "n_t", (6, 2))]
        )
        assert via_one == via_two

    def test_nonsense_combinations_are_filtered_not_crashed(self):
        spec, _ = apply_mutations(BASES[0], DEFAULT_SEED, [("adversary", "", "splitbrain")])
        assert not spec_is_fuzzable(spec)  # split-brain needs a leader-based protocol
        quad = make_scenario("quad", "none", "synchronous")
        spec, _ = apply_mutations(quad, DEFAULT_SEED, [("adversary", "", "splitbrain")])
        assert spec_is_fuzzable(spec)

    def test_unknown_mutation_kind_is_an_error(self):
        with pytest.raises(ValueError, match="unknown mutation kind"):
            apply_mutations(BASES[0], DEFAULT_SEED, [("nope", "", 1)])


class TestCoverage:
    def test_novelty_counts_only_new_sites(self):
        coverage = CoverageMap()
        assert coverage.observe(["a", "b"]) == 2
        assert coverage.observe(["b", "c"]) == 1
        assert coverage.observe(["a", "b", "c"]) == 0
        assert len(coverage) == 3
        assert coverage.snapshot() == ("a", "b", "c")

    def test_probes_are_read_only(self):
        # An instrumented execution must return the byte-identical RunResult
        # of an uninstrumented one — otherwise fuzz-persisted records would
        # diverge from sweep-persisted records of the same (spec, seed).
        spec = BASES[1]
        instrumented, sites = fuzz_execute((spec, DEFAULT_SEED, None))
        plain = execute_run(spec, DEFAULT_SEED)
        assert instrumented.canonical_json() == plain.canonical_json()
        assert sites  # the probes did observe the execution

    def test_violation_kinds_strip_run_specific_detail(self):
        kinds = violation_kinds(
            [
                "termination violated: correct processes [0, 1] never decided",
                "agreement violated: decisions {0: 'a', 1: 'b'}",
                "termination violated: correct processes [2] never decided",
            ]
        )
        assert kinds == ("agreement violated", "termination violated")


class TestCampaignDeterminism:
    def test_serial_and_parallel_campaigns_are_byte_identical(self):
        serial = run_fuzz(BASES, 48, fuzz_seed=11)
        with Runner(parallel=2) as runner:
            parallel = run_fuzz(BASES, 48, fuzz_seed=11, runner=runner)
        assert serial.corpus_fingerprints == parallel.corpus_fingerprints
        assert serial.counterexamples == parallel.counterexamples
        assert serial.coverage_sites == parallel.coverage_sites
        assert serial.to_dict() == {**parallel.to_dict(), "executed": serial.executed}

    def test_warm_campaign_executes_zero_runs(self, tmp_path):
        db = tmp_path / "fuzz.db"
        with RunStore(db) as store:
            cold = run_fuzz(BASES, 48, fuzz_seed=11, store=store)
        assert cold.executed > 0 and cold.cached == 0
        with RunStore(db) as store:
            warm = run_fuzz(BASES, 48, fuzz_seed=11, store=store)
        assert warm.executed == 0
        assert warm.cached == warm.candidates == cold.candidates
        assert warm.corpus_fingerprints == cold.corpus_fingerprints
        assert warm.counterexamples == cold.counterexamples

    def test_different_fuzz_seeds_walk_differently(self):
        a = run_fuzz(BASES, 32, fuzz_seed=1)
        b = run_fuzz(BASES, 32, fuzz_seed=2)
        assert a.corpus_fingerprints != b.corpus_fingerprints

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError, match="at least 1"):
            run_fuzz(BASES, 0)
        with pytest.raises(ValueError, match="at least one base"):
            run_fuzz([], 10)
        bad = make_scenario("binary", "none", "synchronous").with_(t=0)
        with pytest.raises(ValueError, match="not a valid fuzz base"):
            run_fuzz([bad], 10)


class TestShrinking:
    def test_pr2_partition_regression_shrinks_to_one_mutation(self):
        # The known liveness counterexample from the partition-healing work:
        # release_time beyond the horizon starves the correct minority.  The
        # noisy mutation list carries two incidental riders; ddmin must strip
        # both and keep exactly the causal parameter.
        base = BASES[0]
        noisy = (
            ("seed", "offset", 1),
            ("param", "release_time", 20_000.0),
            ("param", "delta", 2.0),
        )

        def evaluate(spec, seed):
            return execute_run(spec, seed)

        spec, seed = apply_mutations(base, DEFAULT_SEED, noisy)
        kinds = violation_kinds(execute_run(spec, seed).violations)
        assert kinds == ("termination violated",)
        minimal = shrink_mutations(base, DEFAULT_SEED, noisy, kinds, evaluate)
        assert minimal == (("param", "release_time", 20_000.0),)

    def test_shrinking_is_memoised_through_the_store(self, tmp_path):
        db = tmp_path / "fuzz.db"
        with RunStore(db) as store:
            cold = run_fuzz(
                [BASES[0]], 24, fuzz_seed=5, store=store
            )
        with RunStore(db) as store:
            warm = run_fuzz([BASES[0]], 24, fuzz_seed=5, store=store)
        # Warm shrinking re-evaluates every ddmin trial from the store.
        assert warm.executed == 0
        assert warm.counterexamples == cold.counterexamples


class TestResilienceBoundDiscovery:
    """The fuzzer rediscovers the paper's n <= 3t split-brain attack."""

    def test_split_brain_succeeds_exactly_at_the_bound(self):
        # Theorem 1's quantitative edge, executed: with n - t colluder-backed
        # quorums, two disjoint correct halves decide differently iff n <= 3t.
        at_bound = execute_run(
            make_scenario("quad", "splitbrain", "stalled", n=6, t=2), DEFAULT_SEED
        )
        assert any(v.startswith("agreement violated") for v in at_bound.violations)
        above_bound = execute_run(
            make_scenario("quad", "splitbrain", "stalled", n=7, t=2), DEFAULT_SEED
        )
        assert above_bound.violations == ()

    def test_campaign_finds_and_shrinks_the_agreement_violation(self):
        base = make_scenario("quad", "splitbrain", "stalled")  # n=4, t=1: holds
        assert execute_run(base, DEFAULT_SEED).violations == ()
        report = run_fuzz([base], 40, fuzz_seed=7)
        agreement = [
            ce
            for ce in report.counterexamples
            if "agreement violated" in violation_kinds(ce["violations"])
        ]
        assert agreement, "campaign failed to rediscover the split-brain violation"
        counterexample = agreement[0]
        assert len(counterexample["mutations"]) <= 3
        # The minimal counterexample replays to the same violation kinds.
        from repro.store.fingerprint import spec_from_payload

        replay = execute_run(
            spec_from_payload(counterexample["spec"]), counterexample["seed"]
        )
        assert violation_kinds(replay.violations) == violation_kinds(
            counterexample["violations"]
        )

    def test_extension_keys_stay_out_of_the_default_matrix(self):
        matrix = default_matrix()
        assert len(matrix) == 112
        assert not any(spec.adversary == "splitbrain" for spec in matrix)
        assert not any(spec.delay == "stalled" for spec in matrix)


class TestFuzzCLI:
    def test_cold_then_warm_campaign_with_artifacts(self, tmp_path, capsys):
        db = tmp_path / "fuzz.db"
        ces = tmp_path / "counterexamples"
        report_json = tmp_path / "report.json"
        assert (
            run_cli(
                "fuzz", "--budget", "30", "--seed", "11", "--quiet",
                "--store", str(db), "--counterexamples", str(ces),
                "--json-output", str(report_json),
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "30 candidates" in out and "0 cached" in out
        cold_report = json.loads(report_json.read_text())
        assert cold_report["executed"] > 0

        assert (
            run_cli(
                "fuzz", "--budget", "30", "--seed", "11", "--quiet",
                "--store", str(db), "--require-cached",
                "--json-output", str(report_json),
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "0 executed" in out
        warm_report = json.loads(report_json.read_text())
        assert warm_report["executed"] == 0
        assert warm_report["corpus_fingerprints"] == cold_report["corpus_fingerprints"]

        # Every emitted counterexample file is replayable via run --spec and
        # reproduces its violation (exit 1 = run failure).
        files = sorted(ces.glob("counterexample-*.json"))
        assert len(files) == len(cold_report["counterexamples"])
        for path in files:
            capsys.readouterr()
            assert run_cli("run", "--spec", str(path)) == 1
            assert "FAILED" in capsys.readouterr().err

    def test_require_cached_fails_on_a_cold_store(self, tmp_path, capsys):
        db = tmp_path / "fuzz.db"
        assert (
            run_cli("fuzz", "--budget", "8", "--quiet", "--store", str(db), "--require-cached")
            == 1
        )
        assert "REQUIRE-CACHED" in capsys.readouterr().err

    def test_require_cached_requires_a_store(self, capsys):
        assert run_cli("fuzz", "--budget", "8", "--require-cached") == 2
        assert "--store" in capsys.readouterr().err

    def test_extension_base_resolves_by_registry_keys(self, capsys):
        assert run_cli("fuzz", "--budget", "4", "--quiet", "--base", "quad+splitbrain+stalled") == 0
        assert "4 candidates" in capsys.readouterr().out

    def test_unknown_base_is_a_clean_error(self, capsys):
        assert run_cli("fuzz", "--budget", "4", "--base", "no-such-scenario") == 2
        assert "unknown fuzz base" in capsys.readouterr().err
        assert run_cli("fuzz", "--budget", "4", "--base", "quad+wat+stalled") == 2
        assert "unknown adversary" in capsys.readouterr().err
