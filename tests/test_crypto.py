"""Tests for the simulated cryptography substrate."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import (
    KeyAuthority,
    PartialSignature,
    Signature,
    ThresholdScheme,
    ThresholdSignature,
    digest,
    stable_encode,
)


class TestStableEncoding:
    def test_equal_values_encode_equally(self):
        assert stable_encode({"a": 1, "b": 2}) == stable_encode({"b": 2, "a": 1})
        assert stable_encode(frozenset({1, 2, 3})) == stable_encode({3, 2, 1})

    def test_different_values_encode_differently(self):
        assert stable_encode([1, 2]) != stable_encode([2, 1])
        assert stable_encode("12") != stable_encode(12)
        assert stable_encode(True) != stable_encode(1)

    def test_nested_containers(self):
        value = {"k": [1, (2, 3)], "s": {"x"}}
        assert digest(value) == digest({"s": {"x"}, "k": [1, (2, 3)]})

    def test_input_configuration_encoding(self):
        from repro.core import InputConfiguration

        a = InputConfiguration.from_mapping({0: "v", 2: "w"})
        b = InputConfiguration.from_mapping({2: "w", 0: "v"})
        c = InputConfiguration.from_mapping({0: "v", 2: "x"})
        assert digest(a) == digest(b)
        assert digest(a) != digest(c)

    @given(st.recursive(st.integers() | st.text() | st.booleans(), st.lists, max_leaves=10))
    @settings(max_examples=60)
    def test_encoding_is_deterministic(self, value):
        assert stable_encode(value) == stable_encode(value)


class TestSignatures:
    def test_sign_and_verify(self):
        authority = KeyAuthority(4)
        signature = authority.sign(2, ("proposal", "v"))
        assert authority.verify(signature, ("proposal", "v"))
        assert authority.verify(signature, ("proposal", "v"), expected_signer=2)

    def test_wrong_message_rejected(self):
        authority = KeyAuthority(4)
        signature = authority.sign(2, "m1")
        assert not authority.verify(signature, "m2")

    def test_wrong_expected_signer_rejected(self):
        authority = KeyAuthority(4)
        signature = authority.sign(2, "m")
        assert not authority.verify(signature, "m", expected_signer=3)

    def test_forged_signature_rejected(self):
        authority = KeyAuthority(4)
        forged = authority.forge(claimed_signer=1, message="m")
        assert not authority.verify(forged, "m")

    def test_unknown_signer_rejected(self):
        authority = KeyAuthority(4)
        with pytest.raises(ValueError):
            authority.sign(7, "m")
        bogus = Signature(signer=9, tag="00")
        assert not authority.verify(bogus, "m")

    def test_non_signature_objects_rejected(self):
        authority = KeyAuthority(4)
        assert not authority.verify("not a signature", "m")

    def test_different_seeds_produce_independent_keys(self):
        first = KeyAuthority(4, seed=1)
        second = KeyAuthority(4, seed=2)
        signature = first.sign(0, "m")
        assert not second.verify(signature, "m")

    def test_signature_word_size(self):
        authority = KeyAuthority(4)
        assert authority.sign(0, "m").words == 1


class TestThresholdSignatures:
    def make_scheme(self, n=4, t=1):
        authority = KeyAuthority(n)
        return ThresholdScheme(authority, threshold=n - t)

    def test_combine_and_verify(self):
        scheme = self.make_scheme()
        partials = [scheme.partial_sign(pid, "msg") for pid in range(3)]
        combined = scheme.combine(partials, "msg")
        assert scheme.verify(combined, "msg")
        assert combined.words == 1

    def test_combine_requires_threshold_distinct_shares(self):
        scheme = self.make_scheme()
        partials = [scheme.partial_sign(0, "msg"), scheme.partial_sign(1, "msg")]
        with pytest.raises(ValueError):
            scheme.combine(partials, "msg")
        duplicated = [scheme.partial_sign(0, "msg")] * 3
        with pytest.raises(ValueError):
            scheme.combine(duplicated, "msg")

    def test_invalid_shares_are_ignored(self):
        scheme = self.make_scheme()
        good = [scheme.partial_sign(pid, "msg") for pid in range(2)]
        bad = [PartialSignature(signer=2, signature=Signature(signer=2, tag="junk"))]
        with pytest.raises(ValueError):
            scheme.combine(good + bad, "msg")

    def test_verify_rejects_wrong_message(self):
        scheme = self.make_scheme()
        partials = [scheme.partial_sign(pid, "msg") for pid in range(3)]
        combined = scheme.combine(partials, "msg")
        assert not scheme.verify(combined, "other")

    def test_verify_rejects_undersized_signer_set(self):
        scheme = self.make_scheme()
        fake = ThresholdSignature(message_digest=digest(("tsig", "msg")), signers=frozenset({0}), threshold=3)
        assert not scheme.verify(fake, "msg")

    def test_partial_verification(self):
        scheme = self.make_scheme()
        share = scheme.partial_sign(1, "msg")
        assert scheme.verify_partial(share, "msg")
        assert not scheme.verify_partial(share, "other")
        assert not scheme.verify_partial("garbage", "msg")

    def test_threshold_bounds_validated(self):
        authority = KeyAuthority(4)
        with pytest.raises(ValueError):
            ThresholdScheme(authority, threshold=0)
        with pytest.raises(ValueError):
            ThresholdScheme(authority, threshold=5)
