"""Tests for the coding substrate: GF(256), Reed-Solomon with error correction, and ADD."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding import DecodingError, Fragment, ReedSolomonCode, gf256


class TestGF256:
    def test_addition_is_xor_and_self_inverse(self):
        assert gf256.add(0x53, 0xCA) == 0x53 ^ 0xCA
        assert gf256.add(0x53, 0x53) == 0
        assert gf256.subtract(0x53, 0xCA) == gf256.add(0x53, 0xCA)

    def test_multiplicative_identity_and_zero(self):
        for value in range(256):
            assert gf256.multiply(value, 1) == value
            assert gf256.multiply(value, 0) == 0

    def test_inverse(self):
        for value in range(1, 256):
            assert gf256.multiply(value, gf256.inverse(value)) == 1
        with pytest.raises(ZeroDivisionError):
            gf256.inverse(0)

    def test_division(self):
        assert gf256.divide(gf256.multiply(17, 99), 99) == 17

    def test_power(self):
        assert gf256.power(2, 0) == 1
        assert gf256.power(2, 8) == gf256.multiply(gf256.power(2, 4), gf256.power(2, 4))

    def test_range_validation(self):
        with pytest.raises(ValueError):
            gf256.add(256, 1)
        with pytest.raises(ValueError):
            gf256.multiply(-1, 1)

    def test_poly_eval_matches_horner_by_hand(self):
        # p(x) = 3 + 5x + 7x^2 at x = 2
        expected = gf256.add(3, gf256.add(gf256.multiply(5, 2), gf256.multiply(7, gf256.multiply(2, 2))))
        assert gf256.poly_eval([3, 5, 7], 2) == expected

    def test_poly_divmod_roundtrip(self):
        p = [1, 2, 3, 4]
        q = [5, 6]
        product = gf256.poly_multiply(p, q)
        quotient, remainder = gf256.poly_divmod(product, q)
        assert all(r == 0 for r in remainder)
        assert quotient[: len(p)] == p

    @given(st.integers(0, 255), st.integers(0, 255), st.integers(0, 255))
    @settings(max_examples=100)
    def test_field_axioms(self, a, b, c):
        assert gf256.multiply(a, b) == gf256.multiply(b, a)
        assert gf256.add(a, b) == gf256.add(b, a)
        assert gf256.multiply(a, gf256.add(b, c)) == gf256.add(gf256.multiply(a, b), gf256.multiply(a, c))


class TestReedSolomon:
    def test_roundtrip_without_errors(self):
        code = ReedSolomonCode(total_symbols=7, data_symbols=3)
        blob = bytes(range(40))
        assert code.decode(code.encode(blob)) == blob

    def test_roundtrip_with_erasures(self):
        code = ReedSolomonCode(total_symbols=7, data_symbols=3)
        blob = b"erasure tolerance"
        fragments = code.encode(blob)
        assert code.decode(fragments[2:]) == blob

    def test_roundtrip_with_byzantine_corruption(self):
        code = ReedSolomonCode(total_symbols=10, data_symbols=4)
        rng = random.Random(7)
        blob = bytes(rng.randrange(256) for _ in range(100))
        fragments = list(code.encode(blob))
        for index in (1, 6, 8):  # up to t = 3 corrupted fragments
            fragments[index] = Fragment(
                index=index,
                symbols=tuple((s + 13) % 256 for s in fragments[index].symbols),
                blob_length=fragments[index].blob_length,
            )
        assert code.decode(fragments) == blob

    def test_corrupted_length_claims_are_survivable(self):
        code = ReedSolomonCode(total_symbols=7, data_symbols=3)
        blob = b"length lies"
        fragments = list(code.encode(blob))
        fragments[0] = Fragment(index=0, symbols=fragments[0].symbols, blob_length=9999)
        assert code.decode(fragments[0:6]) == blob

    def test_too_few_fragments_raise(self):
        code = ReedSolomonCode(total_symbols=7, data_symbols=3)
        fragments = code.encode(b"hello")
        with pytest.raises(DecodingError):
            code.decode(fragments[:2])

    def test_too_many_corruptions_raise(self):
        code = ReedSolomonCode(total_symbols=4, data_symbols=2)
        blob = b"xy"
        fragments = list(code.encode(blob))
        corrupted = [
            Fragment(index=f.index, symbols=tuple((s + 1) % 256 for s in f.symbols), blob_length=f.blob_length)
            for f in fragments[:3]
        ] + [fragments[3]]
        with pytest.raises(DecodingError):
            result = code.decode(corrupted)
            assert result != blob  # pragma: no cover - reached only if decode "succeeds" wrongly
            raise DecodingError("decoded inconsistent data")

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            ReedSolomonCode(total_symbols=3, data_symbols=4)
        with pytest.raises(ValueError):
            ReedSolomonCode(total_symbols=300, data_symbols=3)

    def test_empty_blob(self):
        code = ReedSolomonCode(total_symbols=4, data_symbols=2)
        assert code.decode(code.encode(b"")) == b""

    @given(st.binary(min_size=1, max_size=60), st.integers(min_value=0, max_value=2))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_with_random_corruption(self, blob, corruptions):
        code = ReedSolomonCode(total_symbols=7, data_symbols=3)
        fragments = list(code.encode(blob))
        for index in range(corruptions):
            fragments[index] = Fragment(
                index=index,
                symbols=tuple((s + 101) % 256 for s in fragments[index].symbols),
                blob_length=fragments[index].blob_length,
            )
        assert code.decode(fragments) == blob

    def test_word_size_scales_with_fragment_length(self):
        code = ReedSolomonCode(total_symbols=4, data_symbols=2)
        long_blob = bytes(1000)
        fragment = code.encode(long_blob)[0]
        assert fragment.words >= 7


class TestADDInSimulation:
    def test_all_processes_output_the_blob(self):
        from repro.core import SystemConfig
        from repro.crypto import digest
        from repro.coding import AsynchronousDataDissemination
        from repro.sim import Process, Simulation, SynchronousDelayModel, silent_factory

        blob = b"the vector that quad agreed on" * 3
        expected = digest(blob)

        class AddProcess(Process):
            def __init__(self, pid, simulation, holds_blob):
                super().__init__(pid, simulation)
                self.holds_blob = holds_blob

            def on_start(self):
                self.add = AsynchronousDataDissemination(self, on_output=self.decide)
                self.add.input(blob if self.holds_blob else None, expected_hash=expected)

        system = SystemConfig(4, 1)
        sim = Simulation(system, delay_model=SynchronousDelayModel(seed=5))
        # Only t + 1 = 2 correct processes hold the blob; everyone must output it.
        sim.populate(lambda pid, s: AddProcess(pid, s, holds_blob=pid in (0, 1)), faulty=[3], faulty_factory=silent_factory)
        sim.run_until_all_correct_decide(until=1_000)
        assert sim.all_correct_decided()
        assert set(sim.decisions().values()) == {blob}
